"""Cache-key stability: same inputs hash identically, any change misses.

The on-disk cache tier is only sound if keys are reproducible across
interpreter restarts, so the headline test recomputes a key in a fresh
subprocess and compares bytes.
"""

import dataclasses
import pathlib
import subprocess
import sys

from repro.core import VARIANTS
from repro.driver import (
    cache_key,
    fingerprint_config,
    fingerprint_profiles,
    fingerprint_program,
)
from repro.frontend import compile_source
from repro.interp.profiler import collect_branch_profiles
from repro.machine import PPC64

SOURCE = """
void main() {
    int[] a = new int[16];
    int t = 0;
    for (int i = 0; i < 16; i++) { a[i] = i; t += a[i]; }
    sink(t);
}
"""


def _program():
    return compile_source(SOURCE, "fp")


class TestFingerprintStability:
    def test_same_program_same_fingerprint(self):
        assert fingerprint_program(_program()) == \
            fingerprint_program(_program())

    def test_different_source_different_fingerprint(self):
        other = compile_source(SOURCE.replace("16", "17"), "fp")
        assert fingerprint_program(_program()) != fingerprint_program(other)

    def test_config_changes_fingerprint(self):
        full = VARIANTS["new algorithm (all)"]
        assert fingerprint_config(full) != \
            fingerprint_config(VARIANTS["baseline"])
        assert fingerprint_config(full) != \
            fingerprint_config(dataclasses.replace(full, max_array_length=7))
        assert fingerprint_config(full) != \
            fingerprint_config(full.with_traits(PPC64))
        assert fingerprint_config(full) == \
            fingerprint_config(dataclasses.replace(full))

    def test_theorem_set_order_is_canonical(self):
        full = VARIANTS["new algorithm (all)"]
        shuffled = dataclasses.replace(
            full, theorems=frozenset([4, 2, 3, 1])
        )
        assert fingerprint_config(full) == fingerprint_config(shuffled)

    def test_profiles_change_key(self):
        program = _program()
        profiles = collect_branch_profiles(program)
        config = VARIANTS["new algorithm (all)"]
        assert cache_key(program, config, None) != \
            cache_key(program, config, profiles)
        assert cache_key(program, config, profiles) == \
            cache_key(program, config, profiles)

    def test_none_differs_from_empty_profiles(self):
        assert fingerprint_profiles(None) != fingerprint_profiles({})


class TestCrossProcessStability:
    def test_key_survives_interpreter_restart(self):
        program = _program()
        config = VARIANTS["new algorithm (all)"]
        profiles = collect_branch_profiles(program)
        local = cache_key(program, config, profiles)

        src_dir = pathlib.Path(__file__).resolve().parents[2] / "src"
        script = f"""
import sys
sys.path.insert(0, {str(src_dir)!r})
from repro.core import VARIANTS
from repro.driver import cache_key
from repro.frontend import compile_source
from repro.interp.profiler import collect_branch_profiles
program = compile_source({SOURCE!r}, "fp")
profiles = collect_branch_profiles(program)
print(cache_key(program, VARIANTS["new algorithm (all)"], profiles))
"""
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == local
