"""Two-tier compile cache: hits, misses, eviction, and corruption."""

import pickle

import pytest

from repro.core import VARIANTS, compile_ir
from repro.driver import CacheEntry, CompileCache, cache_key
from repro.frontend import compile_source
from repro.ir.printer import format_program

SOURCE = """
void main() {
    int[] a = new int[8];
    int t = 0;
    for (int i = 0; i < 8; i++) { a[i] = i * 3; t += a[i]; }
    sink(t);
}
"""

FULL = VARIANTS["new algorithm (all)"]
BASELINE = VARIANTS["baseline"]


@pytest.fixture()
def program():
    return compile_source(SOURCE, "cache_kernel")


@pytest.fixture()
def entry(program):
    result = compile_ir(program, FULL)
    return CacheEntry(
        program=result.program,
        function_stats=result.function_stats,
        timing_seconds=dict(result.timing.seconds),
    )


class TestMemoryTier:
    def test_miss_then_hit(self, program, entry):
        cache = CompileCache()
        key = cache_key(program, FULL, None)
        assert cache.get(key) is None
        cache.put(key, entry)
        hit = cache.get(key)
        assert hit is not None
        assert format_program(hit.program) == format_program(entry.program)
        assert hit.function_stats == entry.function_stats
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_hits_are_detached_clones(self, program, entry):
        cache = CompileCache()
        key = cache_key(program, FULL, None)
        cache.put(key, entry)
        first = cache.get(key)
        # Mutilate the copy we were handed; the cache must not notice.
        first.program.functions.clear()
        second = cache.get(key)
        assert second.program.functions
        assert format_program(second.program) == \
            format_program(entry.program)

    def test_config_change_misses(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        assert cache.get(cache_key(program, BASELINE, None)) is None

    def test_ir_change_misses(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        other = compile_source(SOURCE.replace("* 3", "* 5"), "cache_kernel")
        assert cache.get(cache_key(other, FULL, None)) is None

    def test_lru_eviction(self, program, entry):
        cache = CompileCache(memory_entries=2)
        cache.put("k1", entry)
        cache.put("k2", entry)
        cache.get("k1")  # refresh k1 so k2 is the LRU victim
        cache.put("k3", entry)
        assert cache.stats()["driver.cache.evictions"] == 1
        assert "k1" in cache and "k3" in cache
        assert "k2" not in cache


class TestDiskTier:
    def test_survives_new_cache_instance(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        CompileCache(tmp_path).put(key, entry)

        fresh = CompileCache(tmp_path)  # models a process restart
        hit = fresh.get(key)
        assert hit is not None
        assert format_program(hit.program) == format_program(entry.program)
        stats = fresh.stats()
        assert stats["driver.cache.hits{tier=disk}"] == 1
        # Disk hits are promoted to memory; the next get is a memory hit.
        fresh.get(key)
        assert fresh.stats()["driver.cache.hits{tier=memory}"] == 1

    def test_truncated_file_is_discarded(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")

        fresh = CompileCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats()["driver.cache.corrupt"] == 1
        assert not (tmp_path / f"{key}.pkl").exists()

    def test_version_mismatch_is_discarded(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        path = tmp_path / f"{key}.pkl"
        payload = pickle.loads(path.read_bytes())
        payload["version"] = "0.0.0"
        path.write_bytes(pickle.dumps(payload))

        fresh = CompileCache(tmp_path)
        assert fresh.get(key) is None
        assert not path.exists()

    def test_clear_empties_both_tiers(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        cache.clear()
        assert key not in cache
        assert list(tmp_path.glob("*.pkl")) == []

    def test_memory_only_without_cache_dir(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        stats = cache.stats()
        assert stats["driver.cache.stores{tier=memory}"] == 1
        assert "driver.cache.stores{tier=disk}" not in stats


class TestMemoryCorruptionFallthrough:
    """A corrupt memory entry must not mask a valid disk entry."""

    def test_falls_through_to_valid_disk_entry(self, tmp_path, program,
                                               entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        # Corrupt the *memory* copy in place (bypassing materialize):
        # a function with no blocks fails the IR verifier.
        for func in cache._memory[key].program.functions.values():
            func.blocks.clear()

        hit = cache.get(key)
        assert hit is not None, "memory corruption masked the disk entry"
        assert format_program(hit.program) == format_program(entry.program)
        stats = cache.stats()
        assert stats["driver.cache.hits{tier=disk}"] == 1
        assert stats["driver.cache.corrupt"] == 1
        assert stats["misses"] == 0
        # The disk hit was re-promoted to memory; next get is a memory hit.
        cache.get(key)
        assert cache.stats()["driver.cache.hits{tier=memory}"] == 1

    def test_memory_only_corruption_is_a_miss(self, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache()  # no disk tier to fall through to
        cache.put(key, entry)
        for func in cache._memory[key].program.functions.values():
            func.blocks.clear()
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["driver.cache.corrupt"] == 1


class TestDiskByteBudget:
    def _entry_bytes(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        probe = CompileCache(tmp_path / "probe")
        probe.put(key, entry)
        (path,) = (tmp_path / "probe").glob("*.pkl")
        return path.stat().st_size

    def test_oldest_mtime_evicted_first(self, tmp_path, program, entry):
        import os

        size = self._entry_bytes(tmp_path, program, entry)
        cache = CompileCache(tmp_path)  # no cap: prune on demand below
        for index, name in enumerate(("k-old", "k-mid", "k-new")):
            cache.put(name, entry)
            # mtime resolution can be coarse; force a strict ordering.
            when = 1_000_000 + index * 10
            os.utime(cache._path(name), (when, when))
        evicted = cache.prune(max_bytes=int(size * 2.5))
        assert evicted == 1
        assert not cache._path("k-old").exists()
        assert cache._path("k-mid").exists()
        assert cache._path("k-new").exists()
        stats = cache.stats()
        assert stats["driver.cache.evictions{tier=disk}"] == 1
        assert stats["driver.cache.evictions"] == 1

    def test_put_applies_the_budget(self, tmp_path, program, entry):
        size = self._entry_bytes(tmp_path, program, entry)
        cache = CompileCache(tmp_path, max_bytes=int(size * 1.5))
        cache.put("first", entry)
        cache.put("second", entry)  # exceeds the budget; first is evicted
        files = sorted(p.name for p in tmp_path.glob("*.pkl"))
        assert files == ["second.pkl"]
        assert cache.stats()["driver.cache.evictions{tier=disk}"] == 1

    def test_no_budget_means_unbounded(self, tmp_path, program, entry):
        cache = CompileCache(tmp_path)
        for name in ("a", "b", "c"):
            cache.put(name, entry)
        assert cache.prune() == 0
        assert len(list(tmp_path.glob("*.pkl"))) == 3

    def test_env_budget(self, tmp_path, program, entry, monkeypatch):
        size = self._entry_bytes(tmp_path, program, entry)
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(int(size * 1.5)))
        cache = CompileCache(tmp_path)
        assert cache.max_bytes == int(size * 1.5)
        cache.put("first", entry)
        cache.put("second", entry)
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_disk_usage_reported_in_stats(self, tmp_path, program, entry):
        cache = CompileCache(tmp_path)
        cache.put("only", entry)
        stats = cache.stats()
        assert stats["disk_entries"] == 1
        assert stats["disk_bytes"] > 0
