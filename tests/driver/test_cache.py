"""Two-tier compile cache: hits, misses, eviction, and corruption."""

import pickle

import pytest

from repro.core import VARIANTS, compile_ir
from repro.driver import CacheEntry, CompileCache, cache_key
from repro.frontend import compile_source
from repro.ir.printer import format_program

SOURCE = """
void main() {
    int[] a = new int[8];
    int t = 0;
    for (int i = 0; i < 8; i++) { a[i] = i * 3; t += a[i]; }
    sink(t);
}
"""

FULL = VARIANTS["new algorithm (all)"]
BASELINE = VARIANTS["baseline"]


@pytest.fixture()
def program():
    return compile_source(SOURCE, "cache_kernel")


@pytest.fixture()
def entry(program):
    result = compile_ir(program, FULL)
    return CacheEntry(
        program=result.program,
        function_stats=result.function_stats,
        timing_seconds=dict(result.timing.seconds),
    )


class TestMemoryTier:
    def test_miss_then_hit(self, program, entry):
        cache = CompileCache()
        key = cache_key(program, FULL, None)
        assert cache.get(key) is None
        cache.put(key, entry)
        hit = cache.get(key)
        assert hit is not None
        assert format_program(hit.program) == format_program(entry.program)
        assert hit.function_stats == entry.function_stats
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_hits_are_detached_clones(self, program, entry):
        cache = CompileCache()
        key = cache_key(program, FULL, None)
        cache.put(key, entry)
        first = cache.get(key)
        # Mutilate the copy we were handed; the cache must not notice.
        first.program.functions.clear()
        second = cache.get(key)
        assert second.program.functions
        assert format_program(second.program) == \
            format_program(entry.program)

    def test_config_change_misses(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        assert cache.get(cache_key(program, BASELINE, None)) is None

    def test_ir_change_misses(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        other = compile_source(SOURCE.replace("* 3", "* 5"), "cache_kernel")
        assert cache.get(cache_key(other, FULL, None)) is None

    def test_lru_eviction(self, program, entry):
        cache = CompileCache(memory_entries=2)
        cache.put("k1", entry)
        cache.put("k2", entry)
        cache.get("k1")  # refresh k1 so k2 is the LRU victim
        cache.put("k3", entry)
        assert cache.stats()["driver.cache.evictions"] == 1
        assert "k1" in cache and "k3" in cache
        assert "k2" not in cache


class TestDiskTier:
    def test_survives_new_cache_instance(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        CompileCache(tmp_path).put(key, entry)

        fresh = CompileCache(tmp_path)  # models a process restart
        hit = fresh.get(key)
        assert hit is not None
        assert format_program(hit.program) == format_program(entry.program)
        stats = fresh.stats()
        assert stats["driver.cache.hits{tier=disk}"] == 1
        # Disk hits are promoted to memory; the next get is a memory hit.
        fresh.get(key)
        assert fresh.stats()["driver.cache.hits{tier=memory}"] == 1

    def test_truncated_file_is_discarded(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")

        fresh = CompileCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats()["driver.cache.corrupt"] == 1
        assert not (tmp_path / f"{key}.pkl").exists()

    def test_version_mismatch_is_discarded(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        path = tmp_path / f"{key}.pkl"
        payload = pickle.loads(path.read_bytes())
        payload["version"] = "0.0.0"
        path.write_bytes(pickle.dumps(payload))

        fresh = CompileCache(tmp_path)
        assert fresh.get(key) is None
        assert not path.exists()

    def test_clear_empties_both_tiers(self, tmp_path, program, entry):
        key = cache_key(program, FULL, None)
        cache = CompileCache(tmp_path)
        cache.put(key, entry)
        cache.clear()
        assert key not in cache
        assert list(tmp_path.glob("*.pkl")) == []

    def test_memory_only_without_cache_dir(self, program, entry):
        cache = CompileCache()
        cache.put(cache_key(program, FULL, None), entry)
        stats = cache.stats()
        assert stats["driver.cache.stores{tier=memory}"] == 1
        assert "driver.cache.stores{tier=disk}" not in stats
