"""BatchCompiler: parallel equivalence, fallbacks, and cache reuse.

The pool tests run real worker processes; the kernel is kept tiny so
each compile is milliseconds and the suite stays fast even on one CPU.
"""

import pytest

from repro.core import VARIANTS
from repro.driver import BatchCompiler, CompileCache, CompileJob
from repro.frontend import compile_source
from repro.interp.profiler import collect_branch_profiles
from repro.ir.printer import format_program

SOURCE = """
void main() {
    int[] a = new int[12];
    int t = 0;
    for (int i = 0; i < 12; i++) { a[i] = i - 6; t += a[i] * i; }
    sink(t);
}
"""

FULL = VARIANTS["new algorithm (all)"]


def _program():
    return compile_source(SOURCE, "batch_kernel")


def _grid_jobs(profiles=None):
    """One job per paper variant — a miniature harness grid."""
    program = _program()
    return [
        CompileJob(label=name, program=program, config=config,
                   profiles=profiles)
        for name, config in VARIANTS.items()
    ]


class TestSerial:
    def test_compile_one(self):
        with BatchCompiler() as driver:
            result = driver.compile_one(
                CompileJob("one", _program(), FULL)
            )
        assert result.function_stats
        assert driver.stats()["driver.pool.jobs"] == 1
        assert driver.stats()["driver.pool.compiled{mode=inline}"] == 1

    def test_results_in_submission_order(self):
        jobs = _grid_jobs()
        with BatchCompiler() as driver:
            results = driver.compile_batch(jobs)
        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            assert result.config is job.config


class TestParallelEquivalence:
    def test_parallel_matches_serial_byte_for_byte(self):
        profiles = collect_branch_profiles(_program())
        with BatchCompiler(jobs=1) as driver:
            serial = driver.compile_batch(_grid_jobs(profiles))
        with BatchCompiler(jobs=2) as driver:
            parallel = driver.compile_batch(_grid_jobs(profiles))
            stats = driver.stats()

        assert stats["driver.pool.compiled{mode=worker}"] == len(VARIANTS)
        for name, s, p in zip(VARIANTS, serial, parallel):
            assert format_program(s.program) == format_program(p.program), \
                f"variant {name!r} diverged between serial and parallel"
            assert s.function_stats == p.function_stats, name


class TestFallbacks:
    def test_worker_crash_degrades_to_inline(self):
        program = _program()
        jobs = [
            CompileJob("healthy", program, FULL),
            CompileJob("doomed", program, FULL, simulate_crash=True),
        ]
        with BatchCompiler(jobs=2) as driver:
            results = driver.compile_batch(jobs)
            stats = driver.stats()
        assert all(r.function_stats for r in results)
        assert stats["driver.pool.fallbacks{reason=crash}"] >= 1
        # The crashed job recompiled in-process; the batch is complete
        # and both results match a plain serial compile.
        with BatchCompiler() as driver:
            expected = driver.compile_one(CompileJob("ref", program, FULL))
        for result in results:
            assert format_program(result.program) == \
                format_program(expected.program)

    def test_timeout_degrades_to_inline(self):
        program = _program()
        jobs = [
            CompileJob("slow", program, FULL, simulate_delay=30.0),
            CompileJob("fast", program, FULL),
        ]
        with BatchCompiler(jobs=2, timeout=0.5) as driver:
            results = driver.compile_batch(jobs)
            stats = driver.stats()
        assert all(r.function_stats for r in results)
        assert stats["driver.pool.fallbacks{reason=timeout}"] >= 1

    def test_crash_hook_ignored_inline(self):
        # Serial drivers must never honour the worker-only hook, or a
        # fallback recompile of a crashing job would kill the caller.
        job = CompileJob("inline", _program(), FULL, simulate_crash=True)
        with BatchCompiler() as driver:
            result = driver.compile_one(job)
        assert result.function_stats


class TestCacheIntegration:
    def test_warm_batch_never_recompiles(self, tmp_path):
        cache = CompileCache(tmp_path)
        with BatchCompiler(cache=cache) as driver:
            cold = driver.compile_batch(_grid_jobs())
            compiled_cold = driver.stats().get(
                "driver.pool.compiled{mode=inline}", 0
            )
        assert cache.stats()["misses"] == len(VARIANTS)
        assert compiled_cold == len(VARIANTS)

        # The warm driver shares the cache's metrics registry, so the
        # compiled counter must simply not move.
        with BatchCompiler(cache=cache) as driver:
            warm = driver.compile_batch(_grid_jobs())
            stats = driver.stats()
        assert stats["hits"] == len(VARIANTS)
        assert stats["driver.pool.compiled{mode=inline}"] == compiled_cold
        assert "driver.pool.compiled{mode=worker}" not in stats
        for c, w in zip(cold, warm):
            assert format_program(c.program) == format_program(w.program)
            assert c.function_stats == w.function_stats

    def test_cold_disk_tier_warms_new_driver(self, tmp_path):
        with BatchCompiler(cache=CompileCache(tmp_path)) as driver:
            driver.compile_batch(_grid_jobs())

        fresh_cache = CompileCache(tmp_path)  # no shared memory tier
        with BatchCompiler(cache=fresh_cache) as driver:
            driver.compile_batch(_grid_jobs())
        assert fresh_cache.stats()["driver.cache.hits{tier=disk}"] == \
            len(VARIANTS)

    def test_telemetry_jobs_bypass_cache(self, tmp_path):
        cache = CompileCache(tmp_path)
        job = CompileJob("telemetry", _program(), FULL,
                         collect_telemetry=True)
        with BatchCompiler(cache=cache) as driver:
            driver.compile_one(job)
            driver.compile_one(job)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0


class TestTelemetryMerge:
    def test_worker_telemetry_merges_into_parent(self):
        from repro.telemetry import Telemetry

        parent = Telemetry(label="driver")
        program = _program()
        jobs = [
            CompileJob("cell-a", program, FULL, collect_telemetry=True),
            CompileJob("cell-b", program, FULL, collect_telemetry=True),
        ]
        with BatchCompiler(jobs=2, telemetry=parent) as driver:
            results = driver.compile_batch(jobs)
        assert all(r.telemetry is not None for r in results)
        merged = [s.name for s in parent.tracer.roots]
        assert len(merged) == 2
        assert all(name.startswith("merged:") for name in merged)

    def test_trace_id_labels_worker_telemetry(self):
        """A request-scoped trace id rides the job into the worker and
        comes back as the telemetry label, so merged span forests are
        attributable to the originating request."""
        job = CompileJob("cell", _program(), FULL,
                         collect_telemetry=True, trace_id="req-42")
        with BatchCompiler() as driver:
            result = driver.compile_one(job)
        assert result.telemetry.label == "req-42"

    def test_label_used_when_no_trace_id(self):
        job = CompileJob("cell", _program(), FULL,
                         collect_telemetry=True)
        with BatchCompiler() as driver:
            result = driver.compile_one(job)
        assert result.telemetry.label == "cell"


class TestStatsDeterminism:
    def test_stats_keys_sorted(self):
        """stats() is key-sorted so dumps diff cleanly across runs."""
        with BatchCompiler() as driver:
            driver.compile_batch(_grid_jobs())
            stats = driver.stats()
        assert list(stats) == sorted(stats)
