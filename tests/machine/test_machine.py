"""Tests for machine traits, cost model, and assembly-style lowering."""

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.machine import IA64, MACHINES, PPC64, LoadExt
from repro.machine.costs import DEFAULT_COSTS, count_cycles
from repro.machine.lower import lower_function
from repro.ir import Opcode, ScalarType
from tests.conftest import run_machine


class TestTraits:
    def test_registry(self):
        assert MACHINES["ia64"] is IA64
        assert MACHINES["ppc64"] is PPC64

    def test_ia64_loads_zero_extend(self):
        for elem in (ScalarType.I8, ScalarType.I16, ScalarType.I32):
            assert IA64.load_extension(elem) is LoadExt.ZERO

    def test_ppc64_lwa_lha(self):
        assert PPC64.load_extension(ScalarType.I32) is LoadExt.SIGN
        assert PPC64.load_extension(ScalarType.I16) is LoadExt.SIGN
        assert PPC64.load_extension(ScalarType.I8) is LoadExt.ZERO
        assert PPC64.load_extension(ScalarType.U16) is LoadExt.ZERO


class TestCostModel:
    def test_every_opcode_priced(self):
        for opcode in Opcode:
            assert opcode in DEFAULT_COSTS

    def test_eliminating_extends_reduces_cycles(self):
        source = """
        void main() {
            int[] a = new int[50];
            int t = 0;
            for (int i = 0; i < 50; i++) { a[i] = i; }
            for (int i = 0; i < 50; i++) { t += a[i]; }
            sink(t);
        }
        """
        program = compile_source(source)
        base = compile_ir(program, VARIANTS["baseline"])
        best = compile_ir(program, VARIANTS["new algorithm (all)"])
        base_run = run_machine(base.program)
        best_run = run_machine(best.program)
        base_cycles = count_cycles(base.program, base_run, IA64)
        best_cycles = count_cycles(best.program, best_run, IA64)
        assert best_cycles.total < base_cycles.total
        assert best_cycles.extend_cycles < base_cycles.extend_cycles
        # Figures 13/14 convention: improvement of the variant over the
        # baseline is positive when the variant is faster.
        assert best_cycles.improvement_over(base_cycles) > 0
        assert base_cycles.improvement_over(best_cycles) < 0


class TestLowering:
    def _compiled(self, variant):
        source = """
        void main() {
            int[] a = new int[8];
            for (int i = 0; i < 8; i++) { a[i] = i; }
            sink(a[3]);
        }
        """
        program = compile_source(source)
        return compile_ir(program, VARIANTS[variant]).program.main

    def test_ia64_array_shape(self):
        """Figure 4(b): sxt4 + shladd for a baseline array access."""
        code = lower_function(self._compiled("baseline"), IA64)
        assert code.counts.get("shladd", 0) >= 1
        assert code.counts.get("sxt4", 0) >= 1

    def test_optimized_drops_sxt(self):
        base = lower_function(self._compiled("baseline"), IA64)
        best = lower_function(self._compiled("new algorithm (all)"), IA64)
        assert best.counts.get("sxt4", 0) < base.counts.get("sxt4", 0)
        # The address add is still there.
        assert best.counts.get("shladd", 0) >= 1

    def test_ppc64_uses_rldic_and_exts(self):
        code = lower_function(self._compiled("baseline"), PPC64)
        assert code.counts.get("rldic", 0) >= 1
        text = code.text
        assert "extsw" in text or "exts" in text

    def test_ppc64_lwa_for_int_loads(self):
        code = lower_function(self._compiled("baseline"), PPC64)
        assert code.counts.get("lwa", 0) >= 1

    def test_text_is_labelled(self):
        code = lower_function(self._compiled("baseline"), IA64)
        assert any(line.endswith(":") for line in code.lines)
