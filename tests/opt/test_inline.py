"""Tests for function inlining."""

from repro.frontend import compile_source
from repro.ir import Opcode
from repro.ir.clone import clone_program
from repro.opt import inline_small_functions
from tests.conftest import run_ideal


def _call_count(program):
    return sum(
        1 for func in program.functions.values()
        for _, instr in func.instructions()
        if instr.opcode is Opcode.CALL
    )


class TestInlining:
    def test_inlines_small_helper(self):
        program = compile_source("""
            int add3(int a, int b, int c) { return a + b + c; }
            int main() { return add3(1, 2, 3) + add3(4, 5, 6); }
        """)
        gold = run_ideal(program).ret_value
        changed = inline_small_functions(program)
        assert changed
        # All call sites in main gone.
        assert not any(
            i.opcode is Opcode.CALL
            for _, i in program.main.instructions()
        )
        assert run_ideal(program).ret_value == gold

    def test_void_helper(self):
        program = compile_source("""
            int counter = 0;
            void bump() { counter = counter + 3; }
            int main() { bump(); bump(); return counter; }
        """)
        inline_small_functions(program)
        assert _call_count(program) == 0
        assert run_ideal(program).ret_value == 6

    def test_helper_with_control_flow(self):
        program = compile_source("""
            int sign(int x) {
                if (x > 0) { return 1; }
                if (x < 0) { return -1; }
                return 0;
            }
            int main() {
                return sign(5) * 100 + sign(-7) * 10 + sign(0);
            }
        """)
        gold = run_ideal(program).ret_value
        inline_small_functions(program)
        assert run_ideal(program).ret_value == gold
        assert not any(
            i.opcode is Opcode.CALL
            for _, i in program.main.instructions()
        )

    def test_recursive_not_inlined(self):
        program = compile_source("""
            int fact(int n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int main() { return fact(6); }
        """)
        inline_small_functions(program)
        # The recursive call inside fact remains.
        fact = program.function("fact")
        assert any(i.opcode is Opcode.CALL for _, i in fact.instructions())
        assert run_ideal(program).ret_value == 720

    def test_large_callee_not_inlined(self):
        big_body = "\n".join(f"    s += {i};" for i in range(100))
        program = compile_source(f"""
            int big(int s) {{
{big_body}
                return s;
            }}
            int main() {{ return big(0); }}
        """)
        inline_small_functions(program)
        assert _call_count(program) == 1

    def test_deterministic_labels(self):
        source = """
            int twice(int x) { return x + x; }
            int main() { return twice(3) + twice(4); }
        """
        a = compile_source(source)
        b = clone_program(a)
        inline_small_functions(a)
        inline_small_functions(b)
        labels_a = [blk.label for blk in a.main.blocks]
        labels_b = [blk.label for blk in b.main.blocks]
        assert labels_a == labels_b

    def test_inlined_loop_in_caller_loop(self):
        program = compile_source("""
            int weight(int v) { return (v & 15) * 3; }
            int main() {
                int t = 0;
                for (int i = 0; i < 50; i++) { t += weight(i); }
                return t;
            }
        """)
        gold = run_ideal(program).ret_value
        inline_small_functions(program)
        assert run_ideal(program).ret_value == gold

    def test_nested_helpers_inline_in_rounds(self):
        program = compile_source("""
            int inner(int x) { return x * 2; }
            int outer(int x) { return inner(x) + 1; }
            int main() { return outer(10); }
        """)
        inline_small_functions(program)
        assert not any(
            i.opcode is Opcode.CALL
            for _, i in program.main.instructions()
        )
        assert run_ideal(program).ret_value == 21

    def test_enables_array_theorem_through_call(self):
        """The motivation: a helper's parameter index becomes provable
        after inlining."""
        from repro.core import VARIANTS, compile_ir
        from repro.interp import Interpreter

        program = compile_source("""
            int pick(int[] a, int k) { return a[k & 31]; }
            int main() {
                int[] a = new int[32];
                int t = 0;
                for (int i = 0; i < 32; i++) { a[i] = i; }
                for (int i = 0; i < 200; i++) { t += pick(a, i * 7); }
                sink(t);
                return t;
            }
        """)
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = Interpreter(compiled.program).run()
        assert run.observable() == gold.observable()
        # Without inlining the call boundary would demand canonical
        # arguments every iteration; with it, almost nothing remains.
        assert run.extends32 <= 5
