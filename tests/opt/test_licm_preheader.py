"""LICM preheader creation in awkward CFGs."""

from repro.ir import Cond, Opcode, Program, ScalarType, build_function
from repro.opt import hoist_loop_invariants
from tests.conftest import run_ideal


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestPreheaderCreation:
    def test_two_entries_to_header(self):
        """The loop header has two out-of-loop predecessors: a fresh
        preheader must be created so the hoist has a single landing."""
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        i = b.func.named_reg("i", ScalarType.I32)
        acc = b.func.named_reg("acc", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        five = b.const(5)
        seven = b.const(7)
        left = b.block("left")
        right = b.block("right")
        header = b.block("header")
        done = b.block("done")
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, zero)
        b.mov(zero, acc)
        b.br(cond, left, right)
        b.switch(left)
        b.mov(zero, i)
        b.jmp(header)
        b.switch(right)
        b.mov(seven, i)
        b.jmp(header)
        b.switch(header)
        invariant = b.binop(Opcode.MUL32, x, x)
        b.binop(Opcode.ADD32, acc, invariant, acc)
        b.binop(Opcode.ADD32, i, one, i)
        back = b.cmp(Opcode.CMP32, Cond.LT, i, five)
        b.br(back, header, done)
        b.switch(done)
        b.sink(acc)
        b.ret(acc)

        for args in ((0, 3), (1, 3)):
            gold = run_ideal(program, args=args).observable()
            break
        gold0 = run_ideal(program, args=(0, 3)).observable()
        gold1 = run_ideal(program, args=(1, 3)).observable()
        changed = hoist_loop_invariants(program.main)
        assert changed
        assert run_ideal(program, args=(0, 3)).observable() == gold0
        assert run_ideal(program, args=(1, 3)).observable() == gold1
        header_block = program.main.block(header.label)
        assert all(instr.opcode is not Opcode.MUL32
                   for instr in header_block.instrs)
        del gold

    def test_critical_edge_pred(self):
        """The only outside predecessor also branches elsewhere: the
        edge must be split rather than hoisting into the branchy pred."""
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        three = b.const(3)
        header = b.block("header")
        skip = b.block("skip")
        done = b.block("done")
        b.mov(zero, i)
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, zero)
        b.br(cond, header, skip)  # entry -> header is a critical edge
        b.switch(header)
        invariant = b.binop(Opcode.MUL32, x, x)
        b.sink(invariant)
        b.binop(Opcode.ADD32, i, one, i)
        back = b.cmp(Opcode.CMP32, Cond.LT, i, three)
        b.br(back, header, done)
        b.switch(skip)
        b.ret(zero)
        b.switch(done)
        b.ret(i)

        gold_taken = run_ideal(program, args=(1, 4)).observable()
        gold_skip = run_ideal(program, args=(0, 4)).observable()
        hoist_loop_invariants(program.main)
        # The skip path must not execute the (hoisted) multiply's sink,
        # and overall behaviour is unchanged on both paths.
        assert run_ideal(program, args=(1, 4)).observable() == gold_taken
        assert run_ideal(program, args=(0, 4)).observable() == gold_skip
        # The entry block itself must not contain the multiply (it would
        # execute on the skip path; value-wise harmless here, but the
        # preheader discipline requires the split).
        entry_ops = [i.opcode for i in program.main.entry.instrs]
        assert Opcode.MUL32 not in entry_ops
