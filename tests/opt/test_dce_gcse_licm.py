"""Tests for DCE, global CSE, and loop-invariant code motion."""

from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from repro.opt import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    hoist_loop_invariants,
)
from tests.conftest import run_ideal


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestDCE:
    def test_removes_unused_pure_computation(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        b.binop(Opcode.MUL32, b.func.params[0], b.func.params[0])  # dead
        b.ret(b.func.params[0])
        eliminate_dead_code(program.main)
        assert _count(program.main, Opcode.MUL32) == 0

    def test_removes_transitively_dead(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        t = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        b.binop(Opcode.MUL32, t, t)  # dead, makes the add dead too
        b.ret(b.func.params[0])
        eliminate_dead_code(program.main)
        assert _count(program.main, Opcode.ADD32) == 0
        assert _count(program.main, Opcode.MUL32) == 0

    def test_keeps_side_effects(self):
        program = Program()
        b = build_function(program, "main", [], None)
        n = b.const(4)
        b.newarray(ScalarType.I32, n)  # result unused but allocates
        b.ret()
        eliminate_dead_code(program.main)
        assert _count(program.main, Opcode.NEWARRAY) == 1

    def test_keeps_live_chain(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        t = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        b.ret(t)
        eliminate_dead_code(program.main)
        assert _count(program.main, Opcode.ADD32) == 1


class TestGCSE:
    def test_eliminates_redundant_computation(self):
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        x, y = b.func.params
        first = b.binop(Opcode.ADD32, x, y)
        second = b.binop(Opcode.ADD32, x, y)  # redundant
        result = b.binop(Opcode.XOR32, first, second)
        b.ret(result)
        gold = None
        changed = eliminate_common_subexpressions(program.main)
        assert changed
        # After CSE + cleanup there is a single add.
        from repro.opt import eliminate_dead_code, propagate_copies
        propagate_copies(program.main)
        eliminate_dead_code(program.main)
        assert _count(program.main, Opcode.ADD32) == 1
        del gold

    def test_respects_operand_redefinition(self):
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        x, y = b.func.params
        v = b.func.named_reg("v", ScalarType.I32)
        b.mov(x, v)
        first = b.binop(Opcode.ADD32, v, y)
        b.mov(y, v)  # v changes: add v,y is no longer available
        second = b.binop(Opcode.ADD32, v, y)
        result = b.binop(Opcode.XOR32, first, second)
        b.sink(result)
        b.ret(result)
        gold = run_ideal(program, args=(3, 9)).observable()
        eliminate_common_subexpressions(program.main)
        assert run_ideal(program, args=(3, 9)).observable() == gold

    def test_self_updating_accumulator_not_csed(self):
        """Regression: v = fadd v, x twice must compute twice."""
        program = Program()
        b = build_function(program, "main", [], None)
        v = b.func.named_reg("v", ScalarType.F64)
        b.mov(b.const(1.0, ScalarType.F64), v)
        x = b.const(2.0, ScalarType.F64)
        b.binop(Opcode.FADD, v, x, v)
        b.binop(Opcode.FADD, v, x, v)
        b.sink(v)
        b.ret()
        gold = run_ideal(program).observable()
        eliminate_common_subexpressions(program.main)
        assert run_ideal(program).observable() == gold

    def test_not_available_across_diverging_paths(self):
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        left = b.block("left")
        join = b.block("join")
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, b.const(0))
        b.br(cond, left, join)
        b.switch(left)
        b.binop(Opcode.MUL32, x, x)  # only on one path
        b.jmp(join)
        b.switch(join)
        result = b.binop(Opcode.MUL32, x, x)  # NOT fully redundant
        b.sink(result)
        b.ret(result)
        gold = run_ideal(program, args=(1, 6)).observable()
        eliminate_common_subexpressions(program.main)
        assert run_ideal(program, args=(1, 6)).observable() == gold


class TestLICM:
    def _loop_with_invariant(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        i = b.func.named_reg("i", ScalarType.I32)
        acc = b.func.named_reg("acc", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        ten = b.const(10)
        b.mov(zero, i)
        b.mov(zero, acc)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        invariant = b.binop(Opcode.MUL32, x, x)  # hoistable
        b.binop(Opcode.ADD32, acc, invariant, acc)
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, ten)
        b.br(cond, loop, done)
        b.switch(done)
        b.sink(acc)
        b.ret(acc)
        return program, loop

    def test_hoists_invariant_multiply(self):
        program, loop = self._loop_with_invariant()
        gold = run_ideal(program, args=(6,)).observable()
        changed = hoist_loop_invariants(program.main)
        assert changed
        assert run_ideal(program, args=(6,)).observable() == gold
        assert all(i.opcode is not Opcode.MUL32 for i in loop.instrs)

    def test_hoists_self_extend(self):
        """A loop-invariant r = extend32(r) moves to the preheader."""
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        five = b.const(5)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.emit(Instr(Opcode.EXTEND32, x, (x,)))
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, five)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(x)
        changed = hoist_loop_invariants(program.main)
        assert changed
        assert all(i.opcode is not Opcode.EXTEND32 for i in loop.instrs)

    def test_does_not_hoist_variant_computation(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        five = b.const(5)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        square = b.binop(Opcode.MUL32, i, i)  # depends on i: stays
        b.sink(square)
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, five)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        gold = run_ideal(program).observable()
        hoist_loop_invariants(program.main)
        assert run_ideal(program).observable() == gold
        assert any(i.opcode is Opcode.MUL32 for i in loop.instrs)

    def test_does_not_hoist_trapping_div(self):
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        x, y = b.func.params
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        b.mov(zero, i)
        header = b.block("header")
        body = b.block("body")
        done = b.block("done")
        b.jmp(header)
        b.switch(header)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, zero)  # loop never runs
        b.br(cond, body, done)
        b.switch(body)
        q = b.binop(Opcode.DIV32, x, y)  # would trap if y == 0
        b.sink(q)
        b.binop(Opcode.ADD32, i, one, i)
        b.jmp(header)
        b.switch(done)
        b.ret(i)
        hoist_loop_invariants(program.main)
        assert all(i.opcode is not Opcode.DIV32
                   for i in program.main.entry.instrs)
        # With y == 0 and zero iterations this must not trap.
        from repro.interp import Interpreter
        result = Interpreter(program, mode="ideal").run("main", (5, 0))
        assert result.ret_value == 0
