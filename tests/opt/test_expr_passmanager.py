"""Tests for expression keys and the pass manager."""

import time

from repro.ir import Cond, Instr, Opcode, ScalarType, VReg
from repro.opt import (
    BUCKET_CHAINS,
    BUCKET_OTHERS,
    BUCKET_SIGN_EXT,
    Pass,
    PassManager,
    Timing,
    expr_key,
    is_idempotent_self_extend,
    kills_expr,
)


def _r(name, t=ScalarType.I32):
    return VReg(name, t)


class TestExprKey:
    def test_commutative_normalization(self):
        a = Instr(Opcode.ADD32, _r("d"), (_r("x"), _r("y")))
        b = Instr(Opcode.ADD32, _r("e"), (_r("y"), _r("x")))
        assert expr_key(a) == expr_key(b)

    def test_non_commutative_kept_ordered(self):
        a = Instr(Opcode.SUB32, _r("d"), (_r("x"), _r("y")))
        b = Instr(Opcode.SUB32, _r("e"), (_r("y"), _r("x")))
        assert expr_key(a) != expr_key(b)

    def test_cond_distinguishes(self):
        a = Instr(Opcode.CMP32, _r("p"), (_r("x"), _r("y")), cond=Cond.LT)
        b = Instr(Opcode.CMP32, _r("q"), (_r("x"), _r("y")), cond=Cond.GT)
        assert expr_key(a) != expr_key(b)

    def test_impure_ops_excluded(self):
        load = Instr(Opcode.ALOAD, _r("d"), (_r("a", ScalarType.REF), _r("i")),
                     elem=ScalarType.I32)
        assert expr_key(load) is None
        div = Instr(Opcode.DIV32, _r("d"), (_r("x"), _r("y")))
        assert expr_key(div) is None  # can trap

    def test_self_extend_detection(self):
        same = Instr(Opcode.EXTEND32, _r("x"), (_r("x"),))
        different = Instr(Opcode.EXTEND32, _r("y"), (_r("x"),))
        assert is_idempotent_self_extend(same)
        assert not is_idempotent_self_extend(different)

    def test_kills_expr(self):
        add = Instr(Opcode.ADD32, _r("d"), (_r("x"), _r("y")))
        key = expr_key(add)
        killer = Instr(Opcode.MOV, _r("x"), (_r("z"),))
        unrelated = Instr(Opcode.MOV, _r("w"), (_r("z"),))
        assert kills_expr(killer, key)
        assert not kills_expr(unrelated, key)
        # The idempotent self-extend does not kill its own expression.
        ext = Instr(Opcode.EXTEND32, _r("x"), (_r("x"),))
        assert not kills_expr(ext, expr_key(ext))
        # But it does kill other expressions reading x.
        assert kills_expr(ext, key)


class TestTiming:
    def test_accumulates(self):
        timing = Timing()
        timing.add(BUCKET_SIGN_EXT, 0.25)
        timing.add(BUCKET_SIGN_EXT, 0.25)
        timing.add(BUCKET_CHAINS, 0.5)
        assert timing.seconds[BUCKET_SIGN_EXT] == 0.5
        assert timing.total() == 1.0
        assert timing.fraction(BUCKET_CHAINS) == 0.5
        exported = timing.as_dict()
        assert exported["sign_ext"] == 0.5
        assert exported["chains"] == 0.5
        assert exported["others"] == 0.0
        assert exported["total"] == 1.0

    def test_merge(self):
        a = Timing({BUCKET_OTHERS: 1.0})
        b = Timing({BUCKET_OTHERS: 2.0, BUCKET_CHAINS: 1.0})
        a.merge(b)
        assert a.seconds[BUCKET_OTHERS] == 3.0
        assert a.seconds[BUCKET_CHAINS] == 1.0

    def test_empty_fraction(self):
        assert Timing().fraction(BUCKET_OTHERS) == 0.0


class TestPassManager:
    def test_runs_passes_and_times_them(self):
        calls = []

        def slow_pass(func):
            calls.append(func)
            time.sleep(0.001)
            return False

        manager = PassManager([Pass("p", slow_pass, BUCKET_OTHERS)])
        from tests.conftest import make_fig7_program

        func = make_fig7_program(3).main
        manager.run(func)
        assert calls == [func]
        assert manager.timing.seconds[BUCKET_OTHERS] > 0

    def test_fixpoint_stops_when_stable(self):
        countdown = [3]

        def changing_pass(_func):
            countdown[0] -= 1
            return countdown[0] > 0

        manager = PassManager([Pass("p", changing_pass)])
        from tests.conftest import make_fig7_program

        manager.run_to_fixpoint(make_fig7_program(3).main, max_rounds=10)
        assert countdown[0] == 0
