"""Tests for constant folding, simplification, and copy propagation."""

from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from repro.opt import fold_constants, propagate_copies, simplify
from tests.conftest import run_ideal


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestConstantFolding:
    def test_folds_add(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        result = b.binop(Opcode.ADD32, b.const(2), b.const(3))
        b.ret(result)
        fold_constants(program.main)
        assert _count(program.main, Opcode.ADD32) == 0
        assert run_ideal(program).ret_value == 5

    def test_folds_wrapping_add(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        result = b.binop(Opcode.ADD32, b.const(0x7FFFFFFF), b.const(1))
        b.sink(result)
        b.ret(result)
        gold = run_ideal(program).observable()
        fold_constants(program.main)
        assert run_ideal(program).observable() == gold
        consts = [i.imm for _, i in program.main.instructions()
                  if i.opcode is Opcode.CONST]
        assert -0x80000000 in consts  # Java overflow semantics

    def test_folds_extend_of_constant(self):
        """The paper: constant propagation turns extend into a copy/const."""
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        c = b.const(0xFFF)
        dest = b.func.new_reg(ScalarType.I32)
        b.mov(c, dest)
        b.emit(Instr(Opcode.EXTEND8, dest, (dest,)))
        b.ret(dest)
        fold_constants(program.main)
        assert _count(program.main, Opcode.EXTEND8) == 0
        from repro.ir import wrap_u64
        assert run_ideal(program).ret_value == wrap_u64(-1)  # sext8(0xFF)

    def test_division_by_zero_not_folded(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        result = b.binop(Opcode.DIV32, b.const(5), b.const(0))
        b.ret(result)
        fold_constants(program.main)
        assert _count(program.main, Opcode.DIV32) == 1  # trap preserved

    def test_folds_transitively(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        a = b.binop(Opcode.MUL32, b.const(6), b.const(7))
        c = b.binop(Opcode.ADD32, a, b.const(1))
        b.ret(c)
        fold_constants(program.main)
        assert _count(program.main, Opcode.MUL32) == 0
        assert _count(program.main, Opcode.ADD32) == 0
        assert run_ideal(program).ret_value == 43

    def test_folds_cmp(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        p = b.cmp(Opcode.CMP32, Cond.LT, b.const(1), b.const(2))
        b.ret(p)
        fold_constants(program.main)
        assert _count(program.main, Opcode.CMP32) == 0
        assert run_ideal(program).ret_value == 1

    def test_folds_unsigned_cmp(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        # -1 unsigned is the largest 32-bit value.
        p = b.cmp(Opcode.CMP32, Cond.ULT, b.const(-1), b.const(1))
        b.ret(p)
        fold_constants(program.main)
        assert run_ideal(program).ret_value == 0


class TestSimplify:
    def test_add_zero_becomes_mov(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        result = b.binop(Opcode.ADD32, b.func.params[0], b.const(0))
        b.ret(result)
        simplify(program.main)
        assert _count(program.main, Opcode.ADD32) == 0
        assert _count(program.main, Opcode.MOV) == 1

    def test_mul_zero_becomes_const(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        result = b.binop(Opcode.MUL32, b.func.params[0], b.const(0))
        b.ret(result)
        simplify(program.main)
        assert _count(program.main, Opcode.MUL32) == 0

    def test_constant_branch_folded_and_unreachable_dropped(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        then_block = b.block("then")
        else_block = b.block("else")
        one = b.const(1)
        zero = b.const(0)
        b.br(one, then_block, else_block)
        b.switch(then_block)
        b.ret(one)
        b.switch(else_block)
        b.ret(zero)
        n_blocks = len(program.main.blocks)
        simplify(program.main)
        assert _count(program.main, Opcode.BR) == 0
        assert len(program.main.blocks) < n_blocks
        assert run_ideal(program).ret_value == 1

    def test_and_minus_one_identity(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        result = b.binop(Opcode.AND32, b.func.params[0], b.const(-1))
        b.ret(result)
        simplify(program.main)
        assert _count(program.main, Opcode.AND32) == 0


class TestCopyPropagation:
    def test_propagates_single_def_copy(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        t = b.mov(b.func.params[0])
        result = b.binop(Opcode.ADD32, t, t)
        b.ret(result)
        propagate_copies(program.main)
        add = [i for _, i in program.main.instructions()
               if i.opcode is Opcode.ADD32][0]
        assert all(s.name == b.func.params[0].name for s in add.srcs)

    def test_does_not_propagate_multi_def_source(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        s = b.func.named_reg("s", ScalarType.I32)
        b.mov(b.func.params[0], s)
        t = b.mov(s)
        b.mov(b.const(5), s)  # s redefined after the copy
        result = b.binop(Opcode.ADD32, t, t)
        b.ret(result)
        gold = run_ideal(program, args=(7,)).ret_value
        propagate_copies(program.main)
        assert run_ideal(program, args=(7,)).ret_value == gold
        add = [i for _, i in program.main.instructions()
               if i.opcode is Opcode.ADD32][0]
        # Must NOT read s (its value changed after the copy).
        assert all(src.name != "s" for src in add.srcs)
