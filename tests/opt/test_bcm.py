"""Tests for busy-code-motion PRE."""

from repro.ir import Cond, Opcode, Program, ScalarType, build_function
from repro.opt.bcm import busy_code_motion
from tests.conftest import run_ideal


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestFullRedundancy:
    def test_straightline_cse(self):
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        x, y = b.func.params
        first = b.binop(Opcode.ADD32, x, y)
        second = b.binop(Opcode.ADD32, x, y)
        out = b.binop(Opcode.XOR32, first, second)
        b.sink(out)
        b.ret(out)
        gold = run_ideal(program, args=(3, 4)).observable()
        assert busy_code_motion(program.main)
        assert run_ideal(program, args=(3, 4)).observable() == gold
        assert _count(program.main, Opcode.ADD32) == 1


class TestPartialRedundancy:
    def test_diamond_partial_redundancy(self):
        """e computed on one arm and after the join: BCM inserts on the
        other arm's edge so the join computation dies."""
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        left = b.block("left")
        join = b.block("join")
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, b.const(0))
        b.br(cond, left, join)
        b.switch(left)
        early = b.binop(Opcode.MUL32, x, x)
        b.sink(early)
        b.jmp(join)
        b.switch(join)
        late = b.binop(Opcode.MUL32, x, x)  # partially redundant
        b.sink(late)
        b.ret(late)
        gold_taken = run_ideal(program, args=(1, 6)).observable()
        gold_skip = run_ideal(program, args=(0, 6)).observable()
        assert busy_code_motion(program.main)
        assert run_ideal(program, args=(1, 6)).observable() == gold_taken
        assert run_ideal(program, args=(0, 6)).observable() == gold_skip
        # Dynamically each path now computes the multiply exactly once.
        run = run_ideal(program, args=(1, 6))
        assert run.opcode_counts[Opcode.MUL32] == 1

    def test_loop_invariant_hoisted(self):
        """BCM subsumes LICM: the loop-invariant multiply moves to the
        loop-entry edge."""
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        i = b.func.named_reg("i", ScalarType.I32)
        acc = b.func.named_reg("acc", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        ten = b.const(10)
        b.mov(zero, i)
        b.mov(zero, acc)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        invariant = b.binop(Opcode.MUL32, x, x)
        b.binop(Opcode.ADD32, acc, invariant, acc)
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, ten)
        b.br(cond, loop, done)
        b.switch(done)
        b.sink(acc)
        b.ret(acc)
        gold = run_ideal(program, args=(7,)).observable()
        assert busy_code_motion(program.main)
        result = run_ideal(program, args=(7,))
        assert result.observable() == gold
        assert result.opcode_counts[Opcode.MUL32] == 1  # once, not 10x

    def test_no_speculation_into_untaken_path(self):
        """Down-safety: nothing is inserted on a path that never needed
        the expression."""
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        compute = b.block("compute")
        skip = b.block("skip")
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, b.const(0))
        b.br(cond, compute, skip)
        b.switch(compute)
        v = b.binop(Opcode.MUL32, x, x)
        b.sink(v)
        b.ret(v)
        b.switch(skip)
        zero = b.const(0)
        b.ret(zero)
        busy_code_motion(program.main)
        run = run_ideal(program, args=(0, 5))
        assert run.opcode_counts.get(Opcode.MUL32, 0) == 0

    def test_extend_motion(self):
        """Idempotent self-extends move out of loops under BCM too."""
        from repro.ir import Instr

        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        five = b.const(5)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.emit(Instr(Opcode.EXTEND32, x, (x,)))
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, five)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(x)
        busy_code_motion(program.main)
        run = run_ideal(program, args=(9,))
        assert run.extend_counts[32] <= 1


class TestIdempotence:
    def test_second_run_is_noop(self):
        program = Program()
        b = build_function(program, "main",
                           [("p", ScalarType.I32), ("x", ScalarType.I32)],
                           ScalarType.I32)
        p, x = b.func.params
        left = b.block("left")
        join = b.block("join")
        cond = b.cmp(Opcode.CMP32, Cond.NE, p, b.const(0))
        b.br(cond, left, join)
        b.switch(left)
        b.sink(b.binop(Opcode.MUL32, x, x))
        b.jmp(join)
        b.switch(join)
        late = b.binop(Opcode.MUL32, x, x)
        b.ret(late)
        busy_code_motion(program.main)
        # A second application finds nothing partially redundant.
        gold = run_ideal(program, args=(1, 2)).observable()
        busy_code_motion(program.main)
        assert run_ideal(program, args=(1, 2)).observable() == gold
