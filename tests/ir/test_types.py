"""Unit tests for repro.ir.types."""

import pytest

from repro.ir.types import (
    INT32_MAX,
    INT32_MIN,
    ScalarType,
    as_signed64,
    is_canonical32,
    low32,
    sign_extend,
    wrap_u64,
    zero_extend,
)


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7F, 8) == 0x7F
        assert sign_extend(0x7FFF_FFFF, 32) == INT32_MAX

    def test_negative_extends(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0xFFFF_FFFF, 32) == -1
        assert sign_extend(0x8000_0000, 32) == INT32_MIN

    def test_ignores_upper_bits(self):
        assert sign_extend(0xDEAD_0000_0000_007F, 8) == 0x7F
        assert sign_extend(0xDEAD_0000_8000_0000, 32) == INT32_MIN

    def test_64_bit_identity_range(self):
        assert sign_extend(2**63 - 1, 64) == 2**63 - 1
        assert sign_extend(2**63, 64) == -(2**63)


class TestZeroExtend:
    def test_masks(self):
        assert zero_extend(-1, 32) == 0xFFFF_FFFF
        assert zero_extend(-1, 8) == 0xFF
        assert zero_extend(0x1_0000_0001, 32) == 1


class TestWrapU64:
    def test_wraps_negative(self):
        assert wrap_u64(-1) == 0xFFFF_FFFF_FFFF_FFFF

    def test_wraps_overflow(self):
        assert wrap_u64(2**64 + 5) == 5

    def test_roundtrip_signed(self):
        for value in (0, 1, -1, 2**62, -(2**62), INT32_MIN):
            assert as_signed64(wrap_u64(value)) == value


class TestCanonical:
    def test_canonical_values(self):
        assert is_canonical32(0)
        assert is_canonical32(wrap_u64(-1))
        assert is_canonical32(INT32_MAX)
        assert is_canonical32(wrap_u64(INT32_MIN))

    def test_non_canonical_values(self):
        assert not is_canonical32(0xFFFF_FFFF)  # zero-extended -1
        assert not is_canonical32(0x1_0000_0000)
        assert not is_canonical32(0x8000_0000)

    def test_low32(self):
        assert low32(wrap_u64(-1)) == 0xFFFF_FFFF
        assert low32(0x1234_5678_9ABC_DEF0) == 0x9ABC_DEF0


class TestScalarType:
    def test_narrow_classification(self):
        assert ScalarType.I32.is_narrow_int
        assert ScalarType.I8.is_narrow_int
        assert ScalarType.U16.is_narrow_int
        assert not ScalarType.I64.is_narrow_int
        assert not ScalarType.F64.is_narrow_int
        assert not ScalarType.REF.is_narrow_int

    def test_bits(self):
        assert ScalarType.I8.bits == 8
        assert ScalarType.U16.bits == 16
        assert ScalarType.I32.bits == 32
        assert ScalarType.I64.bits == 64

    def test_signedness(self):
        assert ScalarType.I16.signed
        assert not ScalarType.U16.signed

    @pytest.mark.parametrize("t", list(ScalarType))
    def test_every_type_has_bits(self, t):
        assert t.bits in (8, 16, 32, 64)
