"""Unit tests for the IR verifier."""

import pytest

from repro.ir import (
    Block,
    Cond,
    FuncSig,
    Function,
    Instr,
    Opcode,
    Program,
    ScalarType,
    VReg,
    VerificationError,
    build_function,
    verify_function,
    verify_program,
)


def _trivial_function(name="f"):
    func = Function(name, FuncSig((), None))
    block = func.new_block("entry")
    block.append(Instr(Opcode.RET))
    return func


def test_accepts_trivial_function():
    verify_function(_trivial_function())


def test_rejects_empty_function():
    func = Function("f", FuncSig((), None))
    with pytest.raises(VerificationError, match="no blocks"):
        verify_function(func)


def test_rejects_missing_terminator():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    block.append(Instr(Opcode.NOP))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(func)


def test_rejects_terminator_in_middle():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    block.append(Instr(Opcode.RET))
    block.append(Instr(Opcode.NOP))
    block.append(Instr(Opcode.RET))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(func)


def test_rejects_use_of_undefined_register():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    ghost = VReg("ghost", ScalarType.I32)
    dest = func.new_reg(ScalarType.I32)
    block.append(Instr(Opcode.MOV, dest, (ghost,)))
    block.append(Instr(Opcode.RET))
    with pytest.raises(VerificationError, match="undefined register"):
        verify_function(func)


def test_rejects_unknown_branch_target():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    block.append(Instr(Opcode.JMP, targets=("nowhere",)))
    with pytest.raises(VerificationError, match="unknown target"):
        verify_function(func)


def test_rejects_operand_count_mismatch():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    dest = func.new_reg(ScalarType.I32)
    block.append(Instr(Opcode.ADD32, dest, (dest,)))  # needs two operands
    block.append(Instr(Opcode.RET))
    with pytest.raises(VerificationError, match="expected 2 operands"):
        verify_function(func)


def test_rejects_const_without_immediate():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    block.append(Instr(Opcode.CONST, func.new_reg(ScalarType.I32)))
    block.append(Instr(Opcode.RET))
    with pytest.raises(VerificationError, match="CONST"):
        verify_function(func)


def test_rejects_aload_with_non_ref_array():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    i32 = func.new_reg(ScalarType.I32)
    block.append(Instr(Opcode.CONST, i32, imm=0, elem=ScalarType.I32))
    dest = func.new_reg(ScalarType.I32)
    block.append(Instr(Opcode.ALOAD, dest, (i32, i32), elem=ScalarType.I32))
    block.append(Instr(Opcode.RET))
    with pytest.raises(VerificationError, match="must be REF"):
        verify_function(func)


def test_void_call_allowed():
    program = Program()
    callee = _trivial_function("callee")
    program.add_function(callee)
    b = build_function(program, "main", [], None)
    b.emit(Instr(Opcode.CALL, None, (), callee="callee"))
    b.ret()
    verify_program(program)


def test_rejects_unknown_callee():
    program = Program()
    b = build_function(program, "main", [], None)
    b.emit(Instr(Opcode.CALL, None, (), callee="missing"))
    b.ret()
    with pytest.raises(VerificationError, match="unknown callee"):
        verify_program(program)


def test_rejects_call_arity_mismatch():
    program = Program()
    callee = Function("callee", FuncSig((ScalarType.I32,), None))
    callee.add_param("x", ScalarType.I32)
    block = callee.new_block("entry")
    block.append(Instr(Opcode.RET))
    program.add_function(callee)
    b = build_function(program, "main", [], None)
    b.emit(Instr(Opcode.CALL, None, (), callee="callee"))
    b.ret()
    with pytest.raises(VerificationError, match="arity"):
        verify_program(program)


def test_rejects_unknown_global():
    program = Program()
    b = build_function(program, "main", [], None)
    b.gload("nope", ScalarType.I32)
    b.ret()
    with pytest.raises(VerificationError, match="unknown global"):
        verify_program(program)


def test_rejects_br_with_one_target():
    func = Function("f", FuncSig((), None))
    block = func.new_block("entry")
    cond = func.new_reg(ScalarType.I32)
    block.append(Instr(Opcode.CONST, cond, imm=1, elem=ScalarType.I32))
    block.append(Instr(Opcode.BR, None, (cond,), targets=(block.label,)))
    with pytest.raises(VerificationError, match="two targets"):
        verify_function(func)
