"""Unit tests for instructions, blocks, and functions."""

import pytest

from repro.ir import (
    Block,
    Cond,
    FuncSig,
    Function,
    Instr,
    Opcode,
    Program,
    ScalarType,
    VReg,
)


def _reg(name="r", type_=ScalarType.I32):
    return VReg(name, type_)


class TestInstr:
    def test_uids_unique(self):
        a = Instr(Opcode.NOP)
        b = Instr(Opcode.NOP)
        assert a.uid != b.uid

    def test_copy_gets_fresh_uid(self):
        a = Instr(Opcode.ADD32, _reg("x"), (_reg("y"), _reg("z")))
        b = a.copy()
        assert b.uid != a.uid
        assert b.opcode is a.opcode
        assert b.dest == a.dest
        assert b.srcs == a.srcs

    def test_is_extend(self):
        assert Instr(Opcode.EXTEND32, _reg(), (_reg(),)).is_extend
        assert Instr(Opcode.EXTEND8, _reg(), (_reg(),)).is_extend
        assert not Instr(Opcode.ZEXT16, _reg(), (_reg(),)).is_extend
        assert not Instr(Opcode.JUST_EXTENDED, _reg(), (_reg(),)).is_extend

    def test_terminator_flags(self):
        assert Instr(Opcode.JMP, targets=("x",)).is_terminator
        assert Instr(Opcode.RET).is_terminator
        assert not Instr(Opcode.ADD32, _reg(), (_reg(), _reg())).is_terminator

    def test_str_rendering(self):
        instr = Instr(Opcode.CMP32, _reg("p"), (_reg("a"), _reg("b")),
                      cond=Cond.LT)
        assert "cmp32.lt" in str(instr)
        assert "%p" in str(instr)

    def test_side_effects(self):
        assert Instr(Opcode.ASTORE, None,
                     (_reg("a", ScalarType.REF), _reg("i"), _reg("v")),
                     elem=ScalarType.I32).has_side_effects
        assert not Instr(Opcode.ADD32, _reg(), (_reg(), _reg())).has_side_effects


class TestBlock:
    def test_terminator_access(self):
        block = Block("b")
        block.append(Instr(Opcode.NOP))
        with pytest.raises(ValueError):
            _ = block.terminator
        block.append(Instr(Opcode.RET))
        assert block.terminator.opcode is Opcode.RET
        assert len(block.body) == 1

    def test_insert_before_after(self):
        block = Block("b")
        anchor = block.append(Instr(Opcode.NOP))
        block.append(Instr(Opcode.RET))
        first = Instr(Opcode.NOP, comment="first")
        block.insert_before(anchor, first)
        assert block.instrs[0] is first
        after = Instr(Opcode.NOP, comment="after")
        block.insert_after(anchor, after)
        assert block.instrs[2] is after

    def test_remove_by_identity(self):
        block = Block("b")
        a = block.append(Instr(Opcode.NOP))
        b = block.append(Instr(Opcode.NOP))
        block.remove(a)
        assert block.instrs == [b]


class TestFunction:
    def test_fresh_registers_unique(self):
        func = Function("f", FuncSig((), None))
        names = {func.new_reg(ScalarType.I32).name for _ in range(100)}
        assert len(names) == 100

    def test_cfg_built_from_targets(self):
        func = Function("f", FuncSig((), None))
        entry = func.new_block("entry")
        target = func.new_block("next")
        entry.append(Instr(Opcode.JMP, targets=(target.label,)))
        target.append(Instr(Opcode.RET))
        func.build_cfg()
        assert entry.succs == [target]
        assert target.preds == [entry]

    def test_duplicate_block_label_rejected(self):
        func = Function("f", FuncSig((), None))
        func.add_block(Block("x"))
        with pytest.raises(ValueError):
            func.add_block(Block("x"))

    def test_drop_unreachable(self):
        func = Function("f", FuncSig((), None))
        entry = func.new_block("entry")
        entry.append(Instr(Opcode.RET))
        dead = func.new_block("dead")
        dead.append(Instr(Opcode.RET))
        removed = func.drop_unreachable_blocks()
        assert removed == 1
        assert [b.label for b in func.blocks] == [entry.label]


class TestProgram:
    def test_duplicate_function_rejected(self):
        program = Program()
        func = Function("f", FuncSig((), None))
        program.add_function(func)
        with pytest.raises(ValueError):
            program.add_function(Function("f", FuncSig((), None)))

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global("g", ScalarType.I32)
        with pytest.raises(ValueError):
            program.add_global("g", ScalarType.I32)

    def test_main_lookup(self):
        program = Program()
        with pytest.raises(ValueError):
            _ = program.main
        program.add_function(Function("main", FuncSig((), None)))
        assert program.main.name == "main"
