"""Unit tests for the sign-extension semantic classification."""

import pytest

from repro.ir import Instr, Opcode, ScalarType, VReg
from repro.ir.opcodes import Cond
from repro.ir.semantics import (
    UseKind,
    canonical_bits,
    classify_use,
    propagates_canonical,
    upper32_zero,
    use_read_bits,
)
from repro.machine.model import IA64, PPC64


def _r(name="r", t=ScalarType.I32):
    return VReg(name, t)


def _i32(value):
    return Instr(Opcode.CONST, _r("c"), imm=value, elem=ScalarType.I32)


class TestClassifyUse:
    def test_i2d_requires(self):
        instr = Instr(Opcode.I2D, _r("d", ScalarType.F64), (_r("x"),))
        assert classify_use(instr, 0, IA64) is UseKind.REQUIRES

    def test_div_requires(self):
        instr = Instr(Opcode.DIV32, _r("q"), (_r("a"), _r("b")))
        assert classify_use(instr, 0, IA64) is UseKind.REQUIRES
        assert classify_use(instr, 1, IA64) is UseKind.REQUIRES

    def test_add_propagates(self):
        instr = Instr(Opcode.ADD32, _r("s"), (_r("a"), _r("b")))
        assert classify_use(instr, 0, IA64) is UseKind.PROPAGATES

    def test_cmp32_ignores_high(self):
        instr = Instr(Opcode.CMP32, _r("p"), (_r("a"), _r("b")), cond=Cond.LT)
        assert classify_use(instr, 0, IA64) is UseKind.IGNORES_HIGH

    def test_store_value_ignores_high(self):
        instr = Instr(Opcode.ASTORE, None,
                      (_r("arr", ScalarType.REF), _r("i"), _r("v")),
                      elem=ScalarType.I32)
        assert classify_use(instr, 2, IA64) is UseKind.IGNORES_HIGH

    def test_array_index_role(self):
        instr = Instr(Opcode.ALOAD, _r("d"),
                      (_r("arr", ScalarType.REF), _r("i")),
                      elem=ScalarType.I32)
        assert classify_use(instr, 1, IA64) is UseKind.ARRAY_INDEX

    def test_array_ref_irrelevant(self):
        instr = Instr(Opcode.ALOAD, _r("d"),
                      (_r("arr", ScalarType.REF), _r("i")),
                      elem=ScalarType.I32)
        assert classify_use(instr, 0, IA64) is UseKind.IRRELEVANT

    def test_shift_amount_ignored(self):
        instr = Instr(Opcode.SHL32, _r("s"), (_r("a"), _r("n")))
        assert classify_use(instr, 1, IA64) is UseKind.IGNORES_HIGH
        assert classify_use(instr, 0, IA64) is UseKind.PROPAGATES

    def test_call_args_follow_abi(self):
        instr = Instr(Opcode.CALL, None, (_r("a"),), callee="f")
        assert classify_use(instr, 0, IA64) is UseKind.REQUIRES

    def test_extend_src_only_reads_low(self):
        instr = Instr(Opcode.EXTEND32, _r("a"), (_r("a"),))
        assert classify_use(instr, 0, IA64) is UseKind.IGNORES_HIGH

    def test_wide_operand_irrelevant(self):
        instr = Instr(Opcode.ADD64, _r("s", ScalarType.I64),
                      (_r("a", ScalarType.I64), _r("b", ScalarType.I64)))
        assert classify_use(instr, 0, IA64) is UseKind.IRRELEVANT


class TestUseReadBits:
    def test_narrow_store_reads_elem_width(self):
        instr = Instr(Opcode.ASTORE, None,
                      (_r("arr", ScalarType.REF), _r("i"), _r("v")),
                      elem=ScalarType.I8)
        assert use_read_bits(instr, 2) == 8

    def test_extend8_reads_8(self):
        instr = Instr(Opcode.EXTEND8, _r("a"), (_r("a"),))
        assert use_read_bits(instr, 0) == 8

    def test_cmp_reads_32(self):
        instr = Instr(Opcode.CMP32, _r("p"), (_r("a"), _r("b")), cond=Cond.EQ)
        assert use_read_bits(instr, 0) == 32


class TestCanonicalBits:
    def test_extends(self):
        assert canonical_bits(
            Instr(Opcode.EXTEND8, _r("a"), (_r("a"),)), IA64) == 8
        assert canonical_bits(
            Instr(Opcode.EXTEND32, _r("a"), (_r("a"),)), IA64) == 32

    def test_compare_results_are_tiny(self):
        instr = Instr(Opcode.CMP32, _r("p"), (_r("a"), _r("b")), cond=Cond.LT)
        assert canonical_bits(instr, IA64) == 8

    def test_const_fit_width(self):
        assert canonical_bits(_i32(5), IA64) == 8
        assert canonical_bits(_i32(-128), IA64) == 8
        assert canonical_bits(_i32(300), IA64) == 16
        assert canonical_bits(_i32(100000), IA64) == 32
        assert canonical_bits(_i32(-(2**31)), IA64) == 32

    def test_add_not_canonical(self):
        instr = Instr(Opcode.ADD32, _r("s"), (_r("a"), _r("b")))
        assert canonical_bits(instr, IA64) is None

    def test_i32_load_depends_on_machine(self):
        load = Instr(Opcode.ALOAD, _r("d"),
                     (_r("arr", ScalarType.REF), _r("i")),
                     elem=ScalarType.I32)
        assert canonical_bits(load, IA64) is None  # zero-extended
        assert canonical_bits(load, PPC64) == 32  # lwa sign-extends

    def test_byte_load_zero_extended_is_canonical16(self):
        load = Instr(Opcode.ALOAD, _r("d"),
                     (_r("arr", ScalarType.REF), _r("i")),
                     elem=ScalarType.I8)
        # Zero-extended byte: value in [0, 255] subset of canonical-16.
        assert canonical_bits(load, IA64) == 16

    def test_i16_load_on_ppc_sign_extends(self):
        load = Instr(Opcode.ALOAD, _r("d"),
                     (_r("arr", ScalarType.REF), _r("i")),
                     elem=ScalarType.I16)
        assert canonical_bits(load, PPC64) == 16
        assert canonical_bits(load, IA64) == 32

    def test_and_with_positive_constant(self):
        mask = _i32(0x0FFF_FFFF)
        and_instr = Instr(Opcode.AND32, _r("j"), (_r("j"), _r("c")))

        def const_of(instr, index):
            return 0x0FFF_FFFF if index == 1 else None

        assert canonical_bits(and_instr, IA64, const_of) == 32
        assert canonical_bits(and_instr, IA64) is None
        del mask

    def test_and_with_small_constant_narrower(self):
        and_instr = Instr(Opcode.AND32, _r("j"), (_r("j"), _r("c")))

        def const_of(instr, index):
            return 0x7F if index == 1 else None

        assert canonical_bits(and_instr, IA64, const_of) == 8

    def test_ushr_const_amount(self):
        instr = Instr(Opcode.USHR32, _r("a"), (_r("a"), _r("n")))

        def const_of(_instr, index):
            return 3 if index == 1 else None

        assert canonical_bits(instr, IA64, const_of) == 32
        assert canonical_bits(instr, IA64) is None

    def test_arraylen_canonical(self):
        instr = Instr(Opcode.ARRAYLEN, _r("n"), (_r("arr", ScalarType.REF),))
        assert canonical_bits(instr, IA64) == 32


class TestUpperZero:
    def test_zero_extending_load(self):
        load = Instr(Opcode.ALOAD, _r("d"),
                     (_r("arr", ScalarType.REF), _r("i")),
                     elem=ScalarType.I32)
        assert upper32_zero(load, IA64)
        assert not upper32_zero(load, PPC64)  # lwa fills upper bits

    def test_nonnegative_const(self):
        assert upper32_zero(_i32(42), IA64)
        assert not upper32_zero(_i32(-1), IA64)

    def test_dummy_marker(self):
        instr = Instr(Opcode.JUST_EXTENDED, _r("i"), (_r("i"),))
        assert upper32_zero(instr, IA64)

    def test_cmp_and_ushr(self):
        cmp = Instr(Opcode.CMP32, _r("p"), (_r("a"), _r("b")), cond=Cond.EQ)
        assert upper32_zero(cmp, IA64)
        ushr = Instr(Opcode.USHR32, _r("a"), (_r("a"), _r("n")))
        assert upper32_zero(ushr, IA64)


class TestPropagation:
    @pytest.mark.parametrize("opcode,expected", [
        (Opcode.MOV, True),
        (Opcode.AND32, True),
        (Opcode.OR32, True),
        (Opcode.XOR32, True),
        (Opcode.NOT32, True),
        (Opcode.ADD32, False),
        (Opcode.SUB32, False),
        (Opcode.MUL32, False),
        (Opcode.SHL32, False),
    ])
    def test_propagates_canonical(self, opcode, expected):
        assert propagates_canonical(opcode) is expected
