"""Tests for the builder, printer, and program cloning."""

from repro.ir import (
    Cond,
    Opcode,
    Program,
    ScalarType,
    build_function,
    format_function,
    format_program,
    verify_program,
)
from repro.ir.clone import clone_program
from tests.conftest import make_fig7_program, run_ideal, run_machine


class TestBuilder:
    def test_builds_verifiable_function(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        one = b.const(1)
        result = b.binop(Opcode.ADD32, b.func.params[0], one)
        b.ret(result)
        verify_program(program)

    def test_branch_wiring(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        then_block = b.block("then")
        else_block = b.block("else")
        cond = b.cmp(Opcode.CMP32, Cond.LT, zero, one)
        b.br(cond, then_block, else_block)
        b.switch(then_block)
        b.ret(one)
        b.switch(else_block)
        b.ret(zero)
        verify_program(program)
        result = run_ideal(program)
        assert result.ret_value == 1

    def test_typed_destinations(self):
        program = Program()
        b = build_function(program, "main", [], None)
        d = b.const(1.5, ScalarType.F64)
        total = b.binop(Opcode.FADD, d, d)
        assert total.type is ScalarType.F64
        n = b.const(4)
        arr = b.newarray(ScalarType.F64, n)
        assert arr.type is ScalarType.REF
        b.ret()
        verify_program(program)


class TestPrinter:
    def test_format_contains_blocks_and_instrs(self):
        program = make_fig7_program(iterations=3)
        text = format_function(program.main)
        assert "func @main" in text
        assert "aload" in text
        assert "body" in text

    def test_format_program_lists_globals(self):
        program = make_fig7_program(iterations=3)
        text = format_program(program)
        assert "global $mem" in text

    def test_freq_annotation(self):
        program = make_fig7_program(iterations=3)
        text = format_function(program.main, freq=True)
        assert "freq=" in text


class TestClone:
    def test_clone_preserves_behaviour(self):
        program = make_fig7_program(iterations=10)
        clone = clone_program(program)
        original = run_ideal(program)
        cloned = run_ideal(clone)
        assert original.observable() == cloned.observable()

    def test_clone_has_fresh_uids(self):
        program = make_fig7_program(iterations=3)
        clone = clone_program(program)
        original_uids = {
            i.uid for _, i in program.main.instructions()
        }
        cloned_uids = {i.uid for _, i in clone.main.instructions()}
        assert original_uids.isdisjoint(cloned_uids)

    def test_clone_is_isolated(self):
        program = make_fig7_program(iterations=3)
        clone = clone_program(program)
        clone.main.blocks[0].instrs.pop(0)
        assert len(program.main.blocks[0].instrs) != len(
            clone.main.blocks[0].instrs
        )

    def test_machine_mode_runs_clone(self):
        # Conversion mutates in place; cloning keeps the source intact.
        from repro.core import VARIANTS, compile_ir

        program = make_fig7_program(iterations=10)
        before = len(list(program.main.instructions()))
        compile_ir(program, VARIANTS["baseline"])
        after = len(list(program.main.instructions()))
        assert before == after  # the source was cloned, not mutated
        result = run_machine(compile_ir(
            program, VARIANTS["baseline"]).program)
        assert result.observable() == run_ideal(program).observable()
