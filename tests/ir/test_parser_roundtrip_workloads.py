"""Round-trip every workload through the textual IR format.

Strong parser/printer coverage: real programs with globals, calls,
doubles, 2-D arrays, and every opcode the frontend emits must survive
print -> parse -> print unchanged and behave identically.
"""

import pytest

from repro.ir import format_program, verify_program
from repro.ir.parser import parse_program
from repro.workloads import JBYTEMARK, SPECJVM98, get_workload
from tests.conftest import run_ideal

_FAST = ["fourier", "lu_decom", "db", "javac", "mtrt"]


@pytest.mark.parametrize("name", _FAST)
def test_workload_roundtrip(name):
    original = get_workload(name).program()
    text = format_program(original)
    reparsed = parse_program(text)
    verify_program(reparsed)
    assert format_program(reparsed) == text
    gold = run_ideal(original, fuel=20_000_000)
    again = run_ideal(reparsed, fuel=20_000_000)
    assert gold.observable() == again.observable()


def test_converted_program_roundtrip():
    """Post-pipeline IR (extensions, dummies removed, inlined bodies)
    also round-trips."""
    from repro.core import VARIANTS, compile_ir
    from tests.conftest import run_machine

    original = get_workload("fourier").program()
    compiled = compile_ir(original, VARIANTS["new algorithm (all)"])
    text = format_program(compiled.program)
    reparsed = parse_program(text)
    verify_program(reparsed)
    gold = run_machine(compiled.program, fuel=20_000_000)
    again = run_machine(reparsed, fuel=20_000_000)
    assert gold.observable() == again.observable()
    assert gold.extends32 == again.extends32
