"""Tests for the textual IR parser (round-trips with the printer)."""

import pytest

from repro.ir import format_program, verify_program
from repro.ir.parser import IRParseError, parse_program
from tests.conftest import make_fig7_program, run_ideal


class TestRoundTrip:
    def test_fig7_roundtrip(self):
        original = make_fig7_program(10)
        text = format_program(original)
        reparsed = parse_program(text)
        verify_program(reparsed)
        assert run_ideal(reparsed).observable() == \
            run_ideal(original).observable()

    def test_double_roundtrip_stable(self):
        original = make_fig7_program(5)
        once = format_program(parse_program(format_program(original)))
        twice = format_program(parse_program(once))
        assert once == twice


class TestHandWritten:
    def test_minimal_function(self):
        program = parse_program("""
            func @main() -> i32 params() {
            entry:
              %c = const.i32 41
              %one = const.i32 1
              %r = add32 %c, %one
              ret %r
            }
        """)
        verify_program(program)
        assert run_ideal(program).ret_value == 42

    def test_branches_and_loops(self):
        program = parse_program("""
            func @main() -> i32 params() {
            entry:
              %i = const.i32 0
              %one = const.i32 1
              %limit = const.i32 5
              jmp ->loop
            loop:
              %i = add32 %i, %one
              %p = cmp32.lt %i, %limit
              br %p, ->loop, ->done
            done:
              ret %i
            }
        """)
        assert run_ideal(program).ret_value == 5

    def test_globals_and_calls(self):
        program = parse_program("""
            program demo
            global $g: i32 = 7

            func @bump(i32) -> i32 params(%x) {
            entry:
              %one = const.i32 1
              %r = add32 %x, %one
              ret %r
            }

            func @main() -> i32 params() {
            entry:
              %v = gload.i32 $g
              %w = call @bump, %v
              ret %w
            }
        """)
        verify_program(program)
        assert program.name == "demo"
        assert run_ideal(program).ret_value == 8

    def test_arrays_and_floats(self):
        program = parse_program("""
            func @main() -> f64 params() {
            entry:
              %n = const.i32 3
              %a = newarray.f64 %n
              %zero = const.i32 0
              %x = const.f64 2.5
              astore.f64 %a, %zero, %x
              %y = aload.f64 %a, %zero
              %d = fadd %y, %x
              ret %d
            }
        """)
        assert run_ideal(program).ret_value == 5.0

    def test_comments_ignored(self):
        program = parse_program("""
            func @main() -> i32 params() {   ; header comment
            entry:  ; the entry block
              %c = const.i32 9   ; forty-two, almost
              ret %c
            }
        """)
        assert run_ideal(program).ret_value == 9


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(IRParseError, match="unknown opcode"):
            parse_program("""
                func @main() -> void params() {
                entry:
                  frobnicate %x
                }
            """)

    def test_unknown_register(self):
        with pytest.raises(IRParseError, match="unknown register"):
            parse_program("""
                func @main() -> void params() {
                entry:
                  sink %ghost
                }
            """)

    def test_instruction_before_label(self):
        with pytest.raises(IRParseError, match="before any label"):
            parse_program("""
                func @main() -> void params() {
                  ret
                }
            """)

    def test_missing_brace(self):
        with pytest.raises(IRParseError, match="missing closing brace"):
            parse_program("""
                func @main() -> void params() {
                entry:
                  ret
            """)

    def test_param_arity_mismatch(self):
        with pytest.raises(IRParseError, match="arity"):
            parse_program("""
                func @main(i32) -> void params() {
                entry:
                  ret
                }
            """)
