"""Tests for the benchmark workloads.

Every workload must compile, verify, run deterministically, and behave
identically under the strongest optimization variant.  (The full
12-variant sweep over all 17 workloads is the benchmark harness's job;
here we keep one fast full check per workload.)
"""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.ir import verify_program
from repro.workloads import (
    JBYTEMARK,
    SPECJVM98,
    all_workloads,
    get_workload,
    jbytemark_workloads,
    specjvm98_workloads,
)
from tests.conftest import run_ideal, run_machine

ALL_NAMES = JBYTEMARK + SPECJVM98


class TestRegistry:
    def test_counts_match_paper(self):
        assert len(JBYTEMARK) == 10
        assert len(SPECJVM98) == 7
        assert len(all_workloads()) == 17

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("quake3")

    def test_suites_disjoint(self):
        assert set(JBYTEMARK).isdisjoint(SPECJVM98)

    def test_display_names(self):
        assert get_workload("numeric_sort").display_name == "Numeric Sort"
        assert get_workload("mtrt").display_name == "mtrt"

    def test_suite_helpers(self):
        assert [w.suite for w in jbytemark_workloads()] == ["jbytemark"] * 10
        assert [w.suite for w in specjvm98_workloads()] == ["specjvm98"] * 7


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEachWorkload:
    def test_compiles_and_verifies(self, name):
        program = get_workload(name).program()
        verify_program(program)
        assert "main" in program.functions

    def test_deterministic(self, name):
        workload = get_workload(name)
        first = run_ideal(workload.program(), fuel=10_000_000)
        second = run_ideal(workload.program(), fuel=10_000_000)
        assert first.observable() == second.observable()
        assert first.checksum != 0  # the workload actually sinks data

    def test_optimized_matches_gold(self, name):
        workload = get_workload(name)
        program = workload.program()
        gold = run_ideal(program, fuel=10_000_000)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = run_machine(compiled.program, fuel=10_000_000)
        assert run.observable() == gold.observable()

    def test_full_algorithm_eliminates_majority(self, name):
        """The paper's headline: the majority of dynamic sign extensions
        disappear on every benchmark."""
        workload = get_workload(name)
        program = workload.program()
        base = compile_ir(program, VARIANTS["baseline"])
        best = compile_ir(program, VARIANTS["new algorithm (all)"])
        base_run = run_machine(base.program, fuel=10_000_000)
        best_run = run_machine(best.program, fuel=10_000_000)
        if base_run.extends32 == 0:
            pytest.skip("workload executes no 32-bit extensions")
        residual = best_run.extends32 / base_run.extends32
        assert residual < 0.5, f"only {100 * (1 - residual):.1f}% eliminated"
