"""The three renderers: summary, annotated IR, flamegraph, heatmap."""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import execute
from repro.interp.profiler import collect_branch_profiles
from repro.machine import IA64
from repro.profile import (
    build_profile,
    format_annotated_ir,
    format_flamegraph,
    format_profile_summary,
    heatmap_section,
    render_heatmap_html,
)
from repro.telemetry import Telemetry
from repro.workloads import get_workload

FUEL = 2_000_000


@pytest.fixture(scope="module")
def huffman_profile():
    program = get_workload("huffman").program()
    result = execute(program, mode="ideal", fuel=FUEL,
                     collect_profile=True)
    return program, build_profile(program, result, traits=IA64,
                                  variant="baseline", workload="huffman")


class TestSummary:
    def test_mentions_hot_functions(self, huffman_profile):
        _, profile = huffman_profile
        text = format_profile_summary(profile)
        assert "huffman" in text
        assert "main" in text
        assert "cycles" in text


class TestAnnotatedIR:
    def test_hotness_in_margin(self, huffman_profile):
        program, profile = huffman_profile
        text = format_annotated_ir(program, profile)
        assert "func @main" in text
        assert "; entries=" in text
        assert "hot#1" in text

    def test_verdicts_inline(self):
        program = get_workload("bitfield").program()
        telemetry = Telemetry(label="bitfield")
        compiled = compile_ir(
            program,
            VARIANTS["new algorithm (all)"].with_traits(IA64),
            collect_branch_profiles(program, fuel=FUEL),
            telemetry=telemetry,
        )
        result = execute(compiled.program, traits=IA64, fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(compiled.program, result, traits=IA64,
                                decisions=telemetry.decisions)
        text = format_annotated_ir(compiled.program, profile)
        assert "; executed" in text
        assert "[kept" in text or "[eliminated" in text


class TestFlamegraph:
    def test_stacks_sum_to_total_cycles(self, huffman_profile):
        _, profile = huffman_profile
        stacks = format_flamegraph(profile)
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in stacks.splitlines())
        assert total == pytest.approx(profile.total_cycles, abs=len(
            stacks.splitlines()))
        assert any(line.startswith("main ") for line in stacks.splitlines())

    def test_recursive_program_sums(self):
        program = compile_source("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
        """)
        result = execute(program, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(program, result)
        stacks = format_flamegraph(profile)
        lines = stacks.splitlines()
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == pytest.approx(profile.total_cycles,
                                      abs=len(lines) + 1)
        # recursion folds: fib appears once per stack, never fib;fib
        assert not any("fib;fib" in line for line in lines)

    def test_unknown_root_is_empty(self, huffman_profile):
        _, profile = huffman_profile
        assert format_flamegraph(profile, root="nope") == ""


class TestHeatmap:
    def test_section_has_cells_and_table(self, huffman_profile):
        _, profile = huffman_profile
        section = heatmap_section(profile)
        assert 'class="cell' in section
        assert "<figure>" in section
        assert "data table" in section
        assert "entries (log scale)" in section
        # every cell carries an exact tooltip, not color alone
        assert "<div class=\"cell" in section and "title=" in section

    def test_standalone_document(self, huffman_profile):
        _, profile = huffman_profile
        html = render_heatmap_html([profile])
        assert html.startswith("<!DOCTYPE html>")
        assert "--heat-5" in html
        assert "prefers-color-scheme: dark" in html
        assert "<script" not in html and "<link" not in html

    def test_empty_profile_list(self):
        html = render_heatmap_html([])
        assert "No profiled executions" in html
