"""The profile builder: exactness against the engines' own counters.

The acceptance bar for the whole subsystem: a profile's per-block entry
counts must *exactly* equal the closure engine's fold-on-success
counters (and the reference loop's mirrored counters), because both are
derived from the same ``site_counts`` identity — no sampling, no
estimation.
"""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import create_interpreter, execute
from repro.interp.profiler import collect_branch_profiles
from repro.machine import IA64
from repro.profile import build_profile
from repro.workloads import get_workload

FUEL = 2_000_000


def _profiled_run(program, engine):
    interp = create_interpreter(program, engine=engine, fuel=FUEL,
                                collect_profile=True)
    result = interp.run()
    return interp, result


def _nonzero_entries(profile):
    entries = {}
    for name, blocks in profile.block_entries().items():
        live = {label: count for label, count in blocks.items() if count}
        if live:
            entries[name] = live
    return entries


@pytest.mark.parametrize("workload_name", ["huffman", "bitfield"])
@pytest.mark.parametrize("engine", ["closure", "reference"])
class TestEntryCountExactness:
    def test_source_program(self, workload_name, engine):
        program = get_workload(workload_name).program()
        interp, result = _profiled_run(program, engine)
        profile = build_profile(program, result, engine=engine)
        assert _nonzero_entries(profile) == {
            name: dict(blocks)
            for name, blocks in interp.block_entries.items() if blocks
        }

    def test_compiled_program(self, workload_name, engine):
        program = get_workload(workload_name).program()
        compiled = compile_ir(
            program, VARIANTS["new algorithm (all)"].with_traits(IA64),
            collect_branch_profiles(program, fuel=FUEL),
        )
        interp, result = _profiled_run(compiled.program, engine)
        profile = build_profile(compiled.program, result, traits=IA64,
                                engine=engine)
        assert _nonzero_entries(profile) == {
            name: dict(blocks)
            for name, blocks in interp.block_entries.items() if blocks
        }


class TestBranchProfileRoundTrip:
    """``branch_profiles()`` must be drop-in for the profiler output."""

    @pytest.mark.parametrize("engine", ["closure", "reference", "both"])
    def test_equals_collect_branch_profiles(self, engine):
        # inline=False so the profiler observes the same program shape
        # the raw execution below does (its default pre-inlines).
        program = get_workload("huffman").program()
        direct = collect_branch_profiles(program, fuel=FUEL,
                                         engine=engine, inline=False)

        result = execute(program, engine=engine, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(program, result, engine=engine)
        round_tripped = profile.branch_profiles()
        assert round_tripped == {
            name: bp for name, bp in direct.items() if bp.edge_counts
        }

    def test_feeds_order_determination(self):
        """The round-tripped profiles drive compilation unchanged."""
        from repro.ir.clone import clone_program
        from repro.opt.inline import inline_small_functions

        source = get_workload("huffman").program()
        # Profile the inlined shape, exactly as the profiler entry
        # point does, so block labels line up for order determination.
        inlined = clone_program(source)
        inline_small_functions(inlined)
        result = execute(inlined, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(inlined, result)
        config = VARIANTS["new algorithm (all)"].with_traits(IA64)
        via_profile = compile_ir(get_workload("huffman").program(), config,
                                 profile.branch_profiles())
        via_direct = compile_ir(
            get_workload("huffman").program(), config,
            collect_branch_profiles(source, fuel=FUEL),
        )
        assert (via_profile.static_extend_count
                == via_direct.static_extend_count)


class TestCycleAttribution:
    def test_totals_are_consistent(self):
        program = get_workload("huffman").program()
        result = execute(program, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(program, result, traits=IA64)
        assert profile.total_cycles == pytest.approx(
            sum(f.self_cycles for f in profile.functions))
        for func in profile.functions:
            assert func.self_cycles == pytest.approx(
                sum(b.self_cycles for b in func.blocks))
            # cumulative covers at least the function's own work
            assert func.cumulative_cycles >= func.self_cycles - 1e-9
        main = profile.function("main")
        assert main.cumulative_cycles == pytest.approx(
            profile.total_cycles)

    def test_extend_cycles_from_sites(self):
        program = get_workload("bitfield").program()
        result = execute(program, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(program, result, traits=IA64)
        site_total = sum(
            site.count
            for func in profile.functions
            for block in func.blocks
            for site in block.extend_sites
        )
        assert site_total == sum(result.extend_counts.values())
        assert profile.extend_cycles == pytest.approx(
            site_total * IA64.extend_cost)

    def test_recursion_does_not_double_count(self):
        program = compile_source("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
        """)
        result = execute(program, mode="ideal", fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(program, result)
        fib = profile.function("fib")
        main = profile.function("main")
        # fib's SCC is collapsed: cumulative is the component total, not
        # a per-call-depth blow-up past the whole program's cycles.
        assert fib.cumulative_cycles <= profile.total_cycles + 1e-6
        assert main.cumulative_cycles == pytest.approx(
            profile.total_cycles)

    def test_decision_verdicts_attach_to_sites(self):
        from repro.telemetry import Telemetry

        program = get_workload("bitfield").program()
        telemetry = Telemetry(label="bitfield")
        compiled = compile_ir(
            program,
            VARIANTS["new algorithm (all)"].with_traits(IA64),
            collect_branch_profiles(program, fuel=FUEL),
            telemetry=telemetry,
        )
        result = execute(compiled.program, traits=IA64, fuel=FUEL,
                         collect_profile=True)
        profile = build_profile(compiled.program, result, traits=IA64,
                                decisions=telemetry.decisions)
        verdicts = [
            site.verdict
            for func in profile.functions
            for block in func.blocks
            for site in block.extend_sites
            if site.verdict is not None
        ]
        assert verdicts, "no decision verdict reached any extend site"
        assert set(verdicts) <= {"eliminated", "kept"}
