"""The artifact schema: determinism, fingerprinting, validation."""

import json

import pytest

from repro.interp import execute
from repro.machine import IA64
from repro.profile import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    artifact_path,
    artifact_stem,
    build_profile,
    load_profile,
    load_profiles,
    validate_artifact_file,
    validate_profile,
    write_profile,
)
from repro.profile.model import ExecutionProfile
from repro.workloads import get_workload

FUEL = 2_000_000


@pytest.fixture(scope="module")
def profile():
    program = get_workload("huffman").program()
    result = execute(program, mode="ideal", fuel=FUEL,
                     collect_profile=True)
    return build_profile(program, result, traits=IA64,
                         variant="baseline", workload="huffman")


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self, profile):
        document = profile.to_dict()
        again = ExecutionProfile.from_dict(document).to_dict()
        assert again == document

    def test_document_is_deterministic(self, profile):
        first = json.dumps(profile.to_dict(), sort_keys=True)
        second = json.dumps(profile.to_dict(), sort_keys=True)
        assert first == second

    def test_file_round_trip(self, profile, tmp_path):
        path = artifact_path(tmp_path, "huffman", "baseline", "ia64")
        write_profile(profile, path)
        assert path.name == "huffman__baseline__ia64.profile.json"
        loaded = load_profile(path)
        assert loaded.to_dict() == profile.to_dict()
        assert loaded.fingerprint() == profile.fingerprint()
        assert validate_artifact_file(path) == []

    def test_write_is_byte_stable(self, profile, tmp_path):
        a = artifact_path(tmp_path, "a")
        b = artifact_path(tmp_path, "b")
        write_profile(profile, a)
        write_profile(profile, b)
        assert a.read_bytes() == b.read_bytes()


class TestValidation:
    def test_clean_document_validates(self, profile):
        assert validate_profile(profile.to_dict()) == []

    def test_wrong_kind_rejected(self, profile):
        document = profile.to_dict()
        document["kind"] = "not-a-profile"
        assert any("kind" in p for p in validate_profile(document))

    def test_newer_schema_rejected(self, profile):
        document = profile.to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        assert validate_profile(document)

    def test_tampered_counts_break_fingerprint(self, profile):
        document = profile.to_dict()
        document["steps"] += 1
        problems = validate_profile(document)
        assert any("fingerprint" in p for p in problems)

    def test_from_dict_raises_on_invalid(self, profile):
        document = profile.to_dict()
        document["kind"] = "garbage"
        with pytest.raises(ValueError):
            ExecutionProfile.from_dict(document)

    def test_kind_constant(self, profile):
        assert profile.to_dict()["kind"] == ARTIFACT_KIND


class TestDirectoryLoading:
    def test_load_profiles_skips_invalid(self, profile, tmp_path):
        write_profile(profile, artifact_path(tmp_path, "good"))
        (tmp_path / "bad.profile.json").write_text("{not json")
        (tmp_path / "wrong.profile.json").write_text(
            json.dumps({"kind": "other"}))
        (tmp_path / "unrelated.json").write_text("{}")
        loaded = load_profiles(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].workload == "huffman"

    def test_load_profiles_sorted_and_empty_dir(self, profile, tmp_path):
        assert load_profiles(tmp_path) == []
        for stem in ("zz", "aa", "mm"):
            write_profile(profile, artifact_path(tmp_path, stem))
        names = [p.fingerprint() for p in load_profiles(tmp_path)]
        assert len(names) == 3


class TestStemSanitising:
    @pytest.mark.parametrize("parts,expected", [
        (("huffman", "new algorithm (all)", "ia64"),
         "huffman__new-algorithm-all__ia64"),
        (("a/b", "c:d"), "a-b__c-d"),
        ((), "profile"),
        (("", ""), "profile"),
    ])
    def test_stem(self, parts, expected):
        assert artifact_stem(*parts) == expected
