"""The HTML dashboard: self-contained, one file, inline SVG only."""

import re

from repro.perf import format_history_summary, render_html


def _history(make_record, runs=3):
    """A small multi-run history over two workloads and two engines."""
    records = []
    for run in range(runs):
        run_id = f"run-{run}"
        for workload in ("fourier", "huffman"):
            for variant in ("baseline", "new algorithm (all)"):
                for engine in ("closure", "reference"):
                    record = make_record(
                        workload=workload, variant=variant,
                        engine=engine, run_id=run_id,
                        git_rev=f"abc{run:04d}beef",
                    )
                    slow = 2.0 if engine == "reference" else 1.0
                    record.phases = {**record.phases,
                                     "execute": slow * (0.5 - 0.01 * run)}
                    record.counters = {"driver.cache.hits": 4 * run,
                                       "driver.cache.misses": 4}
                    records.append(record)
    return records


class TestHtmlDashboard:
    def test_report_is_self_contained(self, make_record):
        html = render_html(_history(make_record), title="perf")
        # No external fetches of any kind: the only URLs allowed are
        # XML namespace identifiers (never dereferenced).
        for url in re.findall(r"https?://[^\s\"'<>]+", html):
            assert "www.w3.org" in url, f"external asset: {url}"
        assert "<script src" not in html
        assert "<link" not in html
        assert "@import" not in html
        assert "url(" not in html

    def test_report_has_inline_svg_charts(self, make_record):
        html = render_html(_history(make_record), title="perf")
        assert html.count("<svg") >= 3
        assert "<polyline" in html or "<path" in html  # timeseries
        assert "<rect" in html                          # stacked bars

    def test_report_covers_the_issue_charts(self, make_record):
        html = render_html(_history(make_record), title="perf")
        # Phase breakdown, cache hit rate, extend counts, speedup.
        for needle in ("phase wall time", "cache hit rate",
                       "sign extensions", "speedup"):
            assert needle.lower() in html.lower(), f"missing {needle}"

    def test_report_has_dark_mode_and_data_tables(self, make_record):
        html = render_html(_history(make_record), title="perf")
        assert "prefers-color-scheme: dark" in html
        assert "<details" in html and "<table" in html

    def test_empty_history_renders(self, make_record):
        html = render_html([], title="empty")
        assert "<html" in html and "no perf records" in html.lower()

    def test_single_run_renders(self, make_record):
        html = render_html(_history(make_record, runs=1), title="one")
        assert "<svg" in html


class TestTerminalSummary:
    def test_summary_lists_latest_run_cells(self, make_record):
        text = format_history_summary(_history(make_record))
        assert "run-2"[:3] or True  # label comes from git_rev
        assert "fourier/ia64/baseline/closure" in text
        assert "huffman" in text

    def test_summary_empty_history(self):
        text = format_history_summary([])
        assert "empty" in text.lower()


class TestServingSection:
    """Serving-latency records get their own dashboard section."""

    def _with_serving(self, make_record, runs=3):
        records = _history(make_record, runs=runs)
        for run in range(runs):
            records.append(make_record(
                workload="loadtest-closed", variant="new algorithm (all)",
                engine="serve", source="loadtest", run_id=f"run-{run}",
                git_rev=f"abc{run:04d}beef",
                phases={},
                measures={"p50_ms": 10.0 - run, "p95_ms": 25.0 - run,
                          "p99_ms": 40.0 - run, "mean_ms": 12.0,
                          "max_ms": 44.0, "throughput_rps": 120.0 + run,
                          "offered": 50.0, "completed": 48.0,
                          "shed": 2.0, "coalesced": 5.0, "errors": 0.0},
            ))
        return records

    def test_serving_records_render_their_own_section(self, make_record):
        html = render_html(self._with_serving(make_record), title="perf")
        assert "serving latency (repro serve)" in html
        assert "loadtest-closed" in html
        assert "latency percentiles" in html
        assert "coalesced" in html

    def test_serving_records_stay_out_of_compiler_charts(self,
                                                         make_record):
        html = render_html(self._with_serving(make_record), title="perf")
        # No extends/phase figure may be captioned with the loadtest
        # pseudo-workload: it has no compiler measures.
        assert "loadtest-closed: dynamic" not in html
        assert "loadtest-closed: phase" not in html

    def test_without_serving_records_no_section(self, make_record):
        html = render_html(_history(make_record), title="perf")
        assert "serving latency" not in html

    def test_serving_only_history_renders(self, make_record):
        records = [r for r in self._with_serving(make_record)
                   if r.engine == "serve"]
        html = render_html(records, title="serve only")
        assert "serving latency" in html
        assert "<svg" in html
