"""PerfRecorder + the harness hook, end to end.

The acceptance pair for the perf observatory:

* two consecutive recordings of the same cell grid compare with zero
  false regressions at the default threshold;
* a cell artificially slowed by an injected sleep is flagged
  ``regressed``.
"""

import time

import pytest

import repro.harness.runner as runner_module
from repro.core import VARIANTS
from repro.harness import measure_workload
from repro.perf import (
    HistoryStore,
    PerfRecorder,
    compare_records,
    recorder_from_env,
)
from repro.workloads import Workload

_SOURCE = """
void main() {
    int[] a = new int[40];
    int t = 0;
    for (int i = 0; i < 40; i++) { a[i] = i * 3; }
    for (int i = 39; i > 0; i--) { t += a[i] & 0x0fffffff; }
    sink(t);
}
"""

_FAST = Workload(name="fast", suite="jbytemark",
                 description="perf test kernel", source=_SOURCE)

_GRID = {name: VARIANTS[name]
         for name in ("baseline", "new algorithm (all)")}


def _record_run(store, run_id, *, repeats=2):
    recorder = PerfRecorder(store, source="test", run_id=run_id)
    for index in range(repeats):
        measure_workload(_FAST, _GRID, recorder=recorder,
                         repeat_index=index)
    return recorder


class TestHarnessHook:
    def test_records_carry_the_full_schema(self, tmp_path):
        store = HistoryStore(tmp_path / "h")
        _record_run(store, "r1", repeats=1)
        records = store.records()
        assert {r.key().label() for r in records} == {
            "fast/ia64/baseline/closure",
            "fast/ia64/new algorithm (all)/closure",
        }
        for record in records:
            assert record.phases["execute"] > 0
            assert set(record.phases) >= {"sign_ext", "chains",
                                          "others", "execute"}
            assert record.measures["steps"] > 0
            assert record.measures["cycles"] > 0
            assert record.config_fingerprint
            assert record.host["host_id"]
            assert record.package_version
            assert record.run_id == "r1"

    def test_baseline_variant_counts_dominate(self, tmp_path):
        """The recorded measures reflect the paper's result: the full
        algorithm leaves fewer dynamic 32-bit extensions than the
        baseline."""
        store = HistoryStore(tmp_path / "h")
        _record_run(store, "r1", repeats=1)
        by_variant = {r.variant: r for r in store.records()}
        assert (by_variant["new algorithm (all)"]
                .measures["dyn_extend32"]
                < by_variant["baseline"].measures["dyn_extend32"])

    def test_two_consecutive_runs_compare_clean(self, tmp_path):
        """Acceptance: record twice back to back, compare with the
        default threshold — zero false regressions."""
        store = HistoryStore(tmp_path / "h")
        _record_run(store, "r1", repeats=3)
        _record_run(store, "r2", repeats=3)
        runs = store.latest_runs(2)
        report = compare_records(runs[0], runs[1])
        assert report.ok, (
            "false regression on identical back-to-back runs:\n"
            + "\n".join(c.key.label() for c in report.regressed)
        )
        assert len(report.cells) == len(_GRID)

    def test_injected_sleep_is_flagged_regressed(self, tmp_path,
                                                 monkeypatch):
        """Acceptance: slow one run's execute phase artificially and
        the compare engine must say so."""
        store = HistoryStore(tmp_path / "h")
        _record_run(store, "base")

        real_execute = runner_module.execute

        def slow_execute(*args, **kwargs):
            result = real_execute(*args, **kwargs)
            if kwargs.get("metrics") is not None or "traits" in kwargs:
                time.sleep(0.02)  # only the per-cell runs, not gold
            return result

        monkeypatch.setattr(runner_module, "execute", slow_execute)
        _record_run(store, "slowed")
        runs = store.latest_runs(2)
        report = compare_records(runs[0], runs[1])
        assert not report.ok
        for cell in report.regressed:
            assert any(m.metric == "execute"
                       for m in cell.regressions())


class TestRecorderPlumbing:
    def test_dedup_counted(self, tmp_path, make_record):
        recorder = PerfRecorder(tmp_path / "h", source="test",
                                run_id="r")
        kwargs = dict(workload="w", variant="v", engine="closure",
                      machine="ia64", fuel=10,
                      measures={"steps": 1})
        recorder.record_cell(**kwargs)
        recorder.record_cell(**kwargs)
        assert recorder.recorded == 1
        assert recorder.deduplicated == 1

    def test_recorder_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_DIR", raising=False)
        assert recorder_from_env("test") is None
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "envh"))
        recorder = recorder_from_env("test")
        assert recorder is not None
        assert recorder.store.directory == tmp_path / "envh"

    def test_provenance_attached_once_per_run(self, tmp_path):
        recorder = PerfRecorder(tmp_path / "h", source="test")
        a = recorder.record_cell(workload="w", variant="v",
                                 engine="closure", machine="ia64",
                                 fuel=10, measures={"steps": 1})
        b = recorder.record_cell(workload="w2", variant="v",
                                 engine="closure", machine="ia64",
                                 fuel=10, measures={"steps": 2})
        assert a.run_id == b.run_id
        assert a.host == b.host
        assert a.git_rev == b.git_rev
