"""Shared builders for the perf subsystem tests."""

import pytest

from repro.perf import RunRecord


@pytest.fixture
def make_record():
    """A RunRecord factory with sane defaults, override any field."""

    def build(**overrides):
        fields = {
            "workload": "fourier",
            "variant": "baseline",
            "engine": "closure",
            "machine": "ia64",
            "source": "test",
            "fuel": 1000,
            "repeat": 0,
            "phases": {"sign_ext": 0.01, "chains": 0.002,
                       "others": 0.03, "execute": 0.5},
            "measures": {"dyn_extend32": 100, "dyn_extend16": 5,
                         "dyn_extend8": 2, "static_extends": 40,
                         "steps": 9000, "cycles": 12345.0,
                         "extend_cycles": 300.0},
            "host": {"python": "3.11.7", "platform": "test",
                     "host_id": "aaaabbbbcccc"},
            "run_id": "run-1",
        }
        fields.update(overrides)
        return RunRecord(**fields)

    return build
