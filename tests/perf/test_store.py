"""HistoryStore: append-only JSONL, dedup, migration, corruption."""

import json

from repro.perf import (
    HistoryStore,
    SCHEMA_VERSION,
    load_jsonl,
    migrate_record,
)


class TestAppendDedup:
    def test_append_and_read_back(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        assert store.append(make_record()) is True
        records = store.records()
        assert len(records) == 1
        assert records[0].workload == "fourier"

    def test_duplicate_content_is_a_noop(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        assert store.append(make_record()) is True
        # Same content, different bookkeeping: deduplicated.
        assert store.append(make_record(run_id="other",
                                        created=42.0)) is False
        assert len(store.records()) == 1

    def test_dedup_survives_reopen(self, tmp_path, make_record):
        HistoryStore(tmp_path / "h").append(make_record())
        reopened = HistoryStore(tmp_path / "h")
        assert reopened.append(make_record()) is False
        assert len(reopened) == 1

    def test_extend_reports_new_count(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        batch = [make_record(), make_record(repeat=1), make_record()]
        assert store.extend(batch) == 2

    def test_append_stamps_created(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        record = make_record(created=0.0)
        store.append(record)
        assert store.records()[0].created > 0


class TestRuns:
    def test_run_ids_ordered_by_first_appearance(self, tmp_path,
                                                 make_record):
        store = HistoryStore(tmp_path / "h")
        store.append(make_record(run_id="a"))
        store.append(make_record(run_id="b", repeat=1))
        store.append(make_record(run_id="a", variant="insert"))
        assert store.run_ids() == ["a", "b"]

    def test_latest_runs_newest_first(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        store.append(make_record(run_id="old"))
        store.append(make_record(run_id="new", repeat=1))
        batches = store.latest_runs(2)
        assert [b[0].run_id for b in batches] == ["new", "old"]

    def test_records_for_run(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        store.append(make_record(run_id="a"))
        store.append(make_record(run_id="b", repeat=1))
        assert [r.run_id for r in store.records_for_run("b")] == ["b"]


class TestRobustness:
    def test_corrupt_lines_skipped(self, tmp_path, make_record):
        store = HistoryStore(tmp_path / "h")
        store.append(make_record())
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("{truncated json\n")
            handle.write('{"valid_json": "but not a record"}\n')
        store2 = HistoryStore(tmp_path / "h")
        assert len(store2.records()) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        assert load_jsonl(tmp_path / "nope.jsonl") == []
        assert HistoryStore(tmp_path / "nope").records() == []


class TestMigration:
    def test_v0_record_migrates(self):
        v0 = {
            "workload": "huffman", "variant": "baseline",
            "engine": "closure", "machine": "ia64",
            "metrics": {"dyn_extend32": 7},
            "timings": {"execute": 0.5},
            "schema_version": 0,
        }
        document = migrate_record(v0)
        assert document is not None
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["measures"] == {"dyn_extend32": 7}
        assert document["phases"] == {"execute": 0.5}
        assert document["counters"] == {}

    def test_newer_schema_is_skipped(self, make_record):
        document = make_record().to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        assert migrate_record(document) is None

    def test_migration_applied_on_load(self, tmp_path):
        path = tmp_path / "old.jsonl"
        v0 = {
            "workload": "huffman", "variant": "baseline",
            "engine": "closure", "machine": "ia64",
            "metrics": {"steps": 10}, "schema_version": 0,
        }
        path.write_text(json.dumps(v0) + "\n")
        records = load_jsonl(path)
        assert len(records) == 1
        assert records[0].measures == {"steps": 10}
        assert records[0].schema_version == SCHEMA_VERSION
