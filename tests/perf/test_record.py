"""RunRecord: identity, content addressing, (de)serialization."""

import pytest

from repro.perf import RunRecord, validate_record
from repro.perf.record import CellKey


class TestIdentity:
    def test_cell_key(self, make_record):
        record = make_record()
        assert record.key() == CellKey("fourier", "ia64", "baseline",
                                       "closure")
        assert record.key().label() == "fourier/ia64/baseline/closure"

    def test_record_id_stable_across_bookkeeping(self, make_record):
        """created/run_id are bookkeeping: changing them must not
        change the content address (that is what makes dedup work
        across re-imports)."""
        a = make_record(created=1.0, run_id="run-1")
        b = make_record(created=999.0, run_id="run-2")
        assert a.record_id == b.record_id

    def test_record_id_tracks_content(self, make_record):
        a = make_record()
        b = make_record(measures={**a.measures, "dyn_extend32": 101})
        assert a.record_id != b.record_id

    def test_record_id_tracks_repeat_index(self, make_record):
        assert (make_record(repeat=0).record_id
                != make_record(repeat=1).record_id)


class TestSerialization:
    def test_round_trip(self, make_record):
        record = make_record(created=5.0)
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.record_id == record.record_id

    def test_from_dict_ignores_unknown_fields(self, make_record):
        document = make_record().to_dict()
        document["future_field"] = {"x": 1}
        RunRecord.from_dict(document)  # no TypeError

    def test_from_dict_requires_the_cell_key(self, make_record):
        document = make_record().to_dict()
        del document["variant"]
        with pytest.raises(ValueError, match="variant"):
            RunRecord.from_dict(document)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(TypeError):
            RunRecord.from_dict(["not", "a", "record"])


class TestValidate:
    def test_good_record_validates(self, make_record):
        assert validate_record(make_record().to_dict()) == []

    def test_missing_key_reported(self, make_record):
        document = make_record().to_dict()
        del document["schema_version"]
        assert any("schema_version" in p
                   for p in validate_record(document))

    def test_negative_phase_reported(self, make_record):
        document = make_record().to_dict()
        document["phases"]["execute"] = -0.5
        assert any("execute" in p for p in validate_record(document))

    def test_non_dict_blocks_reported(self, make_record):
        document = make_record().to_dict()
        document["measures"] = [1, 2, 3]
        assert any("measures" in p for p in validate_record(document))
