"""The compare engine: noise model, exact measures, host pairing."""

from repro.perf import compare_records, format_compare, parse_threshold
from repro.perf.compare import (
    IMPROVED,
    MISSING,
    NEUTRAL,
    NEW,
    REGRESSED,
    SKIPPED,
    scaled_mad,
)


def _repeats(make_record, execute_times, run_id="run", **overrides):
    """One record per repeat, varying only the execute phase."""
    records = []
    for index, seconds in enumerate(execute_times):
        base = make_record(run_id=run_id, repeat=index, **overrides)
        base.phases = {**base.phases, "execute": seconds}
        records.append(base)
    return records


class TestHelpers:
    def test_parse_threshold(self):
        assert parse_threshold("10%") == 0.10
        assert parse_threshold("2.5%") == 0.025
        assert parse_threshold("0.1") == 0.1
        assert parse_threshold(0.2) == 0.2

    def test_scaled_mad(self):
        assert scaled_mad([5.0]) == 0.0
        assert scaled_mad([1.0, 1.0, 1.0]) == 0.0
        assert scaled_mad([1.0, 2.0, 3.0]) > 0


class TestTimeMetrics:
    def test_identical_runs_are_neutral(self, make_record):
        base = _repeats(make_record, [0.50, 0.52, 0.51], run_id="a")
        cur = _repeats(make_record, [0.50, 0.52, 0.51], run_id="b")
        report = compare_records(cur, base)
        assert report.ok
        [cell] = report.cells
        assert cell.classification == NEUTRAL

    def test_small_jitter_stays_neutral(self, make_record):
        """4% wall-time wiggle is inside the default 10% floor — the
        zero-false-regressions property for back-to-back runs."""
        base = _repeats(make_record, [0.50, 0.53, 0.51], run_id="a")
        cur = _repeats(make_record, [0.52, 0.50, 0.54], run_id="b")
        report = compare_records(cur, base)
        assert report.ok

    def test_injected_slowdown_is_flagged(self, make_record):
        """The acceptance criterion: an artificially slowed cell (e.g.
        an injected sleep) must classify as regressed."""
        base = _repeats(make_record, [0.50, 0.51, 0.50], run_id="a")
        cur = _repeats(make_record, [0.75, 0.76, 0.75], run_id="b")
        report = compare_records(cur, base)
        assert not report.ok
        [cell] = report.regressed
        execute = next(m for m in cell.metrics if m.metric == "execute")
        assert execute.classification == REGRESSED
        assert execute.delta > 0

    def test_speedup_is_improved(self, make_record):
        base = _repeats(make_record, [0.80, 0.81], run_id="a")
        cur = _repeats(make_record, [0.50, 0.51], run_id="b")
        report = compare_records(cur, base)
        [cell] = report.cells
        assert cell.classification == IMPROVED

    def test_min_of_repeats_absorbs_one_noisy_repeat(self, make_record):
        """One disturbed repeat (GC pause, scheduler) must not flag a
        regression: the point estimate is the minimum."""
        base = _repeats(make_record, [0.50, 0.50, 0.50], run_id="a")
        cur = _repeats(make_record, [0.50, 1.40, 0.50], run_id="b")
        report = compare_records(cur, base)
        assert report.ok

    def test_compile_is_summed_buckets(self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b")
        # Compile buckets doubled -> compile regression, execute same.
        cur.phases = {"sign_ext": 0.02, "chains": 0.004, "others": 0.06,
                      "execute": base.phases["execute"]}
        report = compare_records([cur], [base])
        [cell] = report.cells
        compile_verdict = next(m for m in cell.metrics
                               if m.metric == "compile")
        assert compile_verdict.classification == REGRESSED
        assert compile_verdict.baseline == sum(
            v for k, v in base.phases.items() if k != "execute")


class TestDeterministicMeasures:
    def test_any_count_increase_is_a_regression(self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b")
        cur.measures = {**cur.measures,
                        "dyn_extend32": cur.measures["dyn_extend32"] + 1}
        report = compare_records([cur], [base])
        assert not report.ok
        [cell] = report.regressed
        assert any(m.metric == "dyn_extend32" for m in
                   cell.regressions())

    def test_count_decrease_is_improved(self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b")
        cur.measures = {**cur.measures, "dyn_extend32": 0}
        report = compare_records([cur], [base])
        [cell] = report.cells
        assert cell.classification == IMPROVED

    def test_float_measures_get_epsilon_band(self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b")
        cur.measures = {**cur.measures,
                        "cycles": base.measures["cycles"] * (1 + 1e-12)}
        report = compare_records([cur], [base])
        assert report.ok


class TestHostPairing:
    def test_cross_host_skips_wall_time_but_compares_counts(
            self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b",
                          host={"python": "3.12.1", "platform": "ci",
                                "host_id": "ddddeeeeffff"})
        # Wildly different wall time + one real count regression.
        cur.phases = {**cur.phases, "execute": 40.0}
        cur.measures = {**cur.measures,
                        "steps": cur.measures["steps"] + 1}
        report = compare_records([cur], [base])
        [cell] = report.cells
        time_verdicts = [m for m in cell.metrics
                         if m.metric in ("execute", "compile")]
        assert time_verdicts
        assert all(m.classification == SKIPPED for m in time_verdicts)
        assert cell.classification == REGRESSED  # the count, not the time
        assert any(m.metric == "steps" for m in cell.regressions())


class TestPairing:
    def test_new_and_missing_cells_reported(self, make_record):
        base = make_record(run_id="a")
        cur = make_record(run_id="b", workload="huffman")
        report = compare_records([cur], [base])
        classes = {c.key.workload: c.classification
                   for c in report.cells}
        assert classes == {"fourier": MISSING, "huffman": NEW}
        assert report.ok  # presence changes are not regressions

    def test_report_to_dict_is_machine_readable(self, make_record):
        report = compare_records([make_record(run_id="b")],
                                 [make_record(run_id="a")])
        document = report.to_dict()
        assert document["ok"] is True
        assert document["summary"] == {NEUTRAL: 1}
        assert document["cells"][0]["workload"] == "fourier"

    def test_format_compare_flags_regressions(self, make_record):
        base = _repeats(make_record, [0.5], run_id="a")
        cur = _repeats(make_record, [2.0], run_id="b")
        text = format_compare(compare_records(cur, base))
        assert "!!" in text and "regressed" in text
        assert "fourier/ia64/baseline/closure" in text
