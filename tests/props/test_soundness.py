"""Property-based soundness tests.

The central invariant of the whole repository: **no optimization variant
may change observable behaviour**.  Random J32 programs (loops, arrays,
overflowing arithmetic, narrowing casts) are compiled under every
variant and executed with machine-faithful semantics; checksums, return
values, and trap behaviour must match the unoptimized run exactly.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.machine import IA64, PPC64
from repro.testing import generate_program

_FAST_VARIANTS = {
    name: VARIANTS[name]
    for name in ("baseline", "gen use", "first algorithm (bwd flow)",
                 "new algorithm (all)", "all, using PDE")
}

# derandomize + database=None: the same 25 examples every run, with no
# example database carrying one machine's random discoveries over to
# the next run (this suite is a tier-1 gate; it must be deterministic).
_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _gold_and_variants(seed: int, variants, traits=IA64):
    source = generate_program(seed)
    program = compile_source(source, f"fuzz{seed}")
    gold = Interpreter(program, mode="ideal", fuel=2_000_000).run()
    for name, config in variants.items():
        config = config.with_traits(traits)
        compiled = compile_ir(program, config)
        run = Interpreter(compiled.program, traits=traits,
                          fuel=2_000_000).run()
        assert run.observable() == gold.observable(), (
            f"seed={seed} variant={name!r}: behaviour changed\n{source}"
        )
        yield name, compiled, run, gold


class TestVariantEquivalence:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_all_fast_variants_equivalent(self, seed):
        for _ in _gold_and_variants(seed, _FAST_VARIANTS):
            pass

    @_SETTINGS
    @given(seed=st.integers(min_value=20_000, max_value=30_000))
    def test_full_variant_set_on_fewer_seeds(self, seed):
        for _ in _gold_and_variants(seed, VARIANTS):
            pass

    @_SETTINGS
    @given(seed=st.integers(min_value=40_000, max_value=50_000))
    def test_ppc64_target(self, seed):
        for _ in _gold_and_variants(seed, _FAST_VARIANTS, traits=PPC64):
            pass


class TestEliminationNeverIncreases:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_new_algorithm_never_worse_than_basic(self, seed):
        source = generate_program(seed)
        program = compile_source(source, f"fuzz{seed}")
        runs = {}
        for name in ("basic ud/du", "new algorithm (all)"):
            compiled = compile_ir(program, VARIANTS[name])
            runs[name] = Interpreter(
                compiled.program, fuel=2_000_000
            ).run()
        # Insertion + order determination work from static frequency
        # estimates here (no profiles), which can legitimately cost a
        # few extra dynamic extensions on adversarial programs (e.g.
        # generator seed 1382 costs +3); the paper's claim is aggregate,
        # so allow small additive slack.
        basic = runs["basic ud/du"].extends32
        assert (runs["new algorithm (all)"].extends32
                <= basic + max(4, basic // 10))
