"""Property-based tests of core data-structure invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.dataflow import bit_indices
from repro.analysis.value_range import Interval, TOP, _clamped
from repro.ir.types import (
    INT32_MAX,
    INT32_MIN,
    is_canonical32,
    low32,
    sign_extend,
    wrap_u64,
    zero_extend,
)

u64s = st.integers(min_value=0, max_value=2**64 - 1)
i32s = st.integers(min_value=INT32_MIN, max_value=INT32_MAX)
widths = st.sampled_from([8, 16, 32])


class TestBitArithmetic:
    @given(value=u64s, bits=widths)
    def test_sign_extend_idempotent(self, value, bits):
        once = sign_extend(value, bits)
        assert sign_extend(once, bits) == once

    @given(value=u64s, bits=widths)
    def test_sign_extend_preserves_low_bits(self, value, bits):
        extended = sign_extend(value, bits)
        assert zero_extend(extended, bits) == zero_extend(value, bits)

    @given(value=u64s)
    def test_canonical_iff_fixed_point(self, value):
        assert is_canonical32(value) == (
            wrap_u64(sign_extend(value, 32)) == value
        )

    @given(value=i32s)
    def test_canonical_values_roundtrip(self, value):
        register = wrap_u64(value)
        assert is_canonical32(register)
        assert sign_extend(low32(register), 32) == value

    @given(value=u64s)
    def test_extend_widens_monotonically(self, value):
        # canonical-8 implies canonical-16 implies canonical-32.
        v8 = wrap_u64(sign_extend(value, 8))
        assert wrap_u64(sign_extend(v8, 16)) == v8
        assert wrap_u64(sign_extend(v8, 32)) == v8

    @given(bits=st.integers(min_value=0, max_value=2**70))
    def test_bit_indices_roundtrip(self, bits):
        indices = bit_indices(bits)
        assert sum(1 << i for i in indices) == bits
        assert indices == sorted(indices)


class TestIntervals:
    intervals = st.builds(
        lambda a, b: Interval(min(a, b), max(a, b)), i32s, i32s
    )

    @given(a=intervals, b=intervals)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.lo <= a.lo and u.hi >= a.hi
        assert u.lo <= b.lo and u.hi >= b.hi

    @given(a=intervals)
    def test_union_with_top_is_top(self, a):
        assert a.union(TOP).is_top

    @given(a=intervals)
    def test_within_reflexive(self, a):
        assert a.within(a.lo, a.hi)

    @given(lo=st.integers(min_value=-2**40, max_value=2**40),
           hi=st.integers(min_value=-2**40, max_value=2**40))
    def test_clamped_never_invents_precision(self, lo, hi):
        result = _clamped(lo, hi)
        if lo <= hi and INT32_MIN <= lo and hi <= INT32_MAX:
            assert result == Interval(lo, hi)
        else:
            assert result.is_top


class TestCheckedArithmetic:
    """The interpreter's 32-bit ops agree with Java reference semantics."""

    @given(a=i32s, b=i32s)
    def test_add32_low_bits(self, a, b):
        from repro.interp.interpreter import _INT32_BINOPS
        from repro.ir.opcodes import Opcode

        machine = _INT32_BINOPS[Opcode.ADD32](wrap_u64(a), wrap_u64(b))
        java = sign_extend(a + b, 32)
        assert sign_extend(low32(machine), 32) == java

    @given(a=i32s, b=i32s)
    def test_mul32_low_bits(self, a, b):
        from repro.interp.interpreter import _INT32_BINOPS
        from repro.ir.opcodes import Opcode

        machine = _INT32_BINOPS[Opcode.MUL32](wrap_u64(a), wrap_u64(b))
        java = sign_extend(a * b, 32)
        assert sign_extend(low32(machine), 32) == java

    @given(a=i32s, b=i32s.filter(lambda v: v != 0))
    def test_div32_matches_java(self, a, b):
        from repro.interp.interpreter import _java_idiv

        machine = _java_idiv(wrap_u64(a), wrap_u64(b))
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert sign_extend(low32(machine), 32) == sign_extend(expected, 32)

    @given(a=i32s, n=st.integers(min_value=0, max_value=63))
    def test_shr32_matches_java(self, a, n):
        from repro.interp.interpreter import _INT32_BINOPS
        from repro.ir.opcodes import Opcode

        machine = _INT32_BINOPS[Opcode.SHR32](wrap_u64(a), n)
        assert sign_extend(machine, 64) == a >> (n & 31)

    @given(a=i32s, n=st.integers(min_value=0, max_value=63))
    def test_ushr32_matches_java(self, a, n):
        from repro.interp.interpreter import _INT32_BINOPS
        from repro.ir.opcodes import Opcode

        machine = _INT32_BINOPS[Opcode.USHR32](wrap_u64(a), n)
        assert machine == zero_extend(a, 32) >> (n & 31)
