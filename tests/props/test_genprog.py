"""Tests for the random-program generator itself."""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.testing import ProgramGenerator, generate_program
from tests.conftest import run_ideal


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_always_compiles_and_terminates(self, seed):
        program = compile_source(generate_program(seed), f"g{seed}")
        result = run_ideal(program, fuel=2_000_000)
        assert result.steps > 0

    def test_exercises_interesting_features(self):
        corpus = "\n".join(generate_program(seed) for seed in range(50))
        # The generator should regularly produce the constructs the
        # sign-extension machinery cares about.
        assert "arr[" in corpus
        assert "(byte)" in corpus or "(short)" in corpus
        assert "(long)" in corpus
        assert "for (" in corpus
        assert "helper(" in corpus
        assert ">>>" in corpus or ">>" in corpus

    def test_custom_knobs(self):
        generator = ProgramGenerator(3, max_loops=0, max_statements=4)
        source = generator.generate()
        program = compile_source(source, "knobs")
        run_ideal(program, fuel=500_000)
