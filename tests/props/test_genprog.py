"""Tests for the random-program generator itself."""

import hashlib
import pathlib
import re
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.testing import ProgramGenerator, generate_program
from tests.conftest import run_ideal


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_always_compiles_and_terminates(self, seed):
        program = compile_source(generate_program(seed), f"g{seed}")
        result = run_ideal(program, fuel=2_000_000)
        assert result.steps > 0

    def test_exercises_interesting_features(self):
        corpus = "\n".join(generate_program(seed) for seed in range(50))
        # The generator should regularly produce the constructs the
        # sign-extension machinery cares about.
        assert "arr[" in corpus
        assert "(byte)" in corpus or "(short)" in corpus
        assert "(long)" in corpus
        assert "for (" in corpus
        assert "helper(" in corpus
        assert ">>>" in corpus or ">>" in corpus

    def test_custom_knobs(self):
        generator = ProgramGenerator(3, max_loops=0, max_statements=4)
        source = generator.generate()
        program = compile_source(source, "knobs")
        run_ideal(program, fuel=500_000)


class TestAnalyzeArrayShapes:
    """The generator must hit the AnalyzeARRAY Theorem 3/4 paths: ``>>>``
    on known-negative values feeding array indices, long induction
    variables narrowed to int subscripts, and stores inside count-down
    loops."""

    CORPUS = "\n".join(generate_program(seed) for seed in range(200))

    def test_negative_ushr_feeds_indices(self):
        assert "-2147483648) >>>" in self.CORPUS

    def test_long_countdown_loops_with_narrowed_subscripts(self):
        assert re.search(r"for \(long j\d+ = \d+L; j\d+ > 0L; j\d+--\)",
                         self.CORPUS)
        assert "(int) j" in self.CORPUS

    def test_array_stores_in_countdown_loops(self):
        assert re.search(r"arr\[\(\(int\) j\d+ \+ \d+\) & \d+\] =",
                         self.CORPUS)


class TestCrossProcessDeterminism:
    def test_seed_survives_interpreter_restart(self):
        """Same seed, same program, across interpreter restarts — the
        fuzzing corpus records seeds, so a seed must mean the same
        program in every future session (mirrors the cache-key
        stability test in tests/driver/test_fingerprint.py)."""
        seeds = (0, 7, 123, 99_991)
        digest = hashlib.sha256(
            "\x00".join(generate_program(s) for s in seeds).encode()
        ).hexdigest()

        src_dir = pathlib.Path(__file__).resolve().parents[2] / "src"
        script = f"""
import hashlib
import sys
sys.path.insert(0, {str(src_dir)!r})
from repro.testing import generate_program
print(hashlib.sha256(
    "\\x00".join(generate_program(s) for s in {seeds!r}).encode()
).hexdigest())
"""
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == digest
