"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_telemetry_document

SOURCE = """
double main() {
    int[] a = new int[32];
    int t = 0;
    for (int i = 0; i < 32; i++) { a[i] = i * 5; }
    for (int i = 31; i > 0; i--) { t += a[i]; }
    double d = (double) t;
    sinkd(d);
    return d;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.j32"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_result(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        out = capsys.readouterr().out
        assert "result" in out
        assert "verified against gold" in out

    def test_run_baseline_variant(self, source_file, capsys):
        assert main(["run", source_file, "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "32-bit" in out

    def test_run_ppc64(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "ppc64"]) == 0


class TestIR:
    def test_ir_dump(self, source_file, capsys):
        assert main(["ir", source_file]) == 0
        out = capsys.readouterr().out
        assert "func @main" in out
        assert "aload" in out


class TestAsm:
    def test_ia64_asm(self, source_file, capsys):
        assert main(["asm", source_file, "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "shladd" in out

    def test_ppc64_asm(self, source_file, capsys):
        assert main(["asm", source_file, "--machine", "ppc64",
                     "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "rldic" in out


class TestVariants:
    def test_variant_table(self, source_file, capsys):
        assert main(["variants", source_file]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "new algorithm (all)" in out
        assert "100.00%" in out


class TestBench:
    def test_unknown_workload(self, capsys):
        assert main(["bench", "doom"]) == 1
        err = capsys.readouterr().err
        assert "unknown workload" in err


class TestCompile:
    def test_single_file(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "extends" in out
        assert "eliminated" in out

    def test_many_files_one_line_each(self, source_file, tmp_path, capsys):
        other = tmp_path / "other.j32"
        other.write_text(SOURCE.replace("* 5", "* 7"))
        assert main(["compile", source_file, str(other)]) == 0
        out = capsys.readouterr().out
        assert out.count("eliminated") == 2

    def test_cache_cold_then_warm(self, source_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["compile", source_file, "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert "[cache: 0 hits, 1 misses]" in capsys.readouterr().out
        assert main(argv) == 0
        assert "[cache: 1 hits, 0 misses]" in capsys.readouterr().out

    def test_stats_output(self, source_file, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        assert main(["compile", source_file, "--jobs", "1",
                     "--stats", str(stats_path)]) == 0
        stats = json.loads(stats_path.read_text())
        assert stats["driver.pool.jobs"] == 1
        assert stats["driver.pool.compiled{mode=inline}"] == 1


class TestBenchDriver:
    def test_bench_cache_warm_rerun_identical(self, tmp_path, capsys):
        from repro.harness import strip_volatile

        cache_dir = str(tmp_path / "cache")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        base = ["bench", "fourier", "--cache", "--cache-dir", cache_dir]

        assert main(base + ["--json", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        assert "[cache: 0 hits, 12 misses]" in cold_out

        assert main(base + ["--json", str(warm_json)]) == 0
        warm_out = capsys.readouterr().out
        assert "[cache: 12 hits, 0 misses]" in warm_out

        cold = strip_volatile(json.loads(cold_json.read_text()))
        warm = strip_volatile(json.loads(warm_json.read_text()))
        assert cold == warm

    def test_bench_stats_file(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        assert main(["bench", "fourier", "--stats", str(stats_path)]) == 0
        stats = json.loads(stats_path.read_text())
        assert stats["driver.pool.jobs"] == 12


class TestTelemetryFlag:
    def test_run_writes_telemetry_document(self, source_file, tmp_path,
                                           capsys):
        out = tmp_path / "telemetry.json"
        assert main(["run", source_file, "--telemetry", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_telemetry_document(doc) == []
        assert doc["label"] == "kernel"
        # Both compile-time and run-time metrics are present.
        counters = doc["metrics"]["counters"]
        assert any(k.startswith("compile.") for k in counters)
        assert any(k.startswith("runtime.") for k in counters)

    def test_ir_writes_compile_only_telemetry(self, source_file, tmp_path,
                                              capsys):
        out = tmp_path / "telemetry.json"
        assert main(["ir", source_file, "--telemetry", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_telemetry_document(doc) == []
        counters = doc["metrics"]["counters"]
        assert not any(k.startswith("runtime.") for k in counters)


class TestTrace:
    def test_trace_writes_chrome_json(self, source_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", source_file, "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["ph"] == "M"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"compile", "sign-ext", "elimination"} <= names
        for event in complete:
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
        text = capsys.readouterr().out
        assert "decisions" in text

    def test_trace_full_document(self, source_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        full = tmp_path / "full.json"
        assert main(["trace", source_file, "--out", str(trace),
                     "--full", str(full)]) == 0
        doc = json.loads(full.read_text())
        assert validate_telemetry_document(doc) == []
        assert doc["decisions"], "decision log should not be empty"


class TestPerf:
    def _record(self, history, capsys):
        code = main(["perf", "record", "--workloads", "fourier",
                     "--engines", "closure", "--repeat", "1",
                     "--fuel", "2000000", "--history", str(history)])
        assert code == 0
        return capsys.readouterr().out

    def test_record_appends_history(self, tmp_path, capsys):
        history = tmp_path / "ph"
        out = self._record(history, capsys)
        assert "recorded" in out
        lines = (history / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2  # two default variants x one repeat
        for line in lines:
            record = json.loads(line)
            assert record["workload"] == "fourier"
            assert record["phases"]["execute"] > 0

    def test_compare_against_previous_run(self, tmp_path, capsys):
        history = tmp_path / "ph"
        self._record(history, capsys)
        self._record(history, capsys)
        verdict = tmp_path / "verdict.json"
        # Wide threshold: this tests the pairing/JSON/exit plumbing;
        # the noise model itself is unit-tested in tests/perf/ (one
        # repeat has no MAD cushion, so a loaded machine could trip a
        # tight gate here and make the test flaky).
        assert main(["perf", "compare", "--history", str(history),
                     "--threshold", "500%",
                     "--json", str(verdict)]) == 0
        out = capsys.readouterr().out
        assert "previous recorded run" in out
        doc = json.loads(verdict.read_text())
        assert doc["ok"] is True
        assert len(doc["cells"]) == 2

    def test_compare_single_run_needs_baseline(self, tmp_path, capsys):
        history = tmp_path / "ph"
        self._record(history, capsys)
        assert main(["perf", "compare", "--history",
                     str(history)]) == 2

    def test_fail_on_regression_gates(self, tmp_path, capsys):
        """A baseline whose deterministic counts are better than the
        current run trips the gate (exit 1) — no timing flakiness."""
        history = tmp_path / "ph"
        self._record(history, capsys)
        baseline = tmp_path / "baseline.jsonl"
        with open(baseline, "w") as handle:
            for line in (history / "history.jsonl").read_text() \
                    .splitlines():
                record = json.loads(line)
                record["measures"]["dyn_extend32"] -= 1
                handle.write(json.dumps(record) + "\n")
        assert main(["perf", "compare", "--history", str(history),
                     "--against", str(baseline),
                     "--fail-on-regression", "10%"]) == 1

    def test_report_writes_self_contained_html(self, tmp_path, capsys):
        history = tmp_path / "ph"
        self._record(history, capsys)
        out_file = tmp_path / "dash.html"
        assert main(["perf", "report", "--history", str(history),
                     "--out", str(out_file)]) == 0
        html = out_file.read_text()
        assert "<svg" in html
        assert "<script src" not in html and "<link" not in html


class TestProfile:
    def test_profile_source_file_summary(self, source_file, capsys):
        assert main(["profile", source_file]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "main" in out

    def test_profile_registry_workload(self, capsys):
        assert main(["profile", "huffman", "--fuel", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "huffman" in out

    def test_unknown_target(self, capsys):
        assert main(["profile", "no-such-workload"]) == 1
        assert "no-such-workload" in capsys.readouterr().err

    def test_profile_writes_artifact(self, source_file, tmp_path, capsys):
        from repro.profile import load_profiles, validate_artifact_file

        out_dir = tmp_path / "profiles"
        assert main(["profile", source_file,
                     "--dir", str(out_dir)]) == 0
        artifacts = list(out_dir.iterdir())
        assert len(artifacts) == 1
        validate_artifact_file(artifacts[0])
        assert len(load_profiles(out_dir)) == 1

    def test_profile_renderer_outputs(self, source_file, tmp_path,
                                      capsys):
        flame = tmp_path / "flame.txt"
        heat = tmp_path / "heat.html"
        assert main(["profile", source_file, "--ir",
                     "--flame", str(flame),
                     "--heatmap", str(heat)]) == 0
        out = capsys.readouterr().out
        assert "func @main" in out  # annotated IR dump
        stacks = flame.read_text()
        assert stacks.startswith("main")
        html = heat.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert 'class="cell' in html
        assert "<script" not in html

    def test_profile_engine_both(self, source_file, capsys):
        assert main(["profile", source_file, "--engine", "both"]) == 0

    def test_bench_profile_dir(self, tmp_path, capsys):
        from repro.core import VARIANTS
        from repro.profile import load_profiles

        out_dir = tmp_path / "profiles"
        assert main(["bench", "bitfield",
                     "--profile-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "profile artifacts written" in out
        loaded = load_profiles(out_dir)
        assert len(loaded) == len(VARIANTS)  # one artifact per cell
        assert all(p.workload == "bitfield" for p in loaded)

    def test_perf_report_embeds_profiles(self, source_file, tmp_path,
                                         capsys):
        profiles = tmp_path / "profiles"
        assert main(["profile", source_file,
                     "--dir", str(profiles)]) == 0
        history = tmp_path / "ph"
        assert main(["perf", "record", "--workloads", "fourier",
                     "--engines", "closure", "--repeat", "1",
                     "--fuel", "2000000",
                     "--history", str(history)]) == 0
        out_file = tmp_path / "dash.html"
        assert main(["perf", "report", "--history", str(history),
                     "--profiles", str(profiles),
                     "--out", str(out_file)]) == 0
        html = out_file.read_text()
        assert "hot blocks (profile artifacts)" in html
        assert 'class="cell' in html
        assert "<script src" not in html and "<link" not in html


class TestErrorPaths:
    """Bad input exits non-zero with a one-line diagnostic, never a
    traceback (stderr must not contain 'Traceback')."""

    def test_malformed_source_is_a_diagnostic(self, tmp_path, capsys):
        bad = tmp_path / "bad.j32"
        bad.write_text("void main() { nope")
        assert main(["run", str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1

    def test_malformed_source_on_compile(self, tmp_path, capsys):
        bad = tmp_path / "bad.j32"
        bad.write_text("int main() { return }")
        assert main(["compile", str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "missing.j32"
        assert main(["run", str(missing)]) == 2
        captured = capsys.readouterr()
        assert "no such file" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_workload_on_bench(self, capsys):
        assert main(["bench", "nope"]) == 1
        captured = capsys.readouterr()
        assert "unknown workload 'nope'" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_variant_is_usage_error(self, source_file, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", source_file, "--variant", "nope"])
        assert exit_info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_engine_is_usage_error(self, source_file, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", source_file, "--engine", "jit"])
        assert exit_info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_prune_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        source = tmp_path / "k.j32"
        source.write_text("void main() { int x = 1; sink(x); }")
        # Populate via a cached compile, then inspect.
        assert main(["compile", str(source), "--cache",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 1" in out
        assert "unbounded" in out

        # prune without a budget is a usage error...
        assert main(["cache", "prune", "--cache-dir", str(cache_dir)]) == 2
        assert "no byte budget" in capsys.readouterr().err
        # ...with a huge budget nothing is evicted...
        assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                     "--cache-max-bytes", "100000000"]) == 0
        assert "evicted   : 0" in capsys.readouterr().out
        # ...with a tiny one everything goes.
        assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                     "--cache-max-bytes", "1"]) == 0
        assert "evicted   : 1" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert list(cache_dir.glob("*.pkl")) == []


class TestServeCommands:
    def test_loadtest_spawn_round_trip(self, tmp_path, capsys):
        report_path = tmp_path / "loadtest.json"
        history = tmp_path / "history"
        assert main(["loadtest", "--spawn", "--requests", "8",
                     "--concurrency", "4", "--fuel", "1000000",
                     "--json", str(report_path),
                     "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "8 offered, 8 completed" in out
        assert "bit-identical" in out
        document = json.loads(report_path.read_text())
        assert document["errors"] == 0
        assert document["completed"] == 8
        assert document["latency_ms"]["p50"] > 0
        # The campaign landed in perf history as engine="serve" rows.
        from repro.perf import HistoryStore

        records = HistoryStore(history).records()
        assert len(records) == 1
        assert records[0].engine == "serve"
        assert records[0].source == "loadtest"
