"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
double main() {
    int[] a = new int[32];
    int t = 0;
    for (int i = 0; i < 32; i++) { a[i] = i * 5; }
    for (int i = 31; i > 0; i--) { t += a[i]; }
    double d = (double) t;
    sinkd(d);
    return d;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.j32"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_result(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        out = capsys.readouterr().out
        assert "result" in out
        assert "verified against gold" in out

    def test_run_baseline_variant(self, source_file, capsys):
        assert main(["run", source_file, "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "32-bit" in out

    def test_run_ppc64(self, source_file, capsys):
        assert main(["run", source_file, "--machine", "ppc64"]) == 0


class TestIR:
    def test_ir_dump(self, source_file, capsys):
        assert main(["ir", source_file]) == 0
        out = capsys.readouterr().out
        assert "func @main" in out
        assert "aload" in out


class TestAsm:
    def test_ia64_asm(self, source_file, capsys):
        assert main(["asm", source_file, "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "shladd" in out

    def test_ppc64_asm(self, source_file, capsys):
        assert main(["asm", source_file, "--machine", "ppc64",
                     "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "rldic" in out


class TestVariants:
    def test_variant_table(self, source_file, capsys):
        assert main(["variants", source_file]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "new algorithm (all)" in out
        assert "100.00%" in out


class TestBench:
    def test_unknown_workload(self, capsys):
        assert main(["bench", "doom"]) == 1
        err = capsys.readouterr().err
        assert "unknown workload" in err
