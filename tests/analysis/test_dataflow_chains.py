"""Tests for the dataflow framework, reaching defs, UD/DU chains, liveness."""

from repro.analysis import (
    Chains,
    DataflowProblem,
    Direction,
    Liveness,
    Meet,
    ReachingDefinitions,
    bit_indices,
)
from repro.ir import Cond, Opcode, Program, ScalarType, build_function
from tests.conftest import make_fig7_program


def test_bit_indices():
    assert bit_indices(0) == []
    assert bit_indices(0b1) == [0]
    assert bit_indices(0b1010) == [1, 3]
    assert bit_indices(1 << 100) == [100]


def _two_defs_program():
    """x defined in both arms of a diamond, used at the join."""
    program = Program()
    b = build_function(program, "main", [("p", ScalarType.I32)],
                       ScalarType.I32)
    x = b.func.named_reg("x", ScalarType.I32)
    one = b.const(1)
    two = b.const(2)
    zero = b.const(0)
    left = b.block("left")
    right = b.block("right")
    join = b.block("join")
    cond = b.cmp(Opcode.CMP32, Cond.NE, b.func.params[0], zero)
    b.br(cond, left, right)
    b.switch(left)
    left_def = b.emit_mov = b.mov(one, x)
    b.jmp(join)
    b.switch(right)
    b.mov(two, x)
    b.jmp(join)
    b.switch(join)
    use = b.binop(Opcode.ADD32, x, x)
    b.ret(use)
    return program


class TestReachingDefinitions:
    def test_params_are_definitions(self):
        program = _two_defs_program()
        reaching = ReachingDefinitions(program.main)
        params = [d for d in reaching.definitions if d.is_param]
        assert len(params) == 1
        assert params[0].reg.name == "p_p" or params[0].reg.name == "p"

    def test_both_arm_defs_reach_join(self):
        program = _two_defs_program()
        func = program.main
        chains = Chains(func)
        join = [b for b in func.blocks if b.label.startswith("join")][0]
        add = join.instrs[0]
        defs = chains.defs_for(add, 0)
        assert len(defs) == 2
        assert all(d.instr.opcode is Opcode.MOV for d in defs)


class TestChains:
    def test_du_matches_ud(self):
        func = make_fig7_program(3).main
        chains = Chains(func)
        for block in func.blocks:
            for instr in block.instrs:
                for index in range(len(instr.srcs)):
                    for definition in chains.defs_for(instr, index):
                        if definition.instr is None:
                            uses = chains.uses_of_param(definition.reg)
                        else:
                            uses = chains.uses_of(definition.instr)
                        assert any(
                            u.instr is instr and u.index == index
                            for u in uses
                        )

    def test_loop_carried_defs(self):
        func = make_fig7_program(3).main
        chains = Chains(func)
        body = [b for b in func.blocks if b.label.startswith("body")][0]
        sub = body.instrs[0]
        assert sub.opcode is Opcode.SUB32
        defs = chains.defs_for(sub, 0)
        # i's defs reaching the subtraction: the gload before the loop
        # and the subtraction itself around the back edge.
        opcodes = sorted(d.instr.opcode.value for d in defs)
        assert opcodes == ["gload", "sub32"]

    def test_bypass_and_remove_splices(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        from repro.ir import Instr

        ext = b.emit(Instr(Opcode.EXTEND32, x, (x,)))
        one = b.const(1)
        add = b.emit(Instr(Opcode.ADD32, b.func.new_reg(ScalarType.I32),
                           (x, one)))
        b.ret(add.dest)
        chains = Chains(program.main)
        assert chains.defs_for(add, 0)[0].instr is ext
        chains.bypass_and_remove(ext)
        defs = chains.defs_for(add, 0)
        assert len(defs) == 1
        assert defs[0].is_param
        # The instruction is physically gone too.
        assert all(i is not ext for _, i in program.main.instructions())


class TestLiveness:
    def test_loop_variable_live_at_header(self):
        func = make_fig7_program(3).main
        liveness = Liveness(func)
        body = [b for b in func.blocks if b.label.startswith("body")][0]
        assert liveness.is_live_out(body.label, "i")
        assert liveness.is_live_out(body.label, "t")

    def test_dead_after_last_use(self):
        func = make_fig7_program(3).main
        liveness = Liveness(func)
        exit_block = [b for b in func.blocks
                      if b.label.startswith("exit")][0]
        # t is consumed by i2d inside the exit block; dead at exit end.
        assert not liveness.is_live_out(exit_block.label, "t")


class TestDataflowFramework:
    def test_forward_union_reaches_fixpoint(self):
        func = make_fig7_program(3).main
        problem = DataflowProblem(func, Direction.FORWARD, Meet.UNION, 4)
        for block in func.blocks:
            problem.facts_for(block).gen = 1
        problem.solve()
        for block in func.blocks:
            if block is not func.entry:
                assert problem.facts_for(block).in_ & 1

    def test_intersect_initialized_optimistically(self):
        func = make_fig7_program(3).main
        problem = DataflowProblem(func, Direction.FORWARD, Meet.INTERSECT, 3)
        assert problem.initial == 0b111
