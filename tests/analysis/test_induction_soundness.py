"""Adversarial tests for the guarded-induction-variable range rule.

Each case constructs a loop where a naive guard-matching analysis would
claim a bound that does not actually hold; the rule must return TOP (or
a sound interval), and the compiled program must behave identically.
"""

from repro.analysis import Chains, TOP, ValueRanges
from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.ir import Cond, Opcode, Program, ScalarType, build_function
from repro.machine import IA64
from tests.conftest import run_ideal, run_machine


def _range_at_ret(program):
    func = program.main
    chains = Chains(func)
    ranges = ValueRanges(chains, IA64)
    ret = [i for _, i in func.instructions() if i.opcode is Opcode.RET][0]
    return ranges.range_of_use(ret, 0)


class TestUnsoundPatternsRejected:
    def test_guard_not_on_cycle(self):
        """A compare that exists but does not gate the back edge."""
        program = Program()
        b = build_function(program, "main", [("p", ScalarType.I32)],
                           ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        ten = b.const(10)
        b.mov(zero, i)
        # An unrelated bounded compare of i outside the loop.
        b.cmp(Opcode.CMP32, Cond.LT, i, ten)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.ADD32, i, one, i)
        # The loop exits on p, never on i.
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, b.func.params[0])
        dummy = b.cmp(Opcode.CMP32, Cond.NE, b.func.params[0], zero)
        b.br(dummy, loop, done)
        b.switch(done)
        b.ret(i)
        del cond
        assert _range_at_ret(program) == TOP

    def test_reset_inside_loop_included_in_bounds(self):
        """A second definition of the counter inside the loop must
        contribute its range to the result."""
        source = """
        int main() {
            int i = 0;
            int t = 0;
            for (int k = 0; k < 20; k++) {
                i = i + 1;
                if (k == 10) { i = 1000; }
                t += i;
            }
            sink(t);
            return t;
        }
        """
        program = compile_source(source)
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        assert run_machine(compiled.program).observable() == gold.observable()

    def test_wrapping_step_rejected(self):
        """A loop designed to overflow: the post-step clamp must go TOP
        rather than claim an in-range interval."""
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        big = b.const(0x7FFFFFF0)
        step = b.const(0x100)
        limit = b.const(0x7FFFFFFC)
        b.mov(big, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.ADD32, i, step, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, limit)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        interval = _range_at_ret(program)
        # max(init, guard) + step exceeds INT32_MAX: must clamp to TOP.
        assert interval == TOP

    def test_unsigned_guard_ignored(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        ten = b.const(10)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.ULT, i, ten)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        # Unsigned compares are not used as bounds (although here it
        # would be fine, the rule stays conservative).
        assert _range_at_ret(program) == TOP


class TestSoundPatternsAccepted:
    def test_for_loop_end_to_end(self):
        """Loop counters bound through the guard let the full pipeline
        strip subscript extensions from multiplied indices."""
        source = """
        int main() {
            int[] table = new int[2048];
            int t = 0;
            for (int k = 0; k < 32; k++) {
                for (int m = 0; m < 64; m++) {
                    table[k * 64 + m] = k + m;
                }
            }
            for (int k = 0; k < 32; k++) {
                t += table[k * 64 + 5];
            }
            sink(t);
            return t;
        }
        """
        program = compile_source(source)
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = run_machine(compiled.program)
        assert run.observable() == gold.observable()
        # Subscript extensions in the loops are gone; only a bounded
        # residue remains (the sink protection, at most once per run).
        assert run.extends32 <= 2

    def test_nested_induction_bounds_compose(self):
        source = """
        int main() {
            int acc = 0;
            for (int i = 1; i <= 10; i++) {
                for (int j = i; j < 12; j++) {
                    acc += i * j;
                }
            }
            sink(acc);
            return acc;
        }
        """
        program = compile_source(source)
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        assert run_machine(compiled.program).observable() == gold.observable()
