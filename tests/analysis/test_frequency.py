"""Tests for execution-frequency estimation and branch profiles."""

from repro.analysis import BranchProfile, estimate_frequencies
from repro.interp import collect_branch_profiles
from tests.conftest import make_fig7_program


def _block(func, prefix):
    for block in func.blocks:
        if block.label.startswith(prefix):
            return block
    raise KeyError(prefix)


class TestStaticEstimate:
    def test_loop_blocks_hotter(self):
        func = make_fig7_program(5).main
        estimate_frequencies(func)
        body = _block(func, "body")
        exit_block = _block(func, "exit")
        assert body.freq > exit_block.freq
        assert body.freq > func.entry.freq

    def test_loop_multiplier_scales(self):
        func = make_fig7_program(5).main
        estimate_frequencies(func, loop_multiplier=10.0)
        low = _block(func, "body").freq
        estimate_frequencies(func, loop_multiplier=100.0)
        high = _block(func, "body").freq
        assert high > low

    def test_entry_frequency_is_one(self):
        func = make_fig7_program(5).main
        estimate_frequencies(func)
        assert func.entry.freq == 1.0


class TestProfileGuided:
    def test_profile_changes_estimates(self):
        program = make_fig7_program(50)
        profiles = collect_branch_profiles(program)
        assert "main" in profiles
        func = program.main
        estimate_frequencies(func, profiles["main"])
        body = _block(func, "body")
        # With the profile, the loop body's relative weight reflects the
        # 50 observed iterations rather than the static guess.
        assert body.freq > 1.0

    def test_profile_probability(self):
        profile = BranchProfile()
        profile.record("b", "hot", 90)
        profile.record("b", "cold", 10)
        assert profile.probability("b", ["hot", "cold"], 0) == 0.9
        assert profile.probability("b", ["hot", "cold"], 1) == 0.1

    def test_unobserved_block_has_no_probability(self):
        profile = BranchProfile()
        assert profile.probability("never", ["a", "b"], 0) is None

    def test_profile_edges_recorded_by_interpreter(self):
        program = make_fig7_program(7)
        profiles = collect_branch_profiles(program)
        edges = profiles["main"].edge_counts
        # 7 iterations: one loop entry plus six back-edge transfers.
        inbound = [count for (src, dst), count in edges.items()
                   if dst.startswith("body")]
        assert sum(inbound) == 7
        assert profiles["main"].block_count(
            [d for (s, d), _ in edges.items() if d.startswith("body")][0]
        ) == 7
