"""Tests for the value-range analysis."""

from repro.analysis import Chains, Interval, TOP, ValueRanges
from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from repro.ir.types import INT32_MAX, INT32_MIN
from repro.machine import IA64


def _ranges_for(build):
    """Build a function with `build(b)` returning the instr to query."""
    program = Program()
    b = build_function(program, "main", [("x", ScalarType.I32)],
                       ScalarType.I32)
    target_reg = build(b)
    b.ret(target_reg)
    func = program.main
    chains = Chains(func)
    ranges = ValueRanges(chains, IA64)
    ret = func.blocks[-1].instrs[-1]
    for block in func.blocks:
        for instr in block.instrs:
            if instr.opcode is Opcode.RET:
                ret = instr
    return ranges.range_of_use(ret, 0)


class TestBasics:
    def test_constant(self):
        assert _ranges_for(lambda b: b.const(42)) == Interval(42, 42)

    def test_negative_constant(self):
        assert _ranges_for(lambda b: b.const(-7)) == Interval(-7, -7)

    def test_param_is_top(self):
        assert _ranges_for(lambda b: b.func.params[0]) == TOP

    def test_cmp_is_boolean(self):
        def build(b):
            return b.cmp(Opcode.CMP32, Cond.LT, b.func.params[0], b.const(5))
        assert build and _ranges_for(build) == Interval(0, 1)

    def test_and_with_positive_constant(self):
        def build(b):
            return b.binop(Opcode.AND32, b.func.params[0], b.const(0xFF))
        assert _ranges_for(build) == Interval(0, 255)

    def test_ushr_by_constant(self):
        def build(b):
            return b.binop(Opcode.USHR32, b.func.params[0], b.const(24))
        assert _ranges_for(build) == Interval(0, 255)

    def test_rem_by_constant(self):
        def build(b):
            return b.binop(Opcode.REM32, b.func.params[0], b.const(10))
        assert _ranges_for(build) == Interval(-9, 9)

    def test_rem_of_nonneg(self):
        def build(b):
            masked = b.binop(Opcode.AND32, b.func.params[0], b.const(0xFFFF))
            return b.binop(Opcode.REM32, masked, b.const(10))
        assert _ranges_for(build) == Interval(0, 9)


class TestArithmetic:
    def test_add_of_constants(self):
        def build(b):
            return b.binop(Opcode.ADD32, b.const(10), b.const(20))
        assert _ranges_for(build) == Interval(30, 30)

    def test_add_overflow_goes_top(self):
        def build(b):
            return b.binop(Opcode.ADD32, b.const(INT32_MAX), b.const(1))
        assert _ranges_for(build) == TOP

    def test_sub_ranges(self):
        def build(b):
            masked = b.binop(Opcode.AND32, b.func.params[0], b.const(0xFF))
            return b.binop(Opcode.SUB32, masked, b.const(1))
        assert _ranges_for(build) == Interval(-1, 254)

    def test_neg(self):
        def build(b):
            masked = b.binop(Opcode.AND32, b.func.params[0], b.const(0x7F))
            return b.unop(Opcode.NEG32, masked)
        assert _ranges_for(build) == Interval(-127, 0)

    def test_mul_bounded(self):
        def build(b):
            masked = b.binop(Opcode.AND32, b.func.params[0], b.const(0xF))
            return b.binop(Opcode.MUL32, masked, b.const(100))
        assert _ranges_for(build) == Interval(0, 1500)

    def test_extend_narrows(self):
        def build(b):
            from repro.ir import Instr
            dest = b.func.new_reg(ScalarType.I32)
            b.mov(b.func.params[0], dest)
            b.emit(Instr(Opcode.EXTEND8, dest, (dest,)))
            return dest
        assert _ranges_for(build) == Interval(-128, 127)


class TestLoops:
    def _counter_loop(self, guarded: bool):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.ADD32, i, one, i)
        if guarded:
            limit = b.const(10)
            cond = b.cmp(Opcode.CMP32, Cond.LT, i, limit)
        else:
            # Exit condition unrelated to i: no bound on the counter.
            cond = b.cmp(Opcode.CMP32, Cond.LT, b.func.params[0], one)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        func = program.main
        chains = Chains(func)
        ranges = ValueRanges(chains, IA64)
        ret = [instr for _, instr in func.instructions()
               if instr.opcode is Opcode.RET][0]
        return ranges.range_of_use(ret, 0)

    def test_guarded_counter_is_bounded(self):
        """The guarded-induction-variable rule: i in a
        do { i++ } while (i < 10) loop is bounded by the guard."""
        interval = self._counter_loop(guarded=True)
        assert not interval.is_top
        assert interval.lo >= 0
        assert interval.hi <= 10

    def test_unguarded_counter_is_top(self):
        """Without a bounding guard on the cycle, conservative TOP."""
        assert self._counter_loop(guarded=False) == TOP

    def test_count_down_guarded(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        i = b.func.named_reg("i", ScalarType.I32)
        hundred = b.const(100)
        one = b.const(1)
        zero = b.const(0)
        b.mov(hundred, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.SUB32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.GT, i, zero)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        func = program.main
        chains = Chains(func)
        ranges = ValueRanges(chains, IA64)
        ret = [instr for _, instr in func.instructions()
               if instr.opcode is Opcode.RET][0]
        interval = ranges.range_of_use(ret, 0)
        assert not interval.is_top
        assert interval.lo >= -1  # exits at 0; bound is conservative
        assert interval.hi <= 100


class TestInterval:
    def test_union(self):
        assert Interval(0, 5).union(Interval(-3, 2)) == Interval(-3, 5)

    def test_within(self):
        assert Interval(0, 10).within(0, INT32_MAX)
        assert not Interval(-1, 10).within(0, INT32_MAX)

    def test_top_detection(self):
        assert TOP.is_top
        assert not Interval(INT32_MIN, 0).is_top


class TestConstOracle:
    def test_const_of_use(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        c = b.const(77)
        result = b.binop(Opcode.ADD32, c, c)
        b.ret(result)
        func = program.main
        chains = Chains(func)
        ranges = ValueRanges(chains, IA64)
        add = [i for _, i in func.instructions()
               if i.opcode is Opcode.ADD32][0]
        assert ranges.const_of_use(add, 0) == 77
        assert ranges.const_of_use(add, 1) == 77
