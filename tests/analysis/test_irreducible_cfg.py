"""Irreducible control flow: the analyses must stay conservative and
the pipeline must stay sound.

Natural-loop detection only recognizes single-entry loops; a
multi-entry (irreducible) cycle has no back edge dominated by a header,
so loop depth stays 0 and the induction/frequency machinery must not
claim anything about it.
"""

from repro.analysis import Chains, DominatorTree, LoopForest, TOP, ValueRanges
from repro.analysis.frequency import estimate_frequencies
from repro.core import VARIANTS, compile_ir
from repro.ir import Opcode
from repro.ir.parser import parse_program
from repro.machine import IA64
from tests.conftest import run_ideal, run_machine

# Two blocks jumping into each other, each reachable from the entry:
# a classic irreducible region.
_IRREDUCIBLE = """
func @main(i32) -> i32 params(%p) {
entry:
  %i = const.i32 0
  %one = const.i32 1
  %ten = const.i32 10
  %zero = const.i32 0
  %c = cmp32.ne %p, %zero
  br %c, ->left, ->right
left:
  %i = add32 %i, %one
  %cl = cmp32.lt %i, %ten
  br %cl, ->right, ->done
right:
  %i = add32 %i, %one
  %cr = cmp32.lt %i, %ten
  br %cr, ->left, ->done
done:
  ret %i
}
"""


def _program():
    return parse_program(_IRREDUCIBLE)


class TestAnalysesStayConservative:
    def test_no_natural_loops_detected(self):
        func = _program().main
        forest = LoopForest(func)
        assert forest.loops == []
        assert all(block.loop_depth == 0 for block in func.blocks)

    def test_dominators_well_defined(self):
        func = _program().main
        tree = DominatorTree(func)
        left = func.block("left")
        right = func.block("right")
        done = func.block("done")
        assert tree.immediate_dominator(left) is func.entry
        assert tree.immediate_dominator(right) is func.entry
        assert tree.immediate_dominator(done) is func.entry

    def test_induction_range_refuses_unguardable_cycle(self):
        # Two step instructions for %i (one per block) mean no single
        # step definition: ranges must be TOP, never a wrong interval.
        func = _program().main
        chains = Chains(func)
        ranges = ValueRanges(chains, IA64)
        ret = [i for _, i in func.instructions()
               if i.opcode is Opcode.RET][0]
        assert ranges.range_of_use(ret, 0) == TOP

    def test_frequency_estimation_terminates(self):
        func = _program().main
        estimate_frequencies(func)
        assert all(block.freq > 0 for block in func.blocks)


class TestPipelineSoundOnIrreducible:
    def test_all_variants_equivalent(self):
        program = _program()
        for args in ((0,), (1,)):
            gold = run_ideal(program, args=args)
            for name, config in VARIANTS.items():
                compiled = compile_ir(program, config)
                run = run_machine(compiled.program, args=args)
                assert run.observable() == gold.observable(), (name, args)
