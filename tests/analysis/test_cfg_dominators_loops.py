"""Tests for CFG orders, dominators, and loop detection."""

from repro.analysis import (
    DominatorTree,
    LoopForest,
    depth_first_order,
    postorder,
    reverse_depth_first_order,
    reverse_postorder,
)
from repro.ir import Cond, Instr, Opcode, Program, ScalarType, build_function
from tests.conftest import make_fig7_program


def _block_by_prefix(func, prefix):
    for block in func.blocks:
        if block.label.startswith(prefix):
            return block
    raise KeyError(prefix)


def _diamond():
    """entry -> (left | right) -> join."""
    program = Program()
    b = build_function(program, "main", [], ScalarType.I32)
    zero = b.const(0)
    one = b.const(1)
    left = b.block("left")
    right = b.block("right")
    join = b.block("join")
    cond = b.cmp(Opcode.CMP32, Cond.LT, zero, one)
    b.br(cond, left, right)
    b.switch(left)
    b.jmp(join)
    b.switch(right)
    b.jmp(join)
    b.switch(join)
    b.ret(one)
    return program.main, left, right, join


class TestOrders:
    def test_rpo_entry_first(self):
        func, *_ = _diamond()
        order = reverse_postorder(func)
        assert order[0] is func.entry
        assert order[-1].label.startswith("join")

    def test_postorder_entry_last(self):
        func, *_ = _diamond()
        order = postorder(func)
        assert order[-1] is func.entry

    def test_every_block_once(self):
        func = make_fig7_program(3).main
        for order_fn in (depth_first_order, postorder, reverse_postorder,
                         reverse_depth_first_order):
            order = order_fn(func)
            assert len(order) == len(func.blocks)
            assert len({b.label for b in order}) == len(func.blocks)

    def test_dfs_preorder_parent_before_child(self):
        func, left, right, join = _diamond()
        order = depth_first_order(func)
        positions = {b.label: i for i, b in enumerate(order)}
        assert positions[func.entry.label] < positions[left.label]
        assert positions[left.label] < positions[join.label]


class TestDominators:
    def test_entry_dominates_all(self):
        func, left, right, join = _diamond()
        tree = DominatorTree(func)
        for block in func.blocks:
            assert tree.dominates(func.entry, block)

    def test_branches_do_not_dominate_join(self):
        func, left, right, join = _diamond()
        tree = DominatorTree(func)
        assert not tree.dominates(left, join)
        assert not tree.dominates(right, join)
        assert tree.immediate_dominator(join) is func.entry

    def test_self_domination(self):
        func, left, *_ = _diamond()
        tree = DominatorTree(func)
        assert tree.dominates(left, left)

    def test_loop_header_dominates_itself_and_body(self):
        func = make_fig7_program(3).main
        tree = DominatorTree(func)
        body = _block_by_prefix(func, "body")
        entry = func.entry
        assert tree.dominates(entry, body)
        assert tree.dominates(body, body)


class TestLoops:
    def test_fig7_has_two_loops(self):
        func = make_fig7_program(3).main
        forest = LoopForest(func)
        assert len(forest.loops) == 2
        headers = {loop.header.label for loop in forest.loops}
        assert any(h.startswith("fill") for h in headers)
        assert any(h.startswith("body") for h in headers)

    def test_loop_depth_assignment(self):
        func = make_fig7_program(3).main
        LoopForest(func)
        assert _block_by_prefix(func, "body").loop_depth == 1
        assert func.entry.loop_depth == 0

    def test_nested_loops(self):
        program = Program()
        b = build_function(program, "main", [], None)
        i = b.func.named_reg("i", ScalarType.I32)
        j = b.func.named_reg("j", ScalarType.I32)
        zero = b.const(0)
        one = b.const(1)
        three = b.const(3)
        b.mov(zero, i)
        outer = b.block("outer")
        inner = b.block("inner")
        after_inner = b.block("after_inner")
        done = b.block("done")
        b.jmp(outer)
        b.switch(outer)
        b.mov(zero, j)
        b.jmp(inner)
        b.switch(inner)
        b.binop(Opcode.ADD32, j, one, j)
        c1 = b.cmp(Opcode.CMP32, Cond.LT, j, three)
        b.br(c1, inner, after_inner)
        b.switch(after_inner)
        b.binop(Opcode.ADD32, i, one, i)
        c2 = b.cmp(Opcode.CMP32, Cond.LT, i, three)
        b.br(c2, outer, done)
        b.switch(done)
        b.ret()
        forest = LoopForest(program.main)
        assert len(forest.loops) == 2
        inner_loop = forest.loop_of(inner)
        assert inner_loop is not None
        assert inner_loop.depth == 2
        assert inner_loop.parent is not None
        assert inner_loop.parent.header is outer
        assert inner.loop_depth == 2
        assert outer.loop_depth == 1
