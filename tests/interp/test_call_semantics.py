"""Call-boundary semantics: arity, void misuse, recursion depth."""

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, Trap
from repro.ir import Instr, Opcode, Program, ScalarType, build_function


class TestCallChecks:
    def test_arity_mismatch_traps(self):
        program = Program()
        callee = build_function(program, "f", [("x", ScalarType.I32)],
                                ScalarType.I32)
        callee.ret(callee.func.params[0])
        interp = Interpreter(program)
        with pytest.raises(Trap, match="arity"):
            interp.run("f", args=())

    def test_void_result_assigned_traps(self):
        program = Program()
        callee = build_function(program, "f", [], None)
        callee.ret()
        b = build_function(program, "main", [], ScalarType.I32)
        dest = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.CALL, dest, (), callee="f"))
        b.ret(dest)
        with pytest.raises(Trap, match="void"):
            Interpreter(program).run()

    def test_arguments_passed_by_value(self):
        program = compile_source("""
            void mutate(int x) { x = 999; }
            int main() { int v = 5; mutate(v); return v; }
        """)
        assert Interpreter(program, mode="ideal").run().ret_value == 5

    def test_arrays_passed_by_reference(self):
        program = compile_source("""
            void fill(int[] a) { a[0] = 42; }
            int main() { int[] a = new int[1]; fill(a); return a[0]; }
        """)
        assert Interpreter(program, mode="ideal").run().ret_value == 42

    def test_moderate_recursion_depth(self):
        program = compile_source("""
            int depth(int n) {
                if (n == 0) { return 0; }
                return 1 + depth(n - 1);
            }
            int main() { return depth(200); }
        """)
        assert Interpreter(program, mode="ideal").run().ret_value == 200

    def test_mutual_recursion(self):
        program = compile_source("""
            int isEven(int n) {
                if (n == 0) { return 1; }
                return isOdd(n - 1);
            }
            int isOdd(int n) {
                if (n == 0) { return 0; }
                return isEven(n - 1);
            }
            int main() { return isEven(10) * 10 + isOdd(7); }
        """)
        assert Interpreter(program, mode="ideal").run().ret_value == 11

    def test_non_main_entry_point(self):
        program = compile_source("""
            int triple(int x) { return x * 3; }
            void main() { }
        """)
        result = Interpreter(program, mode="ideal").run("triple", (14,))
        assert result.ret_value == 42


class TestAbiCanonicality:
    def test_machine_mode_args_flow_raw(self):
        """Machine mode copies raw 64-bit registers at calls; the
        callee's converted body relies on the ABI having canonicalized
        them — which the caller-side extension (kept by elimination
        because CALL args REQUIRE canonical values) guarantees."""
        from repro.core import VARIANTS, compile_ir

        program = compile_source("""
            double toD(int x) { return (double) x; }
            double main() {
                int big = 2147483647;
                big = big + big;   // overflows: needs canonicalization
                double d = toD(big);
                sinkd(d);
                return d;
            }
        """)
        gold = Interpreter(program, mode="ideal").run()
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = Interpreter(compiled.program).run()
        assert run.observable() == gold.observable()
        assert run.ret_value == -2.0
