"""Unit tests for the simulated heap."""

import pytest

from repro.interp.memory import (
    ArrayObject,
    Heap,
    MAX_ALLOC_ELEMENTS,
    MemoryFault,
    Trap,
)
from repro.ir.types import ScalarType


class TestAllocation:
    def test_references_are_sequential_nonzero(self):
        heap = Heap()
        first = heap.allocate(ScalarType.I32, 4)
        second = heap.allocate(ScalarType.F64, 2)
        assert first == 1
        assert second == 2

    def test_zero_initialized(self):
        heap = Heap()
        ref = heap.allocate(ScalarType.I32, 3)
        array = heap.deref(ref)
        assert array.cells == [0, 0, 0]
        fref = heap.allocate(ScalarType.F64, 2)
        assert heap.deref(fref).cells == [0.0, 0.0]

    def test_negative_size(self):
        with pytest.raises(Trap, match="NegativeArraySize"):
            Heap().allocate(ScalarType.I32, -1)

    def test_oversized(self):
        with pytest.raises(Trap, match="OutOfMemory"):
            Heap().allocate(ScalarType.I8, MAX_ALLOC_ELEMENTS + 1)

    def test_zero_length_allowed(self):
        heap = Heap()
        ref = heap.allocate(ScalarType.I32, 0)
        assert heap.deref(ref).length == 0


class TestDeref:
    def test_null(self):
        with pytest.raises(Trap, match="NullPointer"):
            Heap().deref(0)

    def test_dangling(self):
        with pytest.raises(MemoryFault, match="dangling"):
            Heap().deref(42)


class TestCheckedIndex:
    def _array(self, length=8):
        heap = Heap()
        ref = heap.allocate(ScalarType.I32, length)
        return heap, heap.deref(ref)

    def test_in_range(self):
        heap, array = self._array()
        assert heap.checked_index(array, 5) == 5

    def test_unsigned_compare_catches_negative(self):
        heap, array = self._array()
        with pytest.raises(Trap, match="ArrayIndexOutOfBounds"):
            heap.checked_index(array, 0xFFFF_FFFF_FFFF_FFFF)  # -1

    def test_too_large(self):
        heap, array = self._array()
        with pytest.raises(Trap, match="ArrayIndexOutOfBounds"):
            heap.checked_index(array, 8)

    def test_wild_upper_bits_fault(self):
        heap, array = self._array()
        with pytest.raises(MemoryFault, match="effective address"):
            heap.checked_index(array, (1 << 32) | 3)

    def test_zero_length_rejects_everything(self):
        heap = Heap()
        array = heap.deref(heap.allocate(ScalarType.I32, 0))
        with pytest.raises(Trap):
            heap.checked_index(array, 0)


class TestStoreWidths:
    @pytest.mark.parametrize("elem,value,stored", [
        (ScalarType.I8, 0x1FF, 0xFF),
        (ScalarType.I16, 0x12345, 0x2345),
        (ScalarType.U16, -1, 0xFFFF),
        (ScalarType.I32, -1, 0xFFFF_FFFF),
        (ScalarType.I64, -1, 0xFFFF_FFFF_FFFF_FFFF),
    ])
    def test_truncation(self, elem, value, stored):
        heap = Heap()
        array = heap.deref(heap.allocate(elem, 1))
        heap.store(array, 0, value)
        assert heap.load_raw(array, 0) == stored

    def test_float_store(self):
        heap = Heap()
        array = heap.deref(heap.allocate(ScalarType.F64, 1))
        heap.store(array, 0, 2.5)
        assert heap.load_raw(array, 0) == 2.5

    def test_array_object_repr_fields(self):
        array = ArrayObject(ScalarType.I16, 4)
        assert array.length == 4
        assert array.elem is ScalarType.I16
