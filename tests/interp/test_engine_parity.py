"""Engine parity: the translated engines must be bit-identical everywhere.

Every registry workload, a compiled-variant grid over both machine
models, a 50-seed generated-program batch, and a set of crafted trap
programs all run through all three engines (reference, closure,
codegen).  Successful runs must produce equal ``ExecResult`` values
(checksum, return value, steps, site/opcode/extend counts, branch
profiles); failed runs must raise the same exception type with the
same message.  Step counts of failed runs are deliberately not
compared — the translated engines only track fuel at segment
granularity on exception paths (see docs/INTERPRETER.md).
"""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import create_interpreter
from repro.interp.memory import SimError
from repro.interp.profiler import collect_branch_profiles
from repro.machine import IA64, PPC64
from repro.testing import generate_program
from repro.workloads import all_workloads

#: Cap long workloads; hitting the cap still checks the fuel path.
FUEL = 250_000

WORKLOADS = all_workloads()

#: Variant subset for the per-variant grid (CI's ``bench --engine
#: both`` covers all twelve on the full workload registry).
GRID_VARIANTS = ("baseline", "insert, order", "new algorithm (all)")


def _outcome(program, engine, func="main", args=(), **kwargs):
    interp = create_interpreter(program, engine=engine, **kwargs)
    try:
        return ("ok", interp.run(func, args))
    except SimError as exc:
        return (type(exc).__name__, str(exc))


def assert_parity(program, func="main", args=(), **kwargs):
    reference = _outcome(program, "reference", func, args, **kwargs)
    closure = _outcome(program, "closure", func, args, **kwargs)
    codegen = _outcome(program, "codegen", func, args, **kwargs)
    assert closure == reference
    assert codegen == reference


class TestWorkloadParity:
    @pytest.mark.parametrize("mode", ["ideal", "machine"])
    @pytest.mark.parametrize("workload", WORKLOADS,
                             ids=[w.name for w in WORKLOADS])
    def test_source_program(self, workload, mode):
        assert_parity(workload.program(), mode=mode, fuel=FUEL)

    @pytest.mark.parametrize("workload_name", ["huffman", "bitfield"])
    def test_profiled_run(self, workload_name):
        from repro.workloads import get_workload

        program = get_workload(workload_name).program()
        assert_parity(program, mode="ideal", fuel=FUEL,
                      collect_profile=True)

    @pytest.mark.parametrize("workload_name", ["huffman", "bitfield"])
    def test_profiler_entry_point(self, workload_name):
        from repro.workloads import get_workload

        program = get_workload(workload_name).program()
        by_engine = [
            collect_branch_profiles(program, fuel=FUEL, engine=engine)
            for engine in ("reference", "closure", "codegen", "both")
        ]
        assert all(b == by_engine[0] for b in by_engine[1:])


class TestZeroOverheadContract:
    """Profiling must cost nothing when it is off.

    The profile subsystem (PR 6) derives block entry counts from the
    ``site_counts`` both engines already maintain, so with
    ``collect_profile`` off there is no new per-instruction work and
    the ``ExecResult`` surface must stay exactly the seed's: the same
    seven fields, bit-identical values.
    """

    #: The seed's result surface.  Growing this tuple means every
    #: engine-parity comparison pays for the new field on every run —
    #: extend the profile artifact instead (docs/PROFILING.md).
    SEED_FIELDS = ("checksum", "ret_value", "steps", "extend_counts",
                   "site_counts", "opcode_counts", "profiles")

    def test_exec_result_fields_unchanged(self):
        import dataclasses

        from repro.interp.interpreter import ExecResult

        names = tuple(f.name for f in dataclasses.fields(ExecResult))
        assert names == self.SEED_FIELDS

    @pytest.mark.parametrize("engine",
                             ["reference", "closure", "codegen"])
    def test_unprofiled_run_collects_no_entries(self, engine):
        from repro.workloads import get_workload

        program = get_workload("huffman").program()
        interp = create_interpreter(program, engine=engine, mode="ideal",
                                    fuel=FUEL)
        interp.run()
        assert interp.block_entries == {}

    @pytest.mark.parametrize("engine",
                             ["reference", "closure", "codegen"])
    def test_profiling_changes_only_profiles(self, engine):
        """Every pre-existing field is identical with profiling on."""
        from repro.workloads import get_workload

        program = get_workload("huffman").program()
        plain = create_interpreter(program, engine=engine, mode="ideal",
                                   fuel=FUEL).run()
        profiled = create_interpreter(program, engine=engine, mode="ideal",
                                      fuel=FUEL,
                                      collect_profile=True).run()
        assert profiled.checksum == plain.checksum
        assert profiled.ret_value == plain.ret_value
        assert profiled.steps == plain.steps
        assert profiled.extend_counts == plain.extend_counts
        assert profiled.site_counts == plain.site_counts
        assert profiled.opcode_counts == plain.opcode_counts
        assert not plain.profiles and profiled.profiles

    def test_engine_native_counters_agree(self):
        """All engines' own per-block counters are identical."""
        from repro.workloads import get_workload

        program = get_workload("huffman").program()
        counters = []
        for engine in ("reference", "closure", "codegen"):
            interp = create_interpreter(program, engine=engine,
                                        mode="ideal", fuel=FUEL,
                                        collect_profile=True)
            interp.run()
            counters.append({
                name: dict(blocks)
                for name, blocks in interp.block_entries.items() if blocks
            })
        assert counters[0] == counters[1] == counters[2]


class TestCompiledVariantParity:
    @pytest.mark.parametrize("traits", [IA64, PPC64],
                             ids=lambda t: t.name)
    @pytest.mark.parametrize("variant", GRID_VARIANTS)
    def test_huffman_grid(self, variant, traits):
        from repro.workloads import get_workload

        program = get_workload("huffman").program()
        profiles = collect_branch_profiles(program, fuel=FUEL)
        compiled = compile_ir(program, VARIANTS[variant].with_traits(traits),
                              profiles)
        assert_parity(compiled.program, mode="machine", traits=traits,
                      fuel=FUEL)


class TestGeneratedProgramParity:
    @pytest.mark.parametrize("seed", range(50))
    def test_seed(self, seed):
        program = compile_source(generate_program(seed), f"gen{seed}")
        assert_parity(program, mode="ideal", fuel=200_000)
        assert_parity(program, mode="machine", fuel=200_000)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        assert_parity(compiled.program, mode="machine", fuel=200_000)


class TestTrapParity:
    """Crafted programs whose trap/fault messages must match exactly."""

    @pytest.mark.parametrize("source", [
        "int main() { int a = 7; int b = 0; return a / b; }",
        "int main() { int a = 7; int b = 0; return a % b; }",
        "int main() { int[] a = new int[4]; return a[10]; }",
        "int main() { int[] a = new int[4]; return a[0 - 1]; }",
        "int main() { int[] a = new int[0 - 3]; return 0; }",
        """
        int boom(int n) { return boom(n + 1); }
        int main() { return boom(0); }
        """,
    ], ids=["div-zero", "mod-zero", "index-high", "index-negative",
            "negative-length", "stack-overflow"])
    @pytest.mark.parametrize("mode", ["ideal", "machine"])
    def test_source_level_trap(self, source, mode):
        assert_parity(compile_source(source), mode=mode, fuel=100_000)

    @pytest.mark.parametrize("mode", ["ideal", "machine"])
    def test_null_array_access(self, mode):
        from repro.ir import Program, ScalarType, build_function

        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        null = b.const(0, ScalarType.REF)
        b.ret(b.aload(null, b.const(0), ScalarType.I32))
        assert_parity(program, mode=mode)

    @pytest.mark.parametrize("mode", ["ideal", "machine"])
    def test_dangling_array_reference(self, mode):
        from repro.ir import Program, ScalarType, build_function

        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        dangling = b.const(5, ScalarType.REF)  # nothing allocated
        b.ret(b.aload(dangling, b.const(0), ScalarType.I32))
        assert_parity(program, mode=mode)

    @pytest.mark.parametrize("fuel", [0, 1, 7, 50])
    def test_fuel_exhaustion_messages(self, fuel):
        program = compile_source("""
            int main() {
                int i = 0;
                while (i < 1000) { i = i + 1; }
                return i;
            }
        """)
        assert_parity(program, mode="ideal", fuel=fuel)
