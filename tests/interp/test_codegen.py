"""The codegen tier: generated source, fusion, layout, and its cache.

Cross-engine bit-parity lives in ``test_engine_parity.py`` (every
parity assertion there now covers codegen).  This file tests what is
*specific* to the generated-code tier: the shape and debuggability of
the emitted source, superinstruction fusion, fuel-segment replay,
profile-guided layout equivalence, cache behaviour (hits, negative
caching, shared function objects), and the per-function fallback.
"""

import linecache

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import (
    CodegenCache,
    create_interpreter,
    generate_source,
    order_blocks,
)
from repro.interp.codegen import compile_generated
from repro.interp.engine import CodegenInterpreter
from repro.interp.memory import SimError
from repro.interp.profiler import collect_branch_profiles
from repro.interp.translate import normalize_layout, translate_function
from repro.machine import IA64
from repro.workloads import get_workload

FUEL = 250_000


def _outcome(program, engine, **kwargs):
    interp = create_interpreter(program, engine=engine, **kwargs)
    try:
        return ("ok", interp.run("main", ()))
    except SimError as exc:
        return (type(exc).__name__, str(exc))


COUNTING = compile_source("""
    int main() {
        int acc = 0;
        for (int i = 0; i < 50; i = i + 1) {
            acc = acc + i * 3;
        }
        return acc;
    }
""", "counting")


class TestGeneratedSource:
    def test_source_shape(self):
        func = COUNTING.function("main")
        source = generate_source(func, ideal=True, traits=IA64)
        assert "def _f(st, args):" in source
        assert "while True:" in source
        # registers are locals, not list subscripts
        assert "regs[" not in source
        # annotations for the debug dump
        assert "# function: main" in source
        assert "# block order" in source
        assert "# fused superinstructions:" in source

    def test_fusion_annotations_present(self):
        func = COUNTING.function("main")
        source = generate_source(func, ideal=True, traits=IA64)
        assert "# fused into next:" in source

    def test_mode_burned_in(self):
        func = COUNTING.function("main")
        ideal = generate_source(func, ideal=True, traits=IA64)
        machine = generate_source(func, ideal=False, traits=IA64)
        assert "# mode: ideal" in ideal
        assert "# mode: machine" in machine
        assert ideal != machine

    def test_generated_frames_are_linecache_visible(self):
        """Tracebacks out of generated code must show real lines."""
        program = get_workload("huffman").program()
        interp = create_interpreter(program, engine="codegen",
                                    codegen_cache=CodegenCache())
        generated = interp.codegen_cache._entries
        assert generated, "nothing was generated"
        entry = next(v for v in generated.values() if v is not None)
        cached = linecache.cache.get(entry.filename)
        assert cached is not None
        assert "".join(cached[2]) == entry.source
        assert entry.filename.startswith("<repro-codegen:")


class TestFuelSegments:
    """The generated fuel pre-checks replay exactly like the closure's."""

    @pytest.mark.parametrize("fuel", list(range(0, 60)) + [500, 1234])
    def test_fuel_sweep(self, fuel):
        ref = _outcome(COUNTING, "reference", mode="ideal", fuel=fuel)
        cg = _outcome(COUNTING, "codegen", mode="ideal", fuel=fuel)
        assert cg == ref

    @pytest.mark.parametrize("fuel", [1, 5, 17, 80, 333])
    def test_fuel_sweep_with_calls(self, fuel):
        program = compile_source("""
            int add(int a, int b) { return a + b; }
            int main() {
                int acc = 0;
                for (int i = 0; i < 40; i = i + 1) {
                    acc = add(acc, i);
                }
                return acc;
            }
        """)
        ref = _outcome(program, "reference", mode="machine", fuel=fuel)
        cg = _outcome(program, "codegen", mode="machine", fuel=fuel)
        assert cg == ref

    def test_trap_beats_fuel_in_replayed_segment(self):
        """An op replayed by the fuel-out path may trap first; the trap
        must win, exactly as in the reference."""
        program = compile_source("""
            int main() {
                int a = 7;
                int b = 0;
                return a / b;
            }
        """)
        for fuel in range(0, 8):
            ref = _outcome(program, "reference", mode="ideal", fuel=fuel)
            cg = _outcome(program, "codegen", mode="ideal", fuel=fuel)
            assert cg == ref


class TestProfileGuidedLayout:
    def test_layout_changes_emission_order_not_results(self):
        program = get_workload("huffman").program()
        profiles = collect_branch_profiles(program, fuel=FUEL)
        layouts = {
            name: dict(profile.edge_counts)
            for name, profile in profiles.items() if profile.edge_counts
        }
        plain = _outcome(program, "codegen", mode="ideal", fuel=FUEL)
        guided = _outcome(program, "codegen", mode="ideal", fuel=FUEL,
                          layout_profiles=layouts)
        closure_guided = _outcome(program, "closure", mode="ideal",
                                  fuel=FUEL, layout_profiles=layouts)
        assert plain == guided == closure_guided

    def test_order_blocks_moves_hot_successor(self):
        program = compile_source("""
            int main() {
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { acc = acc + 1; }
                    else { acc = acc + 2; }
                }
                return acc;
            }
        """)
        func = program.function("main")
        labels = [block.label for block in func.blocks]
        # fake profile: the last block is the hottest successor of entry
        layout = order_blocks(func, {(labels[0], labels[-1]): 100})
        assert layout is not None
        assert layout[0] == labels[0]
        assert layout[1] == labels[-1]

    def test_stale_profile_degrades_to_source_order(self):
        func = COUNTING.function("main")
        layout = order_blocks(func, {("nope", "missing"): 50})
        assert layout is None
        assert normalize_layout(func, ("nope", "missing")) is None

    def test_layout_annotated_in_source(self):
        program = get_workload("huffman").program()
        profiles = collect_branch_profiles(program, fuel=FUEL)
        name, profile = next(
            (n, p) for n, p in profiles.items() if p.edge_counts
        )
        func = program.function(name)
        layout = order_blocks(func, dict(profile.edge_counts))
        source = generate_source(func, ideal=True, traits=IA64,
                                 layout=layout)
        if layout is not None:
            assert "profile-guided" in source
        else:
            assert "source order" in source


class TestCodegenCache:
    def test_cache_hits_across_interpreters(self):
        cache = CodegenCache()
        program = COUNTING
        create_interpreter(program, engine="codegen", codegen_cache=cache)
        misses = cache.misses
        assert misses > 0 and cache.hits == 0
        create_interpreter(program, engine="codegen", codegen_cache=cache)
        assert cache.misses == misses
        assert cache.hits == misses

    def test_shared_function_objects(self):
        """Content-pure generated code: one compiled object per content."""
        cache = CodegenCache()
        a = create_interpreter(COUNTING, engine="codegen",
                               codegen_cache=cache)
        b = create_interpreter(COUNTING, engine="codegen",
                               codegen_cache=cache)
        assert a._generated["main"] is b._generated["main"]
        assert a.run("main", ()) == b.run("main", ())

    def test_profiled_entries_are_distinct(self):
        """Profiled frames carry edge-recording code, so the cache must
        not serve an unprofiled entry to a profiling interpreter."""
        cache = CodegenCache()
        create_interpreter(COUNTING, engine="codegen", codegen_cache=cache)
        create_interpreter(COUNTING, engine="codegen", codegen_cache=cache,
                           collect_profile=True)
        assert cache.hits == 0
        assert len(cache._entries) == 2 * len(COUNTING.functions)

    def test_stats_keys(self):
        stats = CodegenCache().stats()
        assert set(stats) == {"translate.codegen.hits",
                              "translate.codegen.misses",
                              "translate.codegen.entries"}

    def test_negative_caching(self, monkeypatch):
        """A function the emitter rejects is cached as None — the
        fallback is not retried on the next interpreter."""
        from repro.interp import codegen as codegen_mod

        cache = CodegenCache()

        def boom(*args, **kwargs):
            raise codegen_mod.Untranslatable("forced")

        monkeypatch.setattr(codegen_mod, "compile_generated", boom)
        monkeypatch.setattr("repro.interp.codegen.CodegenCache"
                            ".get_or_generate",
                            CodegenCache.get_or_generate)
        interp = create_interpreter(COUNTING, engine="codegen",
                                    codegen_cache=cache)
        assert interp.generated_functions == 0
        assert interp.codegen_fallback_functions == len(COUNTING.functions)
        misses = cache.misses
        # negative entries now serve as hits; no recompilation attempt
        interp2 = create_interpreter(COUNTING, engine="codegen",
                                     codegen_cache=cache)
        assert cache.misses == misses
        assert interp2.codegen_fallback_functions == len(COUNTING.functions)
        # and the engine still runs correctly through the closure tier
        assert interp2.run("main", ()).ret_value == \
            _outcome(COUNTING, "reference", mode="ideal")[1].ret_value

    def test_lru_eviction(self):
        cache = CodegenCache(capacity=1)
        program = compile_source(
            "int main() { return 1; } int other() { return 2; }"
        )
        create_interpreter(program, engine="codegen", codegen_cache=cache)
        assert len(cache._entries) == 1


class TestFallback:
    def test_untranslatable_function_uses_closure_tier(self):
        """A function the closure translator rejects never reaches the
        emitter; one the emitter rejects keeps the closure tier.  Either
        way results are bit-identical."""
        program = get_workload("huffman").program()
        cache = CodegenCache()
        interp = create_interpreter(program, engine="codegen",
                                    codegen_cache=cache)
        assert isinstance(interp, CodegenInterpreter)
        assert interp.generated_functions == len(interp._translated)

    def test_compile_generated_matches_translation(self):
        """compile_generated refuses a translation whose segmentation
        does not describe the function it was handed."""
        from repro.interp.translate import Untranslatable

        main = COUNTING.function("main")
        other_program = compile_source("""
            int f(int x) { return x + 1; }
            int main() { return f(1) + f(2); }
        """)
        mismatched = translate_function(
            other_program.function("main"), ideal=True, traits=IA64
        )
        with pytest.raises(Untranslatable):
            compile_generated(main, mismatched, ideal=True, traits=IA64,
                              check_dummies=True, profiled=False,
                              layout=None)


class TestCompiledGridParity:
    """Codegen across the compiled variant grid (both machines is
    covered by test_engine_parity's grid, which is three-way now)."""

    @pytest.mark.parametrize("variant", ["baseline", "new algorithm (all)"])
    def test_bitfield_grid(self, variant):
        program = get_workload("bitfield").program()
        profiles = collect_branch_profiles(program, fuel=FUEL)
        compiled = compile_ir(program,
                              VARIANTS[variant].with_traits(IA64), profiles)
        ref = _outcome(compiled.program, "reference", mode="machine",
                       traits=IA64, fuel=FUEL)
        cg = _outcome(compiled.program, "codegen", mode="machine",
                      traits=IA64, fuel=FUEL)
        assert cg == ref
