"""Unit tests for the closure-compiled execution engine.

Parity over whole workloads lives in test_engine_parity.py; this file
exercises the engine machinery itself: depth limits, result snapshots,
fallback, translation-cache sharing, fuel boundaries, engine selection,
and runtime telemetry.
"""

import pytest

from repro.frontend import compile_source
from repro.interp import (
    DEFAULT_MAX_CALL_DEPTH,
    ClosureInterpreter,
    EngineParityError,
    Interpreter,
    TranslationCache,
    create_interpreter,
    execute,
)
from repro.interp.memory import FuelExhausted, MemoryFault, Trap
from repro.ir import Instr, Opcode, Program, ScalarType, build_function
from repro.telemetry import Telemetry

ENGINES = ("reference", "closure")


def _recursion_program(depth: int) -> Program:
    return compile_source(
        """
        int down(int n) {
            if (n == 0) { return 0; }
            return 1 + down(n - 1);
        }
        int main() { return down(%d); }
        """
        % depth
    )


_LOOP_SOURCE = """
    int main() {
        int s = 0;
        int i = 0;
        while (i < 6) {
            s = s + i * i;
            i = i + 1;
        }
        sink(s);
        return s;
    }
"""


class _RefusingCache(TranslationCache):
    """A translation cache that refuses selected (or all) functions."""

    def __init__(self, refuse: frozenset | None = None) -> None:
        super().__init__()
        self._refuse = refuse

    def get_or_translate(self, func, **kwargs):
        if self._refuse is None or func.name in self._refuse:
            return None
        return super().get_or_translate(func, **kwargs)


class TestCallDepthLimit:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_trips_with_exact_message(self, engine):
        program = _recursion_program(500)
        interp = create_interpreter(program, engine=engine, mode="ideal",
                                    max_call_depth=64)
        with pytest.raises(Trap) as excinfo:
            interp.run()
        assert str(excinfo.value) == \
            "StackOverflowError: call depth exceeded 64 frames"

    def test_both_engines_trip_identically(self):
        program = _recursion_program(500)
        messages = []
        for engine in ENGINES:
            interp = create_interpreter(program, engine=engine,
                                        mode="ideal", max_call_depth=64)
            with pytest.raises(Trap) as excinfo:
                interp.run()
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_recursion_within_limit_succeeds(self, engine):
        program = _recursion_program(40)
        interp = create_interpreter(program, engine=engine, mode="ideal",
                                    max_call_depth=64)
        assert interp.run().ret_value == 40

    @pytest.mark.parametrize("engine", ENGINES)
    def test_default_limit_traps_before_recursionerror(self, engine):
        """Runaway recursion surfaces as a guest Trap, never as a host
        RecursionError escaping the interpreter."""
        program = _recursion_program(100_000)
        interp = create_interpreter(program, engine=engine, mode="ideal")
        with pytest.raises(Trap) as excinfo:
            interp.run()
        assert str(excinfo.value) == (
            f"StackOverflowError: call depth exceeded "
            f"{DEFAULT_MAX_CALL_DEPTH} frames"
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_depth_restored_after_trap(self, engine):
        """A caught depth trap leaves the interpreter reusable."""
        program = _recursion_program(500)
        interp = create_interpreter(program, engine=engine, mode="ideal",
                                    max_call_depth=64)
        with pytest.raises(Trap):
            interp.run()
        assert interp.call_depth == 0
        assert interp.run("down", (10,)).ret_value == 10


class TestResultSnapshot:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_result_dicts_are_copies(self, engine):
        program = compile_source(_LOOP_SOURCE)
        interp = create_interpreter(program, engine=engine, mode="ideal",
                                    collect_profile=True)
        result = interp.run()
        assert result.extend_counts is not interp.extend_counts
        assert result.site_counts is not interp.site_counts
        assert result.opcode_counts is not interp.opcode_counts
        assert result.profiles is not interp.profiles
        for name, edges in result.profiles.items():
            assert edges is not interp.profiles[name]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mutating_result_does_not_corrupt_interpreter(self, engine):
        program = compile_source(_LOOP_SOURCE)
        interp = create_interpreter(program, engine=engine, mode="ideal")
        first = interp.run()
        first.extend_counts[32] = 10**9
        first.site_counts.clear()
        first.opcode_counts.clear()
        second = create_interpreter(program, engine=engine,
                                    mode="ideal").run()
        assert second.site_counts
        assert second.opcode_counts
        assert second.extend_counts[32] != 10**9


class TestFallback:
    def test_full_fallback_matches_reference(self):
        program = compile_source(_LOOP_SOURCE)
        interp = ClosureInterpreter(program, mode="ideal",
                                    translation_cache=_RefusingCache())
        result = interp.run()
        assert interp.translated_functions == 0
        assert interp.fallback_functions == len(program.functions)
        assert interp.fallback_calls >= 1
        assert result == Interpreter(program, mode="ideal").run()

    def test_partial_fallback_interleaves_engines(self):
        """Translated and fallback frames call into each other freely."""
        program = compile_source("""
            int isEven(int n) {
                if (n == 0) { return 1; }
                return isOdd(n - 1);
            }
            int isOdd(int n) {
                if (n == 0) { return 0; }
                return isEven(n - 1);
            }
            int main() { return isEven(10) * 10 + isOdd(7); }
        """)
        cache = _RefusingCache(frozenset({"isOdd"}))
        interp = ClosureInterpreter(program, mode="ideal",
                                    translation_cache=cache)
        result = interp.run()
        assert interp.fallback_functions == 1
        assert interp.fallback_calls >= 1
        assert interp.translated_functions == len(program.functions) - 1
        assert result == Interpreter(program, mode="ideal").run()
        assert result.ret_value == 11

    def test_no_fallback_on_fully_translatable_program(self):
        program = compile_source(_LOOP_SOURCE)
        interp = ClosureInterpreter(program, mode="ideal",
                                    translation_cache=TranslationCache())
        interp.run()
        assert interp.fallback_functions == 0
        assert interp.fallback_calls == 0
        assert interp.translated_functions == len(program.functions)


class TestTranslationCache:
    def test_cache_shared_across_interpreters(self):
        from repro.ir.clone import clone_program

        program = compile_source(_LOOP_SOURCE)
        cache = TranslationCache()
        first = ClosureInterpreter(program, mode="ideal",
                                   translation_cache=cache)
        assert first.translate_cache_misses == len(program.functions)
        assert first.translate_cache_hits == 0
        # A structurally identical clone (fresh uids) reuses the
        # translation; only the uid layout is rebuilt per binding.
        second = ClosureInterpreter(clone_program(program), mode="ideal",
                                    translation_cache=cache)
        assert second.translate_cache_hits == len(program.functions)
        assert second.translate_cache_misses == 0
        r1, r2 = first.run(), second.run()
        assert (r1.checksum, r1.ret_value, r1.steps) == \
            (r2.checksum, r2.ret_value, r2.steps)
        assert r1.opcode_counts == r2.opcode_counts

    def test_cache_key_separates_modes(self):
        program = compile_source(_LOOP_SOURCE)
        cache = TranslationCache()
        ClosureInterpreter(program, mode="ideal", translation_cache=cache)
        second = ClosureInterpreter(program, mode="machine",
                                    translation_cache=cache)
        # Machine mode must not reuse ideal-mode closures.
        assert second.translate_cache_misses == len(program.functions)

    def test_stats_exposed(self):
        program = compile_source(_LOOP_SOURCE)
        cache = TranslationCache()
        ClosureInterpreter(program, mode="ideal", translation_cache=cache)
        stats = cache.stats()
        assert stats["translate.misses"] == len(program.functions)
        assert stats["translate.entries"] == len(program.functions)


class TestFuelBoundary:
    def test_sweep_every_fuel_value(self):
        """Both engines agree at every possible fuel cutoff, including
        mid-block, at-call, and at-terminator boundaries."""
        program = compile_source(_LOOP_SOURCE)
        total = Interpreter(program, mode="ideal").run().steps
        for fuel in range(0, total + 2):
            outcomes = []
            for engine in ENGINES:
                interp = create_interpreter(program, engine=engine,
                                            mode="ideal", fuel=fuel)
                try:
                    outcomes.append(("ok", interp.run()))
                except FuelExhausted as exc:
                    outcomes.append(("fuel", str(exc), interp.steps))
            assert outcomes[0] == outcomes[1], f"fuel={fuel}"

    def test_trap_wins_over_fuel_inside_final_segment(self):
        """An instruction that traps within the last affordable steps
        must trap — not report fuel exhaustion — on both engines."""
        program = compile_source("""
            int main() {
                int a = 7;
                int b = 0;
                return a / b;
            }
        """)
        total_to_trap = 3  # two consts + the division
        for engine in ENGINES:
            interp = create_interpreter(program, engine=engine,
                                        mode="ideal", fuel=total_to_trap)
            with pytest.raises(Trap):
                interp.run()


class TestEngineSelection:
    def test_execute_both_matches_single_engine(self):
        program = compile_source(_LOOP_SOURCE)
        both = execute(program, engine="both", mode="ideal")
        reference = execute(program, engine="reference", mode="ideal")
        assert both == reference

    def test_execute_both_propagates_trap(self):
        program = compile_source(
            "int main() { int a = 1; int b = 0; return a / b; }"
        )
        with pytest.raises(Trap):
            execute(program, engine="both", mode="ideal")

    def test_unknown_engine_rejected(self):
        program = compile_source(_LOOP_SOURCE)
        with pytest.raises(ValueError, match="unknown engine"):
            create_interpreter(program, engine="bogus")
        # "both" is an execute()/oracle mode, not an interpreter class.
        with pytest.raises(ValueError, match="unknown engine"):
            create_interpreter(program, engine="both")

    def test_parity_error_is_assertion_error(self):
        assert issubclass(EngineParityError, AssertionError)


class TestEngineTelemetry:
    def test_runtime_engine_metrics_emitted(self):
        program = compile_source(_LOOP_SOURCE)
        telemetry = Telemetry(label="engine-test")
        execute(program, engine="closure", mode="ideal",
                metrics=telemetry.metrics)
        metrics = telemetry.metrics
        assert metrics.counter_value(
            "runtime.engine.translated_functions") == len(program.functions)
        assert metrics.counter_value(
            "runtime.engine.closures_executed") > 0
        assert metrics.counter_value(
            "runtime.engine.translate_cache_hits") + metrics.counter_value(
            "runtime.engine.translate_cache_misses") == \
            len(program.functions)

    def test_fallback_counters_emitted(self):
        program = compile_source(_LOOP_SOURCE)
        telemetry = Telemetry(label="engine-test")
        interp = ClosureInterpreter(program, mode="ideal",
                                    translation_cache=_RefusingCache(),
                                    metrics=telemetry.metrics)
        interp.run()
        assert telemetry.metrics.counter_value(
            "runtime.engine.fallback_functions") == len(program.functions)
        assert telemetry.metrics.counter_value(
            "runtime.engine.fallback_calls") >= 1


class TestCraftedFaults:
    """Hand-built IR that hits paths the frontend cannot express."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_just_extended_noncanonical_faults(self, engine):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I64)
        value = b.const(0xFFFF_FFFF, ScalarType.I64)  # non-canonical
        b.ret(b.unop(Opcode.JUST_EXTENDED, value))
        interp = create_interpreter(program, engine=engine)
        with pytest.raises(MemoryFault, match="non-canonical"):
            interp.run()

    def test_just_extended_fault_message_parity(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I64)
        value = b.const(0xFFFF_FFFF, ScalarType.I64)
        b.ret(b.unop(Opcode.JUST_EXTENDED, value))
        messages = []
        for engine in ENGINES:
            with pytest.raises(MemoryFault) as excinfo:
                create_interpreter(program, engine=engine).run()
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_just_extended_passes_canonical_values(self, engine):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I64)
        value = b.const(-1, ScalarType.I64)  # canonical: all 64 bits set
        b.ret(b.unop(Opcode.JUST_EXTENDED, value))
        result = create_interpreter(program, engine=engine).run()
        assert result.ret_value == 0xFFFF_FFFF_FFFF_FFFF

    def test_fell_off_block_trap_parity(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        b.const(1)  # block never terminates
        messages = []
        for engine in ENGINES:
            with pytest.raises(Trap, match="fell off block") as excinfo:
                create_interpreter(program, engine=engine).run()
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_void_call_result_trap_parity(self):
        program = Program()
        callee = build_function(program, "f", [], None)
        callee.ret()
        b = build_function(program, "main", [], ScalarType.I32)
        dest = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.CALL, dest, (), callee="f"))
        b.ret(dest)
        messages = []
        for engine in ENGINES:
            with pytest.raises(Trap, match="void") as excinfo:
                create_interpreter(program, engine=engine).run()
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_arity_mismatch_trap_parity(self):
        program = Program()
        callee = build_function(program, "f", [("x", ScalarType.I32)],
                                ScalarType.I32)
        callee.ret(callee.func.params[0])
        messages = []
        for engine in ENGINES:
            with pytest.raises(Trap, match="arity") as excinfo:
                create_interpreter(program, engine=engine).run("f", ())
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
