"""Unit tests for the machine-faithful interpreter."""

import pytest

from repro.interp import FuelExhausted, Interpreter, MemoryFault, Trap
from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
    wrap_u64,
)
from repro.machine import IA64, PPC64


def _program_returning(build):
    program = Program()
    b = build_function(program, "main", [], ScalarType.I32)
    result = build(b)
    b.ret(result)
    return program


def _run(program, mode="machine", args=(), **kwargs):
    return Interpreter(program, mode=mode, **kwargs).run(args=args)


class TestIntegerSemantics:
    def test_add32_full_width(self):
        """Machine mode: 32-bit add runs on the full register."""
        program = _program_returning(
            lambda b: b.binop(Opcode.ADD32, b.const(0x7FFFFFFF), b.const(1))
        )
        result = _run(program)
        # Full 64-bit add of two canonical values: upper bits hold the
        # true sum, not the wrapped 32-bit value.
        assert result.ret_value == 0x8000_0000

    def test_ideal_mode_keeps_canonical(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.ADD32, b.const(0x7FFFFFFF), b.const(1))
        )
        result = _run(program, mode="ideal")
        assert result.ret_value == wrap_u64(-0x8000_0000)

    def test_java_division_truncates_toward_zero(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.DIV32, b.const(-7), b.const(2))
        )
        assert _run(program, mode="ideal").ret_value == wrap_u64(-3)

    def test_java_remainder_sign(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.REM32, b.const(-7), b.const(2))
        )
        assert _run(program, mode="ideal").ret_value == wrap_u64(-1)

    def test_division_by_zero_traps(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.DIV32, b.const(1), b.const(0))
        )
        with pytest.raises(Trap, match="zero"):
            _run(program)

    def test_shift_amount_masked(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.SHL32, b.const(1), b.const(33))
        )
        assert _run(program).ret_value == 2  # 33 & 31 == 1

    def test_shr32_sign_fills(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.SHR32, b.const(-8), b.const(1))
        )
        assert _run(program).ret_value == wrap_u64(-4)

    def test_ushr32_zero_fills(self):
        program = _program_returning(
            lambda b: b.binop(Opcode.USHR32, b.const(-1), b.const(28))
        )
        assert _run(program).ret_value == 0xF

    def test_cmp32_reads_low_bits_only(self):
        # Register holds a non-canonical value; cmp32 must look at the
        # low 32 bits as a signed 32-bit number.
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        big = b.const(0x1_0000_0005, ScalarType.I64)
        narrow = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.TRUNC32, narrow, (big,)))
        five = b.const(5)
        p = b.cmp(Opcode.CMP32, Cond.EQ, narrow, five)
        b.ret(p)
        assert _run(program).ret_value == 1

    def test_unsigned_compare(self):
        program = _program_returning(
            lambda b: b.cmp(Opcode.CMP32, Cond.UGT, b.const(-1), b.const(1))
        )
        assert _run(program).ret_value == 1  # 0xFFFFFFFF > 1 unsigned


class TestConversionsAndExtends:
    def test_extend_counts_by_width(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        x = b.func.new_reg(ScalarType.I32)
        b.mov(b.const(0x1FF), x)
        b.emit(Instr(Opcode.EXTEND8, x, (x,)))
        b.emit(Instr(Opcode.EXTEND16, x, (x,)))
        b.emit(Instr(Opcode.EXTEND32, x, (x,)))
        b.ret(x)
        result = _run(program)
        assert result.extend_counts == {8: 1, 16: 1, 32: 1}

    def test_i2d_reads_full_register(self):
        """The reason extensions matter: i2d of a garbage register is
        wrong; of a canonical one, right."""
        program = Program()
        b = build_function(program, "main", [], ScalarType.F64)
        big = b.const(0x1_0000_0005, ScalarType.I64)
        narrow = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.TRUNC32, narrow, (big,)))
        d = b.unop(Opcode.I2D, narrow)  # no extension: reads 2^32 + 5
        b.ret(d)
        assert _run(program).ret_value == float(0x1_0000_0005)

    def test_i2d_after_extension_is_correct(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.F64)
        big = b.const(0x1_0000_0005, ScalarType.I64)
        narrow = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.TRUNC32, narrow, (big,)))
        b.emit(Instr(Opcode.EXTEND32, narrow, (narrow,)))
        d = b.unop(Opcode.I2D, narrow)
        b.ret(d)
        assert _run(program).ret_value == 5.0

    def test_d2i_saturates(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        d = b.const(1e18, ScalarType.F64)
        v = b.unop(Opcode.D2I, d)
        b.ret(v)
        assert _run(program).ret_value == 0x7FFF_FFFF

    def test_d2i_nan_is_zero(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        zero = b.const(0.0, ScalarType.F64)
        nan = b.binop(Opcode.FDIV, zero, zero)
        v = b.unop(Opcode.D2I, nan)
        b.ret(v)
        assert _run(program).ret_value == 0


class TestArrays:
    def test_bounds_check_unsigned(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(4)
        arr = b.newarray(ScalarType.I32, n)
        neg = b.const(-1)
        v = b.aload(arr, neg, ScalarType.I32)
        b.ret(v)
        with pytest.raises(Trap, match="ArrayIndexOutOfBounds"):
            _run(program, mode="ideal")

    def test_out_of_range_traps(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(4)
        arr = b.newarray(ScalarType.I32, n)
        idx = b.const(4)
        v = b.aload(arr, idx, ScalarType.I32)
        b.ret(v)
        with pytest.raises(Trap, match="ArrayIndexOutOfBounds"):
            _run(program)

    def test_wild_upper_bits_fault(self):
        """The unsoundness detector: low 32 bits pass the bounds check
        but the effective address uses the full register."""
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(4)
        arr = b.newarray(ScalarType.I32, n)
        wild = b.const(0x1_0000_0002, ScalarType.I64)
        narrow = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.TRUNC32, narrow, (wild,)))
        v = b.aload(arr, narrow, ScalarType.I32)
        b.ret(v)
        with pytest.raises(MemoryFault):
            _run(program)

    def test_narrow_elements_truncate_on_store(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(2)
        arr = b.newarray(ScalarType.I8, n)
        zero = b.const(0)
        value = b.const(0x1FF)
        b.astore(arr, zero, value, ScalarType.I8)
        loaded = b.aload(arr, zero, ScalarType.I8)
        b.ret(loaded)
        # IA64 byte load zero-extends the stored 0xFF.
        assert _run(program, traits=IA64).ret_value == 0xFF

    def test_load_extension_per_machine(self):
        def build():
            program = Program()
            b = build_function(program, "main", [], ScalarType.I32)
            n = b.const(2)
            arr = b.newarray(ScalarType.I32, n)
            zero = b.const(0)
            value = b.const(-1)
            b.astore(arr, zero, value, ScalarType.I32)
            loaded = b.aload(arr, zero, ScalarType.I32)
            b.ret(loaded)
            return program

        assert _run(build(), traits=IA64).ret_value == 0xFFFF_FFFF
        assert _run(build(), traits=PPC64).ret_value == wrap_u64(-1)

    def test_negative_array_size_traps(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(-3)
        b.newarray(ScalarType.I32, n)
        b.ret(n)
        with pytest.raises(Trap, match="NegativeArraySize"):
            _run(program)

    def test_null_dereference(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        null = b.const(0, ScalarType.REF)
        zero = b.const(0)
        v = b.aload(null, zero, ScalarType.I32)
        b.ret(v)
        with pytest.raises(Trap, match="NullPointer"):
            _run(program)


class TestDummyMarkerOracle:
    def test_dummy_asserts_canonical(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        wild = b.const(0x1_0000_0002, ScalarType.I64)
        narrow = b.func.new_reg(ScalarType.I32)
        b.emit(Instr(Opcode.TRUNC32, narrow, (wild,)))
        b.emit(Instr(Opcode.JUST_EXTENDED, narrow, (narrow,)))
        b.ret(narrow)
        with pytest.raises(MemoryFault, match="just_extended"):
            _run(program)
        # With checking disabled it degrades to an identity move.
        result = _run(program, check_dummies=False)
        assert result.ret_value == 0x1_0000_0002


class TestControlAndCalls:
    def test_call_and_return(self):
        program = Program()
        callee = build_function(program, "double_it",
                                [("x", ScalarType.I32)], ScalarType.I32)
        result = callee.binop(Opcode.ADD32, callee.func.params[0],
                              callee.func.params[0])
        callee.ret(result)
        b = build_function(program, "main", [], ScalarType.I32)
        ten = b.const(10)
        value = b.call("double_it", [ten], ScalarType.I32)
        b.ret(value)
        assert _run(program).ret_value == 20

    def test_fuel_exhaustion(self):
        program = Program()
        b = build_function(program, "main", [], None)
        loop = b.block("loop")
        b.jmp(loop)
        b.switch(loop)
        b.jmp(loop)
        with pytest.raises(FuelExhausted):
            _run(program, fuel=100)

    def test_checksum_order_sensitive(self):
        def build(first, second):
            program = Program()
            b = build_function(program, "main", [], None)
            b.sink(b.const(first))
            b.sink(b.const(second))
            b.ret()
            return program

        a = _run(build(1, 2)).checksum
        b = _run(build(2, 1)).checksum
        assert a != b

    def test_globals_roundtrip(self):
        program = Program()
        program.add_global("g", ScalarType.I32, 7)
        b = build_function(program, "main", [], ScalarType.I32)
        v = b.gload("g", ScalarType.I32)
        doubled = b.binop(Opcode.ADD32, v, v)
        b.gstore("g", doubled, ScalarType.I32)
        again = b.gload("g", ScalarType.I32)
        b.ret(again)
        assert _run(program).ret_value == 14
