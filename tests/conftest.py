"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import (
    Cond,
    Opcode,
    Program,
    ScalarType,
    build_function,
    verify_program,
)


def run_ideal(program, fuel: int = 5_000_000, args: tuple = ()):
    """Run pre-conversion IR with ideal (always canonical) semantics."""
    return Interpreter(program, mode="ideal", fuel=fuel).run(args=args)


def run_machine(program, fuel: int = 5_000_000, args: tuple = (), **kwargs):
    """Run converted IR with machine-faithful semantics."""
    return Interpreter(program, mode="machine", fuel=fuel, **kwargs).run(
        args=args
    )


def assert_all_variants_sound(source: str, fuel: int = 5_000_000):
    """Compile under every variant; observable behaviour must match."""
    program = compile_source(source, "test")
    gold = run_ideal(program, fuel)
    for name, config in VARIANTS.items():
        compiled = compile_ir(program, config)
        run = run_machine(compiled.program, fuel)
        assert run.observable() == gold.observable(), (
            f"variant {name!r} changed behaviour"
        )
    return gold


def make_fig7_program(iterations: int = 50) -> Program:
    """The paper's Figure 7 kernel, built directly in IR.

    do { i = i - 1; j = a[i]; j &= 0x0fffffff; t += j; } while (i > 0);
    d = (double) t;
    """
    program = Program("fig7")
    program.add_global("mem", ScalarType.I32, iterations)
    b = build_function(program, "main", [], ScalarType.F64)
    n = b.const(iterations + 1)
    one = b.const(1)
    zero = b.const(0)
    arr = b.newarray(ScalarType.I32, n)
    k = b.func.named_reg("k", ScalarType.I32)
    b.mov(zero, k)
    fill = b.block("fill")
    loop_entry = b.block("loop_entry")
    body = b.block("body")
    exit_block = b.block("exit")
    b.jmp(fill)
    b.switch(fill)
    three = b.const(3)
    value = b.binop(Opcode.MUL32, k, three)
    b.astore(arr, k, value, ScalarType.I32)
    b.binop(Opcode.ADD32, k, one, k)
    in_range = b.cmp(Opcode.CMP32, Cond.LT, k, n)
    b.br(in_range, fill, loop_entry)
    b.switch(loop_entry)
    i = b.func.named_reg("i", ScalarType.I32)
    t = b.func.named_reg("t", ScalarType.I32)
    j = b.func.named_reg("j", ScalarType.I32)
    b.gload("mem", ScalarType.I32, i)
    b.mov(zero, t)
    mask = b.const(0x0FFFFFFF)
    b.jmp(body)
    b.switch(body)
    b.binop(Opcode.SUB32, i, one, i)
    b.aload(arr, i, ScalarType.I32, j)
    b.binop(Opcode.AND32, j, mask, j)
    b.binop(Opcode.ADD32, t, j, t)
    continue_loop = b.cmp(Opcode.CMP32, Cond.GT, i, zero)
    b.br(continue_loop, body, exit_block)
    b.switch(exit_block)
    d = b.unop(Opcode.I2D, t)
    b.sink(d)
    b.ret(d)
    verify_program(program)
    return program


@pytest.fixture
def fig7_program() -> Program:
    return make_fig7_program()
