"""End-to-end campaign tests: clean runs, the injected miscompile,
regression replay, and the CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.fuzz import CampaignConfig, run_campaign
from repro.telemetry import Telemetry

#: Small-but-real cell grid: one interesting variant, one baseline,
#: one machine.  Keeps each campaign to about a second.
FAST = dict(variants=("new algorithm (all)", "baseline"),
            machines=("ia64",), jobs=1)


class TestCleanCampaign:
    def test_finds_nothing_on_main(self, tmp_path):
        config = CampaignConfig(seeds=10, corpus_dir=str(tmp_path), **FAST)
        result = run_campaign(config)
        assert result.ok
        assert result.divergences == []
        assert result.seeds_run == 10
        assert result.cells_checked == 20
        assert result.stats["fuzz.campaign.seeds"] == 10
        assert result.stats["fuzz.campaign.cells"] == 20
        assert result.stats["fuzz.campaign.gold_runs"] == 10
        assert list(tmp_path.glob("*.json")) == []

    def test_telemetry_counters_and_spans(self, tmp_path):
        telemetry = Telemetry(label="campaign-test")
        config = CampaignConfig(seeds=4, corpus_dir=str(tmp_path), **FAST)
        result = run_campaign(config, telemetry=telemetry)
        assert result.ok
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters["fuzz.campaign.seeds"] == 4
        names = {span.name for span in telemetry.tracer.walk()}
        assert {"fuzz.campaign", "fuzz.generate", "fuzz.compile",
                "fuzz.check"} <= names

    def test_time_budget_stops_early(self, tmp_path):
        config = CampaignConfig(seeds=100_000, corpus_dir=str(tmp_path),
                                time_budget=0.0, **FAST)
        result = run_campaign(config)
        assert result.budget_exhausted
        assert result.seeds_run < 100_000

    def test_rejects_unknown_cells(self):
        with pytest.raises(ValueError):
            CampaignConfig(variants=("no such variant",))
        with pytest.raises(ValueError):
            CampaignConfig(machines=("vax",))


class TestInjectedBug:
    """The campaign must catch a deliberately broken AnalyzeDEF and
    shrink the witness — the subsystem's own end-to-end soundness check
    (ISSUE acceptance: reduced witness <= 25% of the original)."""

    @pytest.fixture(scope="class")
    def bug_run(self, tmp_path_factory):
        corpus_dir = tmp_path_factory.mktemp("bug-corpus")
        config = CampaignConfig(
            seeds=40, corpus_dir=str(corpus_dir), inject_bug=True,
            variants=("new algorithm (all)",), machines=("ia64",),
            max_divergences=1,
        )
        return corpus_dir, run_campaign(config)

    def test_campaign_finds_the_miscompile(self, bug_run):
        corpus_dir, result = bug_run
        assert not result.ok
        assert len(result.divergences) >= 1
        witness = result.divergences[0]
        assert witness.kind in ("output", "heap", "trap")
        assert len(list(corpus_dir.glob("*.json"))) >= 1

    def test_witness_is_reduced_below_bound(self, bug_run):
        _, result = bug_run
        witness = result.divergences[0]
        ratio = witness.reduction_ratio()
        assert ratio is not None
        assert ratio <= 0.25
        assert "void main()" in witness.reduced_source

    def test_replay_fails_while_bug_present(self, bug_run):
        corpus_dir, _ = bug_run
        replay = run_campaign(CampaignConfig(
            seeds=0, corpus_dir=str(corpus_dir), replay_only=True,
            inject_bug=True,
            variants=("new algorithm (all)",), machines=("ia64",)))
        assert replay.regressions_checked >= 1
        assert replay.regressions_failing >= 1
        assert not replay.ok

    def test_replay_passes_once_bug_is_fixed(self, bug_run):
        corpus_dir, _ = bug_run
        replay = run_campaign(CampaignConfig(
            seeds=0, corpus_dir=str(corpus_dir), replay_only=True,
            variants=("new algorithm (all)",), machines=("ia64",)))
        assert replay.regressions_checked >= 1
        assert replay.regressions_failing == 0
        assert replay.ok


class TestCli:
    def test_fuzz_subcommand_clean(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main(["fuzz", "--seeds", "5",
                     "--corpus-dir", str(tmp_path / "corpus"),
                     "--variant", "new algorithm (all)",
                     "--machines", "ia64",
                     "--json", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "divergence: none" in out
        document = json.loads(report.read_text())
        assert document["ok"] is True
        assert document["seeds_run"] == 5

    def test_fuzz_subcommand_reports_injected_bug(self, tmp_path, capsys):
        code = main(["fuzz", "--seeds", "20", "--inject-bug",
                     "--corpus-dir", str(tmp_path / "corpus"),
                     "--variant", "new algorithm (all)",
                     "--machines", "ia64",
                     "--max-divergences", "1"])
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_fuzz_replay_on_empty_corpus(self, tmp_path, capsys):
        code = main(["fuzz", "--replay",
                     "--corpus-dir", str(tmp_path / "corpus")])
        assert code == 0
        assert "0 witnesses replayed" in capsys.readouterr().out


class TestWitnessProfiles:
    def test_divergence_writes_profile_artifact(self, tmp_path):
        from repro.profile import load_profiles

        profile_dir = tmp_path / "profiles"
        config = CampaignConfig(
            seeds=40, corpus_dir=str(tmp_path / "corpus"),
            inject_bug=True, profile_dir=str(profile_dir),
            variants=("new algorithm (all)",), machines=("ia64",),
            max_divergences=1,
        )
        result = run_campaign(config)
        assert not result.ok
        loaded = load_profiles(profile_dir)
        assert len(loaded) == result.stats.get(
            "fuzz.campaign.witness_profiles", 0) > 0
        witness = result.divergences[0]
        assert any(p.workload == f"witness-{witness.id}" for p in loaded)

    def test_clean_campaign_writes_no_profiles(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        config = CampaignConfig(seeds=5, corpus_dir=str(tmp_path / "c"),
                                profile_dir=str(profile_dir), **FAST)
        result = run_campaign(config)
        assert result.ok
        assert not profile_dir.exists() or \
            list(profile_dir.iterdir()) == []
