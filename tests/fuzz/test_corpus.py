"""Tests for the on-disk divergence corpus."""

import json

import repro
from repro.fuzz import Corpus, Witness, witness_id


def _witness(**overrides):
    fields = dict(seed=42, variant="new algorithm (all)", machine="ia64",
                  kind="output", detail="checksum changed",
                  source="void main() { sink(1); }\n")
    fields.update(overrides)
    return Witness(**fields)


class TestWitness:
    def test_id_is_content_addressed(self):
        assert _witness().id == _witness().id
        assert _witness().id != _witness(source="void main() {}\n").id
        assert _witness().id != _witness(machine="ppc64").id
        assert _witness().id == witness_id(
            _witness().source, "new algorithm (all)", "ia64", "output")

    def test_best_source_prefers_reduction(self):
        plain = _witness()
        assert plain.best_source == plain.source
        assert plain.reduction_ratio() is None
        reduced = _witness(reduced_source="void main() { }\n")
        assert reduced.best_source == reduced.reduced_source
        assert 0 < reduced.reduction_ratio() < 1

    def test_dict_roundtrip_ignores_unknown_keys(self):
        document = _witness().to_dict()
        document["added_by_some_future_version"] = True
        back = Witness.from_dict(document)
        assert back.seed == 42
        assert back.id == _witness().id


class TestCorpus:
    def test_add_and_reload(self, tmp_path):
        corpus = Corpus(tmp_path)
        witness = _witness()
        path = corpus.add(witness)
        assert path.exists()
        assert witness.package_version == repro.__version__
        entries = corpus.entries()
        assert len(entries) == 1
        assert entries[0].source == witness.source
        assert entries[0].package_version == repro.__version__

    def test_same_divergence_updates_in_place(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.add(_witness(detail="first sighting"))
        corpus.add(_witness(detail="seen again"))
        assert len(corpus) == 1
        assert corpus.entries()[0].detail == "seen again"

    def test_unreadable_entries_are_skipped(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.add(_witness())
        (tmp_path / "garbage.json").write_text("{not json")
        (tmp_path / "wrong-shape.json").write_text(json.dumps([1, 2]))
        assert len(corpus.entries()) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        corpus = Corpus(tmp_path / "never-created")
        assert corpus.entries() == []
        assert len(corpus) == 0
