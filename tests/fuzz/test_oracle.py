"""Unit tests for the differential oracle."""

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.fuzz import (
    KIND_HEAP,
    KIND_OUTPUT,
    KIND_TRAP,
    Observation,
    check_compiled,
    check_cost_model,
    check_lowering,
    compare_observations,
    observe,
)
from repro.interp import Interpreter
from repro.machine import MACHINES

CLEAN = """
void main() {
    int[] arr = new int[16];
    int total = 0;
    for (int i = 0; i < 16; i++) { arr[i] = (byte)(i * 37); }
    for (int i = 0; i < 16; i++) { total += arr[i]; }
    sink(total);
}
"""

TRAPPING = """
void main() {
    int[] arr = new int[4];
    sink(arr[9]);
}
"""


def _observation(**overrides):
    base = dict(status="ok", checksum=1, ret_value=None, heap=(),
                trap=None, steps=10, extends32=0)
    base.update(overrides)
    return Observation(**base)


class TestObserve:
    def test_ideal_and_compiled_machine_run_agree(self):
        # Machine mode is only behaviour-preserving for *converted* IR,
        # so the gold run is compared against a compiled baseline.
        program = compile_source(CLEAN, "clean")
        gold = observe(program, mode="ideal")
        compiled = compile_ir(program, VARIANTS["baseline"])
        machine = observe(compiled.program, mode="machine")
        assert gold.status == machine.status == "ok"
        assert compare_observations(gold, machine) is None
        assert gold.heap  # the allocated array is captured

    def test_trapping_program_observed_not_raised(self):
        program = compile_source(TRAPPING, "trapping")
        gold = observe(program, mode="ideal")
        assert gold.status != "ok"
        assert gold.trap
        # Both modes trap identically -> no divergence.
        assert compare_observations(gold,
                                    observe(program, mode="machine")) is None

    def test_fuel_exhaustion_is_an_observation(self):
        program = compile_source(CLEAN, "clean")
        starved = observe(program, mode="ideal", fuel=3)
        assert starved.status == "fuel"


class TestCompareObservations:
    def test_status_mismatch_is_trap_kind(self):
        kind, detail = compare_observations(
            _observation(), _observation(status="trap", trap="Trap: x"))
        assert kind == KIND_TRAP
        assert "Trap: x" in detail

    def test_trap_message_mismatch(self):
        kind, _ = compare_observations(
            _observation(status="trap", trap="Trap: a"),
            _observation(status="trap", trap="Trap: b"))
        assert kind == KIND_TRAP

    def test_checksum_mismatch_is_output_kind(self):
        kind, _ = compare_observations(_observation(),
                                       _observation(checksum=2))
        assert kind == KIND_OUTPUT

    def test_heap_mismatch_is_heap_kind(self):
        kind, detail = compare_observations(
            _observation(heap=(("int", (1, 2)),)),
            _observation(heap=(("int", (1, 3)),)))
        assert kind == KIND_HEAP
        assert "[1]" in detail

    def test_identical_observations_do_not_diverge(self):
        assert compare_observations(_observation(), _observation()) is None


class TestConsistencyChecks:
    def test_compiled_program_passes_every_check(self):
        program = compile_source(CLEAN, "clean")
        gold = observe(program, mode="ideal")
        for machine in ("ia64", "ppc64"):
            traits = MACHINES[machine]
            config = VARIANTS["new algorithm (all)"].with_traits(traits)
            compiled = compile_ir(program, config)
            assert check_lowering(compiled.program, traits) is None
            result = Interpreter(compiled.program, traits=traits,
                                 fuel=2_000_000).run()
            assert check_cost_model(compiled.program, result, traits) is None
            assert check_compiled(gold, compiled.program, traits,
                                  2_000_000) is None
