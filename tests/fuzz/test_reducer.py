"""Tests for the delta-debugging reducer (synthetic predicates only;
end-to-end reduction of real miscompiles lives in test_campaign.py)."""

from repro.fuzz import reduce_source

PROGRAM = """\
void main() {
    int[] arr = new int[16];
    int total = 0;
    for (int i = 0; i < 16; i++) {
        arr[i] = i * 3;
        total += arr[i];
    }
    int needle = (total + (7 * 3));
    sink(needle);
    sink(total);
}
"""


class TestReduceSource:
    def test_shrinks_to_needle(self):
        outcome = reduce_source(PROGRAM,
                                lambda s: "needle" in s)
        assert outcome.reproduced
        assert "needle" in outcome.reduced
        assert outcome.ratio < 0.5
        # The loop and the unrelated sinks are gone.
        assert "for (" not in outcome.reduced
        assert outcome.reduced.count("sink") <= 1

    def test_unwraps_enclosing_blocks(self):
        nested = ("void main() {\n"
                  "    for (int i = 0; i < 4; i++) {\n"
                  "        sink(needle);\n"
                  "    }\n"
                  "}\n")
        outcome = reduce_source(nested, lambda s: "needle" in s)
        assert outcome.reproduced
        assert "for (" not in outcome.reduced
        assert "needle" in outcome.reduced

    def test_simplifies_expressions(self):
        source = "int x = (needle + (12345 * 678));\n"
        outcome = reduce_source(source, lambda s: "needle" in s)
        assert outcome.reproduced
        assert "needle" in outcome.reduced
        assert "12345" not in outcome.reduced

    def test_non_reproducing_source_is_untouched(self):
        outcome = reduce_source(PROGRAM, lambda s: False)
        assert not outcome.reproduced
        assert outcome.reduced == PROGRAM
        assert outcome.attempts == 1

    def test_attempt_budget_is_respected(self):
        calls = []

        def predicate(source):
            calls.append(source)
            return True

        outcome = reduce_source(PROGRAM, predicate, max_attempts=5)
        assert outcome.attempts <= 5
        assert len(calls) <= 5

    def test_candidates_are_validated_not_trusted(self):
        # A predicate that rejects unbalanced or main-less candidates
        # mimics the real frontend gate: the result must still satisfy it.
        def predicate(source):
            return ("needle" in source
                    and source.count("{") == source.count("}")
                    and "void main()" in source)

        outcome = reduce_source(PROGRAM, predicate)
        assert outcome.reproduced
        assert predicate(outcome.reduced)
        assert outcome.ratio <= 1.0
