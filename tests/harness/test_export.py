"""Tests for the JSON export of experiment results."""

import json

import pytest

from repro.harness import export_json, results_to_dict, measure_workload
from repro.workloads import Workload

_SOURCE = """
void main() {
    int[] a = new int[16];
    int t = 0;
    for (int i = 0; i < 16; i++) { a[i] = i; }
    for (int i = 15; i > 0; i--) { t += a[i]; }
    sink(t);
}
"""


@pytest.fixture(scope="module")
def results():
    workload = Workload(name="export_kernel", suite="jbytemark",
                        description="test", source=_SOURCE)
    return [measure_workload(workload)]


class TestExport:
    def test_dict_structure(self, results):
        data = results_to_dict(results)
        assert len(data["workloads"]) == 1
        entry = data["workloads"][0]
        assert entry["name"] == "export_kernel"
        assert "baseline" in entry["variants"]
        assert "new algorithm (all)" in entry["variants"]

    def test_percentages_consistent(self, results):
        data = results_to_dict(results)
        variants = data["workloads"][0]["variants"]
        base = variants["baseline"]
        assert base["percent_of_baseline"] == 100.0
        best = variants["new algorithm (all)"]
        assert best["dyn_extend32"] <= base["dyn_extend32"]
        expected = 100.0 * best["dyn_extend32"] / base["dyn_extend32"]
        assert abs(best["percent_of_baseline"] - expected) < 0.01

    def test_compile_seconds_present(self, results):
        data = results_to_dict(results)
        timing = (data["workloads"][0]["variants"]
                  ["new algorithm (all)"]["compile_seconds"])
        assert timing["sign_ext"] > 0
        assert timing["chains"] > 0
        assert timing["others"] > 0

    def test_json_roundtrip(self, results, tmp_path):
        path = tmp_path / "out.json"
        export_json(results, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == results_to_dict(results)

    def test_checksum_stringified(self, results):
        data = results_to_dict(results)
        checksum = data["workloads"][0]["gold_checksum"]
        assert checksum.startswith("0x")
        int(checksum, 16)  # parseable
