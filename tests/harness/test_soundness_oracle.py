"""The harness oracle must actually fire on a miscompile.

We sabotage the compiler (strip every extension unconditionally) and
check that the runner rejects the result — proving the equivalence
check would have caught an unsound elimination in the real pipeline.
"""

import pytest

import repro.driver.batch as batch_module
from repro.harness import SoundnessError, measure_workload
from repro.ir import Opcode
from repro.workloads import Workload

_SOURCE = """
void main() {
    // Overflowing arithmetic feeding an observable double conversion:
    // stripping the canonicalizing extension changes the checksum.
    int big = 2147483647;
    int t = 0;
    for (int i = 0; i < 5; i++) {
        big = big + big;
        double d = (double) big;
        sinkd(d);
        t ^= big;
    }
    sink(t);
}
"""


def test_oracle_rejects_stripped_extensions(monkeypatch):
    workload = Workload(name="sabotage", suite="jbytemark",
                        description="oracle test", source=_SOURCE)

    # The runner compiles through the batch driver; sabotage the
    # driver's in-process compile path (the serial default).
    real_compile = batch_module.compile_ir

    def sabotaged(source, config, profiles=None, **kwargs):
        result = real_compile(source, config, profiles, **kwargs)
        for func in result.program.functions.values():
            for block in func.blocks:
                block.instrs = [
                    instr for instr in block.instrs
                    if not (instr.is_extend and instr.dest is not None
                            and len(instr.srcs) == 1
                            and instr.dest.name == instr.srcs[0].name)
                ]
        return result

    monkeypatch.setattr(batch_module, "compile_ir", sabotaged)
    with pytest.raises(SoundnessError):
        measure_workload(workload)


def test_oracle_accepts_honest_compiler():
    workload = Workload(name="honest", suite="jbytemark",
                        description="oracle test", source=_SOURCE)
    results = measure_workload(workload)
    # The honest pipeline keeps the required extension: it runs 5 times
    # under every variant (it protects an observable conversion).
    for name, cell in results.cells.items():
        assert cell.dyn_extend32 >= 5, name


def test_dynamic_counts_differ_between_variants():
    source = """
    void main() {
        int[] a = new int[64];
        int t = 0;
        for (int i = 0; i < 64; i++) { a[i] = i; }
        for (int i = 63; i > 0; i--) { t += a[i]; }
        sink(t);
    }
    """
    workload = Workload(name="spread", suite="jbytemark",
                        description="oracle test", source=source)
    results = measure_workload(workload)
    counts = {c.dyn_extend32 for c in results.cells.values()}
    assert len(counts) >= 3  # the variants genuinely differ
