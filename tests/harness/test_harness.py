"""Tests for the experiment harness (runner + table/figure formatters)."""

import pytest

from repro.core import VARIANTS
from repro.core.config import SignExtConfig, Algorithm
from repro.harness import (
    ROW_ORDER,
    SoundnessError,
    format_dynamic_count_table,
    format_percent_figure,
    format_performance_figure,
    format_timing_table,
    measure_workload,
)
from repro.workloads import Workload

_FAST_SOURCE = """
void main() {
    int[] a = new int[40];
    int t = 0;
    for (int i = 0; i < 40; i++) { a[i] = i * 3; }
    for (int i = 39; i > 0; i--) { t += a[i] & 0x0fffffff; }
    double d = (double) t;
    sinkd(d);
    sink(t);
}
"""

_FAST = Workload(name="fast", suite="jbytemark",
                 description="test kernel", source=_FAST_SOURCE)


@pytest.fixture(scope="module")
def results():
    return measure_workload(_FAST)


class TestRunner:
    def test_all_variants_present(self, results):
        assert set(results.cells) == set(VARIANTS)

    def test_baseline_is_100_percent(self, results):
        base = results.baseline
        assert base.percent_of(base) == 100.0

    def test_full_algorithm_beats_baseline(self, results):
        best = results.cells["new algorithm (all)"]
        assert best.dyn_extend32 < results.baseline.dyn_extend32

    def test_cycles_populated(self, results):
        for cell in results.cells.values():
            assert cell.cycles.total > 0

    def test_soundness_error_raised_for_broken_variant(self):
        # A deliberately broken "optimization" config cannot exist via
        # the public API, so simulate by corrupting the gold comparison:
        # run with a variant dict pointing at a config that is fine, and
        # assert the runner at least accepts it (negative control).
        out = measure_workload(_FAST, {"baseline": VARIANTS["baseline"]})
        assert "baseline" in out.cells


class TestTables:
    def test_dynamic_count_table_renders(self, results):
        text = format_dynamic_count_table([results], "Table 1 (test)")
        assert "Table 1 (test)" in text
        assert "new algorithm (all)" in text
        assert "(100.00%)" in text
        for row in ROW_ORDER:
            assert row in text

    def test_improvement_marks(self, results):
        text = format_dynamic_count_table([results], "T")
        assert "o (" in text  # at least one improved cell

    def test_timing_table_renders(self, results):
        text = format_timing_table([results])
        assert "sign-ext opts" in text
        assert "UD/DU chains" in text
        assert "average" in text

    def test_timing_rows_sum_to_100(self, results):
        text = format_timing_table([results])
        data_line = [l for l in text.splitlines() if l.startswith("fast")][0]
        values = [float(tok.rstrip("%")) for tok in data_line.split()[1:]]
        assert abs(sum(values) - 100.0) < 0.1


class TestFigures:
    def test_percent_figure(self, results):
        text = format_percent_figure([results], "Figure 11 (test)")
        assert "Figure 11 (test)" in text
        assert "%" in text
        assert "|" in text  # the ASCII bars

    def test_performance_figure(self, results):
        text = format_performance_figure([results], "Figure 13 (test)")
        assert "new algorithm (all)" in text
        assert "run-time improvement" in text

    def test_performance_improvement_positive_for_best(self, results):
        best = results.cells["new algorithm (all)"]
        improvement = best.cycles.improvement_over(results.baseline.cycles)
        assert improvement > 0


class TestProfileArtifacts:
    def test_measure_workload_writes_per_cell_artifacts(self, tmp_path):
        from repro.profile import load_profile, load_profiles

        variants = {"baseline": VARIANTS["baseline"],
                    "new algorithm (all)": VARIANTS["new algorithm (all)"]}
        results = measure_workload(_FAST, variants,
                                   profile_dir=str(tmp_path))
        loaded = load_profiles(tmp_path)
        assert {p.variant for p in loaded} == set(variants)
        assert all(p.workload == "fast" for p in loaded)
        # names encode workload, variant, and machine
        names = sorted(p.name for p in tmp_path.iterdir())
        assert all(n.startswith("fast__") for n in names)
        assert all(n.endswith(".profile.json") for n in names)
        # artifacts round-trip bit-identically
        for path in tmp_path.iterdir():
            assert load_profile(path).to_dict() == \
                load_profile(path).to_dict()

    def test_profile_dir_off_writes_nothing(self, tmp_path, results):
        assert list(tmp_path.iterdir()) == []
