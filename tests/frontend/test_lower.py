"""Tests for AST -> IR lowering, executed in ideal mode.

These are end-to-end language-semantics tests: each program's result is
compared against the Java-semantics expectation.
"""

import pytest

from repro.frontend import TypeError_, compile_source
from repro.ir import sign_extend
from tests.conftest import run_ideal


def _ret(source, args=()):
    program = compile_source(source)
    result = run_ideal(program, args=args)
    if isinstance(result.ret_value, float):
        return result.ret_value
    if result.ret_value is None:
        return None
    return sign_extend(result.ret_value, 64)


class TestExpressions:
    def test_arithmetic(self):
        assert _ret("int main() { return 2 + 3 * 4 - 1; }") == 13

    def test_int_overflow_wraps(self):
        assert _ret("int main() { return 2147483647 + 1; }") == -2147483648

    def test_division_truncates(self):
        assert _ret("int main() { return -7 / 2; }") == -3
        assert _ret("int main() { return -7 % 2; }") == -1

    def test_shifts(self):
        assert _ret("int main() { return -16 >> 2; }") == -4
        assert _ret("int main() { return -16 >>> 28; }") == 15
        assert _ret("int main() { return 3 << 30; }") == -1073741824

    def test_bitwise(self):
        assert _ret("int main() { return (0xF0 | 0x0F) ^ 0xFF; }") == 0
        assert _ret("int main() { return ~5; }") == -6

    def test_ternary(self):
        assert _ret("int main() { return 1 < 2 ? 10 : 20; }") == 10

    def test_short_circuit_and(self):
        # The second operand (a division by zero) must not evaluate.
        source = """
        int main() {
            int zero = 0;
            if (zero != 0 && 10 / zero > 0) { return 1; }
            return 2;
        }
        """
        assert _ret(source) == 2

    def test_short_circuit_or(self):
        source = """
        int main() {
            int zero = 0;
            if (zero == 0 || 10 / zero > 0) { return 1; }
            return 2;
        }
        """
        assert _ret(source) == 1

    def test_boolean_value_context(self):
        assert _ret("int main() { boolean b = 3 > 2 && 1 < 2; "
                    "return b ? 1 : 0; }") == 1


class TestTypesAndCasts:
    def test_byte_cast(self):
        assert _ret("int main() { return (byte) 200; }") == -56

    def test_short_cast(self):
        assert _ret("int main() { return (short) 0x12345; }") == 0x2345

    def test_char_cast(self):
        assert _ret("int main() { return (char) -1; }") == 0xFFFF

    def test_long_arithmetic(self):
        assert _ret("int main() { long x = 4000000000L; "
                    "return (int)(x / 1000000L); }") == 4000

    def test_int_to_long_widening(self):
        assert _ret("int main() { long x = -5; "
                    "return (int)(x * 3L); }") == -15

    def test_double_conversion(self):
        assert _ret("double main() { return (double) 7 / 2; }") == 3.5

    def test_double_to_int_truncates(self):
        assert _ret("int main() { return (int) 3.99; }") == 3
        assert _ret("int main() { return (int) -3.99; }") == -3

    def test_compound_assignment_narrows(self):
        # Java: b += 200 is b = (byte)(b + 200).
        assert _ret("int main() { byte b = (byte) 100; b += 200; "
                    "return b; }") == 44

    def test_char_arithmetic_promotes(self):
        assert _ret("int main() { char c = 'A'; return c + 1; }") == 66

    def test_implicit_narrowing_rejected(self):
        with pytest.raises(TypeError_, match="explicit cast"):
            compile_source("int main() { byte b = 1000; return b; }")

    def test_boolean_arithmetic_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("int main() { return true + 1; }")

    def test_condition_must_be_boolean(self):
        with pytest.raises(TypeError_, match="boolean"):
            compile_source("int main() { if (1) { return 1; } return 0; }")


class TestStatements:
    def test_while_loop(self):
        assert _ret("int main() { int s = 0; int i = 0; "
                    "while (i < 5) { s += i; i++; } return s; }") == 10

    def test_do_while_runs_once(self):
        assert _ret("int main() { int i = 100; int n = 0; "
                    "do { n++; } while (i < 10); return n; }") == 1

    def test_for_with_break_continue(self):
        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s += i;
            }
            return s;
        }
        """
        assert _ret(source) == 1 + 3 + 5 + 7 + 9

    def test_nested_scopes_shadowing(self):
        source = """
        int main() {
            int x = 1;
            { int y = 10; x += y; }
            { int y = 20; x += y; }
            return x;
        }
        """
        assert _ret(source) == 31

    def test_uninitialized_local_is_zero(self):
        assert _ret("int main() { int x; return x; }") == 0

    def test_duplicate_variable_rejected(self):
        with pytest.raises(TypeError_, match="duplicate"):
            compile_source("int main() { int x = 1; int x = 2; return x; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TypeError_, match="break"):
            compile_source("void main() { break; }")


class TestArraysAndGlobals:
    def test_array_roundtrip(self):
        source = """
        int main() {
            int[] a = new int[10];
            for (int i = 0; i < 10; i++) { a[i] = i * i; }
            int s = 0;
            for (int i = 0; i < 10; i++) { s += a[i]; }
            return s;
        }
        """
        assert _ret(source) == sum(i * i for i in range(10))

    def test_byte_array_sign_behaviour(self):
        source = """
        int main() {
            byte[] b = new byte[1];
            b[0] = (byte) 200;
            return b[0];
        }
        """
        assert _ret(source) == -56  # byte loads sign-extend in Java

    def test_char_array_zero_extends(self):
        source = """
        int main() {
            char[] c = new char[1];
            c[0] = (char) 0xFFFF;
            return c[0];
        }
        """
        assert _ret(source) == 0xFFFF

    def test_2d_array(self):
        source = """
        int main() {
            int[][] m = new int[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];
        }
        """
        assert _ret(source) == 23

    def test_array_length(self):
        assert _ret("int main() { long[] a = new long[17]; "
                    "return a.length; }") == 17

    def test_global_state(self):
        source = """
        int counter = 100;
        void bump() { counter = counter + 1; }
        int main() { bump(); bump(); return counter; }
        """
        assert _ret(source) == 102

    def test_global_initializer(self):
        assert _ret("int g = -42; int main() { return g; }") == -42

    def test_narrow_global(self):
        source = """
        byte small = 0;
        int main() { small = (byte) 300; return small; }
        """
        assert _ret(source) == 44  # 300 & 0xFF = 44, positive as byte


class TestFunctions:
    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        assert _ret(source) == 55

    def test_argument_widening(self):
        source = """
        double half(double x) { return x / 2.0; }
        double main() { return half(9); }
        """
        assert _ret(source) == 4.5

    def test_undefined_function_rejected(self):
        with pytest.raises(TypeError_, match="undefined function"):
            compile_source("void main() { nope(); }")

    def test_arity_checked(self):
        with pytest.raises(TypeError_, match="expects"):
            compile_source("int f(int a) { return a; } "
                           "void main() { f(1, 2); }")

    def test_math_intrinsics(self):
        assert _ret("double main() { return Math.sqrt(16.0); }") == 4.0
        assert _ret("double main() { return Math.pow(2.0, 8.0); }") == 256.0
        assert abs(_ret("double main() { return Math.abs(-2.5); }") - 2.5) < 1e-12
