"""Tests for the J32 lexer and parser."""

import pytest

from repro.frontend import LexError, ParseError, parse, tokenize
from repro.frontend import ast
from repro.frontend.lexer import TokKind


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("int foo while whileFoo")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            (TokKind.KEYWORD, "int"),
            (TokKind.IDENT, "foo"),
            (TokKind.KEYWORD, "while"),
            (TokKind.IDENT, "whileFoo"),
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x7fffffff 10L 0x10L 3.5 1e-3 2d")
        values = [(t.kind, t.value) for t in tokens[:-1]]
        assert values == [
            (TokKind.INT, 42),
            (TokKind.INT, 0x7FFFFFFF),
            (TokKind.LONG, 10),
            (TokKind.LONG, 16),
            (TokKind.DOUBLE, 3.5),
            (TokKind.DOUBLE, 1e-3),
            (TokKind.DOUBLE, 2.0),
        ]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\\'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 92]

    def test_operators_longest_match(self):
        tokens = tokenize("a >>> b >> c > d >>>= e")
        ops = [t.text for t in tokens if t.kind is TokKind.OP]
        assert ops == [">>>", ">>", ">", ">>>="]

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n b /* block\n more */ c")
        idents = [t.text for t in tokens if t.kind is TokKind.IDENT]
        assert idents == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        a, b, c = tokens[:3]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* nope")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("int x = #;")


class TestParser:
    def test_function_shape(self):
        unit = parse("int f(int a, double b) { return a; }")
        assert len(unit.functions) == 1
        func = unit.functions[0]
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.ret == ast.INT

    def test_globals(self):
        unit = parse("int g = 5; int[] table; void main() { }")
        assert [g.name for g in unit.globals] == ["g", "table"]
        assert unit.globals[1].type.dims == 1

    def test_precedence(self):
        unit = parse("void main() { int x = 1 + 2 * 3; }")
        decl = unit.functions[0].body.body[0]
        assert isinstance(decl.init, ast.Binary)
        assert decl.init.op == "+"
        assert isinstance(decl.init.rhs, ast.Binary)
        assert decl.init.rhs.op == "*"

    def test_cast_vs_paren(self):
        unit = parse("void main() { int x = (int) 1.5; int y = (x); }")
        body = unit.functions[0].body.body
        assert isinstance(body[0].init, ast.Cast)
        assert isinstance(body[1].init, ast.VarRef)

    def test_array_type_and_new(self):
        unit = parse("void main() { double[][] m = new double[3][4]; }")
        decl = unit.functions[0].body.body[0]
        assert decl.type.dims == 2
        assert isinstance(decl.init, ast.NewArray)
        assert len(decl.init.dims) == 2

    def test_for_loop_components(self):
        unit = parse("void main() { for (int i = 0; i < 5; i++) { } }")
        loop = unit.functions[0].body.body[0]
        assert isinstance(loop, ast.ForStmt)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.update, ast.IncDec)

    def test_do_while(self):
        unit = parse("void main() { int i = 0; do { i++; } while (i < 3); }")
        loop = unit.functions[0].body.body[1]
        assert isinstance(loop, ast.DoWhileStmt)

    def test_ternary(self):
        unit = parse("void main() { int x = 1 < 2 ? 3 : 4; }")
        decl = unit.functions[0].body.body[0]
        assert isinstance(decl.init, ast.Ternary)

    def test_compound_assignment(self):
        unit = parse("void main() { int x = 0; x += 5; x <<= 2; }")
        body = unit.functions[0].body.body
        assert body[1].expr.op == "+="
        assert body[2].expr.op == "<<="

    def test_math_and_length(self):
        unit = parse("void main() { int[] a = new int[3]; "
                     "double d = Math.sqrt(2.0); int n = a.length; }")
        body = unit.functions[0].body.body
        assert isinstance(body[1].init, ast.MathCall)
        assert isinstance(body[2].init, ast.Length)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("void main() { 1 = 2; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void main() { int x = 1 }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse("void main() { if (1 < 2) {")
