"""Corner-case language semantics, checked against Java's rules."""

import pytest

from repro.frontend import TypeError_, compile_source
from repro.ir import sign_extend
from tests.conftest import run_ideal


def _ret(source, args=()):
    result = run_ideal(compile_source(source), args=args)
    if isinstance(result.ret_value, float) or result.ret_value is None:
        return result.ret_value
    return sign_extend(result.ret_value, 64)


class TestIntegerCorners:
    def test_int_min_division_overflow(self):
        # Java: Integer.MIN_VALUE / -1 == Integer.MIN_VALUE.
        assert _ret("int main() { int a = -2147483648; int b = -1; "
                    "return a / b; }") == -2147483648

    def test_int_min_negation(self):
        assert _ret("int main() { int a = -2147483648; return -a; }") \
            == -2147483648

    def test_int_min_remainder(self):
        assert _ret("int main() { int a = -2147483648; int b = -1; "
                    "return a % b; }") == 0

    def test_multiplication_overflow_wraps(self):
        assert _ret("int main() { return 100000 * 100000; }") \
            == sign_extend(100000 * 100000, 32)

    def test_hex_min_literal(self):
        assert _ret("int main() { return 0x80000000; }") == -2147483648

    def test_shift_by_32_is_identity(self):
        assert _ret("int main() { return 5 << 32; }") == 5
        assert _ret("int main() { return -5 >> 32; }") == -5

    def test_long_shift_by_64(self):
        assert _ret("int main() { long v = 5L; return (int)(v << 64); }") == 5

    def test_unsigned_shift_of_negative(self):
        assert _ret("int main() { return -1 >>> 1; }") == 0x7FFFFFFF


class TestNarrowTypeCorners:
    def test_byte_plus_byte_is_int(self):
        # (byte)120 + (byte)120 does not wrap at 8 bits.
        assert _ret("int main() { byte a = (byte)120; byte b = (byte)120; "
                    "return a + b; }") == 240

    def test_char_minus_char(self):
        assert _ret("int main() { char a = 'z'; char b = 'a'; "
                    "return a - b; }") == 25

    def test_short_wraps_at_cast(self):
        assert _ret("int main() { return (short)(32767 + 1); }") == -32768

    def test_char_compound_assignment(self):
        # c += 2 narrows back to char implicitly.
        assert _ret("int main() { char c = (char)65535; c += 2; "
                    "return c; }") == 1

    def test_byte_array_element_negative(self):
        assert _ret("""
            int main() {
                byte[] b = new byte[2];
                b[0] = (byte)0xFF;
                b[1] = (byte)0x7F;
                return b[0] * 1000 + b[1];
            }
        """) == -1000 + 127


class TestDoubleCorners:
    def test_division_produces_double(self):
        assert _ret("double main() { return 1.0 / 4.0; }") == 0.25

    def test_int_div_before_widening(self):
        # 7 / 2 happens in int, THEN widens.
        assert _ret("double main() { double d = 7 / 2; return d; }") == 3.0

    def test_fmod_semantics(self):
        assert _ret("double main() { return 7.5 % 2.0; }") == 1.5

    def test_long_to_double_precision(self):
        assert _ret("double main() { long v = 123456789L; "
                    "return (double) v; }") == 123456789.0

    def test_double_literal_suffix(self):
        assert _ret("double main() { return 2d + 1.5e1; }") == 17.0


class TestControlCorners:
    def test_empty_for_body(self):
        assert _ret("int main() { int i; "
                    "for (i = 0; i < 5; i++) { } return i; }") == 5

    def test_nested_break_only_inner(self):
        source = """
        int main() {
            int n = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 100; j++) {
                    if (j == 2) { break; }
                    n++;
                }
            }
            return n;
        }
        """
        assert _ret(source) == 6

    def test_continue_in_while(self):
        source = """
        int main() {
            int i = 0;
            int n = 0;
            while (i < 10) {
                i++;
                if (i % 2 == 0) { continue; }
                n += i;
            }
            return n;
        }
        """
        assert _ret(source) == 25

    def test_ternary_nested(self):
        assert _ret("int main() { int x = 5; "
                    "return x < 3 ? 1 : x < 7 ? 2 : 3; }") == 2

    def test_dead_code_after_return(self):
        assert _ret("int main() { return 1; int x = 2; return x; }") == 1


class TestErrors:
    @pytest.mark.parametrize("source,message", [
        ("int main() { return 1.5; }", "cast"),
        ("void main() { int x = true; }", "convert"),
        ("void main() { double d; int x = d; }", "cast"),
        ("void main() { int[] a = new int[3]; long l = a; }", "convert"),
        ("void main() { continue; }", "continue"),
    ])
    def test_type_errors(self, source, message):
        with pytest.raises(TypeError_, match=message):
            compile_source(source)
