"""SloTracker: windowed percentiles, burn rate, and shed accounting."""

from repro.serve import SloConfig, SloTracker


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _tracker(**kwargs):
    clock = _Clock()
    return SloTracker(SloConfig(**kwargs), clock=clock), clock


class TestEmptyWindow:
    def test_idle_server_is_healthy(self):
        tracker, _ = _tracker()
        snapshot = tracker.snapshot()
        assert snapshot["ok"] is True
        assert snapshot["requests"] == 0
        assert snapshot["error_rate"] == 0.0
        assert snapshot["burn_rate"] == 0.0


class TestLatency:
    def test_percentiles_are_exact_over_the_window(self):
        tracker, _ = _tracker(target_p95_ms=500.0)
        for ms in range(1, 101):  # 1..100 ms
            tracker.observe(float(ms))
        latency = tracker.snapshot()["latency_ms"]
        assert latency["p50"] == 50.0
        assert latency["p95"] == 95.0
        assert latency["p99"] == 99.0

    def test_p95_breach_flips_the_verdict(self):
        tracker, _ = _tracker(target_p95_ms=10.0)
        for _ in range(20):
            tracker.observe(50.0)
        snapshot = tracker.snapshot()
        assert snapshot["latency_ok"] is False
        assert snapshot["ok"] is False
        assert snapshot["errors_ok"] is True


class TestErrorBudget:
    def test_burn_rate_is_error_rate_over_budget(self):
        tracker, _ = _tracker(target_error_rate=0.01)
        for n in range(100):
            tracker.observe(1.0, error=(n < 2))  # 2% errors
        snapshot = tracker.snapshot()
        assert snapshot["error_rate"] == 0.02
        assert snapshot["burn_rate"] == 2.0
        assert snapshot["errors_ok"] is False
        assert snapshot["error_budget_remaining"] == 0.0

    def test_under_budget_is_healthy(self):
        tracker, _ = _tracker(target_error_rate=0.05)
        for n in range(100):
            tracker.observe(1.0, error=(n == 0))  # 1% errors
        snapshot = tracker.snapshot()
        assert snapshot["burn_rate"] == 0.2
        assert snapshot["ok"] is True


class TestShedding:
    def test_shed_requests_are_not_slo_errors(self):
        """Shedding protects the SLO; counting 429s as failures would
        penalize the mechanism that keeps latency honest."""
        tracker, _ = _tracker(target_error_rate=0.01)
        for _ in range(50):
            tracker.observe(1.0)
        for _ in range(50):
            tracker.observe(0.1, shed=True)
        snapshot = tracker.snapshot()
        assert snapshot["requests"] == 100
        assert snapshot["served"] == 50
        assert snapshot["shed"] == 50
        assert snapshot["error_rate"] == 0.0
        assert snapshot["ok"] is True

    def test_shed_latencies_excluded_from_percentiles(self):
        tracker, _ = _tracker()
        for _ in range(10):
            tracker.observe(100.0)
        for _ in range(90):
            tracker.observe(0.01, shed=True)  # sheds answer instantly
        assert tracker.snapshot()["latency_ms"]["p50"] == 100.0


class TestWindowing:
    def test_observations_age_out(self):
        tracker, clock = _tracker(window_s=60.0)
        tracker.observe(1000.0, error=True)
        clock.now = 61.0
        tracker.observe(1.0)
        snapshot = tracker.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["errors"] == 0
        assert snapshot["latency_ms"]["p95"] == 1.0

    def test_observations_inside_window_survive(self):
        tracker, clock = _tracker(window_s=60.0)
        tracker.observe(5.0)
        clock.now = 59.0
        assert tracker.snapshot()["requests"] == 1
