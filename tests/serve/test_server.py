"""The serve front door: routing, bit-identity, coalescing, shedding."""

import asyncio
import json
import re

import pytest

from repro import api
from repro.core.config import CompileOptions
from repro.serve import ServerConfig, ServerThread
from repro.serve.protocol import run_response, strip_volatile
from repro.telemetry import parse_prometheus_text, sample_value

FAST = "void main() { int x = 7; sink(x); }"

#: slow enough (~0.15s) that a second request reliably arrives while
#: the first is still computing — coalescing/backpressure need overlap
SLOW = """
void main() {
    int t = 0;
    for (int i = 0; i < 25000; i++) { t += i; }
    sink(t);
}
"""

FUEL = 10_000_000


async def http(base_url, method, path, payload=None, timeout=60.0,
               headers=None, parse_json=True):
    """One request; returns (status, headers dict, parsed JSON body)."""
    host, port = base_url.split("://", 1)[1].split(":")
    reader, writer = await asyncio.open_connection(host, int(port))
    try:
        body = (json.dumps(payload).encode() if payload is not None
                else b"")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in (headers or {}).items())
        writer.write((
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode() + body)
        await writer.drain()

        async def _read():
            status = int((await reader.readline()).split()[1])
            response_headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = int(response_headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b"{}"
            parsed = json.loads(raw) if parse_json else raw.decode()
            return status, response_headers, parsed

        return await asyncio.wait_for(_read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(port=0, workers=2,
                                   queue_limit=4)) as thread:
        yield thread


def request(server, method, path, payload=None, timeout=60.0,
            headers=None, parse_json=True):
    return asyncio.run(http(server.base_url, method, path, payload,
                            timeout, headers, parse_json))


class TestRouting:
    def test_healthz(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_limit"] == 4

    def test_metricsz_shape(self, server):
        status, _, body = request(server, "GET", "/metricsz")
        assert status == 200
        assert set(body) >= {"counters", "gauges", "histograms", "cache"}

    def test_unknown_path_is_404(self, server):
        status, _, _ = request(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _, _ = request(server, "GET", "/v1/run")
        assert status == 405
        status, _, _ = request(server, "POST", "/healthz", {})
        assert status == 405

    def test_unknown_v1_endpoint_is_404(self, server):
        status, _, body = request(server, "POST", "/v1/transpile",
                                  {"source": FAST})
        assert status == 404
        assert "transpile" in body["error"]

    def test_malformed_json_is_400(self, server):
        async def _go():
            host, port = server.base_url.split("://", 1)[1].split(":")
            reader, writer = await asyncio.open_connection(host, int(port))
            writer.write(b"POST /v1/run HTTP/1.1\r\n"
                         b"Content-Length: 5\r\n\r\n{nope")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            return status

        assert asyncio.run(_go()) == 400

    def test_bad_source_is_400(self, server):
        status, _, body = request(server, "POST", "/v1/run",
                                  {"source": "void main() { nope"})
        assert status == 400
        assert "does not compile" in body["error"]


class TestBitIdentity:
    def test_served_run_equals_local_run(self, server):
        payload = {"source": FAST, "fuel": FUEL}
        status, _, served = request(server, "POST", "/v1/run", payload)
        assert status == 200
        local = run_response(api.run(FAST, CompileOptions(fuel=FUEL)))
        assert strip_volatile(served) == strip_volatile(local)

    def test_compile_reports_cache_key(self, server):
        payload = {"source": FAST, "fuel": FUEL}
        status, _, first = request(server, "POST", "/v1/compile", payload)
        assert status == 200
        assert first["cache_key"]
        status, _, second = request(server, "POST", "/v1/compile", payload)
        # Same fingerprint; the repeat is answered from the cache.
        assert second["cache_key"] == first["cache_key"]
        assert second["cached"] is True
        assert strip_volatile(second) == strip_volatile(first)

    def test_bench_endpoint(self, server):
        status, _, body = request(
            server, "POST", "/v1/bench",
            {"workload": "huffman", "fuel": 2_000_000,
             "variants": ["baseline", "new algorithm (all)"]},
            timeout=120.0)
        assert status == 200
        assert set(body["cells"]) == {"baseline", "new algorithm (all)"}
        cell = body["cells"]["new algorithm (all)"]
        assert cell["steps"] > 0

    def test_profile_endpoint(self, server):
        status, _, body = request(server, "POST", "/v1/profile",
                                  {"source": SLOW, "fuel": FUEL})
        assert status == 200
        assert body["total_cycles"] > 0
        assert body["hot_blocks"]
        assert body["fingerprint"]


class TestCoalescing:
    def test_identical_inflight_requests_share_one_computation(self):
        config = ServerConfig(port=0, workers=2, queue_limit=8)
        with ServerThread(config) as thread:
            payload = {"source": SLOW, "fuel": FUEL}

            async def burst():
                first = asyncio.ensure_future(
                    http(thread.base_url, "POST", "/v1/run", payload))
                # Let the leader through admission + prepare first.
                await asyncio.sleep(0.05)
                others = [http(thread.base_url, "POST", "/v1/run", payload)
                          for _ in range(3)]
                return await asyncio.gather(first, *others)

            answers = asyncio.run(burst())
            assert [status for status, _, _ in answers] == [200] * 4
            bodies = [strip_volatile(body) for _, _, body in answers]
            assert all(body == bodies[0] for body in bodies)
            coalesced = [body for _, _, body in answers
                         if body.get("coalesced")]
            assert coalesced, "no request was coalesced"
            metrics = thread.server.metrics
            assert metrics.counter_value("serve.coalesced",
                                         endpoint="run") >= 1

    def test_different_requests_do_not_coalesce(self):
        config = ServerConfig(port=0, workers=2, queue_limit=8)
        with ServerThread(config) as thread:
            async def pair():
                return await asyncio.gather(
                    http(thread.base_url, "POST", "/v1/run",
                         {"source": FAST, "fuel": FUEL}),
                    http(thread.base_url, "POST", "/v1/run",
                         {"source": SLOW, "fuel": FUEL}),
                )

            answers = asyncio.run(pair())
            assert [status for status, _, _ in answers] == [200, 200]
            assert thread.server.metrics.counter_value(
                "serve.coalesced", endpoint="run") == 0


class TestBackpressure:
    def test_saturation_sheds_with_retry_after(self):
        config = ServerConfig(port=0, workers=1, queue_limit=1,
                              retry_after=0.25)
        with ServerThread(config) as thread:
            # Distinct sources: coalescing must not absorb the overload.
            filler = {"source": SLOW, "fuel": FUEL}
            extra = {"source": SLOW.replace("t += i", "t += i + 1"),
                     "fuel": FUEL}

            async def overload():
                first = asyncio.ensure_future(
                    http(thread.base_url, "POST", "/v1/run", filler))
                await asyncio.sleep(0.05)  # ensure the filler is admitted
                second = await http(thread.base_url, "POST", "/v1/run",
                                    extra)
                return await first, second

            (s1, _, _), (s2, headers, body) = asyncio.run(overload())
            assert s1 == 200
            assert s2 == 429
            assert headers["retry-after"] == "0.25"
            assert "retry" in body["error"].lower()
            metrics = thread.server.metrics
            assert metrics.counter_value("serve.shed") >= 1

    def test_shed_requests_recover_after_drain(self):
        config = ServerConfig(port=0, workers=1, queue_limit=1)
        with ServerThread(config) as thread:
            payload = {"source": FAST, "fuel": FUEL}
            status, _, _ = request(thread, "POST", "/v1/run", payload)
            assert status == 200  # nothing in flight: admitted again


class TestTracing:
    def test_every_response_carries_a_trace_id(self, server):
        status, headers, body = request(server, "POST", "/v1/run",
                                        {"source": FAST, "fuel": FUEL})
        assert status == 200
        trace_id = headers["x-repro-trace-id"]
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        assert body["trace_id"] == trace_id

    def test_inbound_trace_id_is_honoured(self, server):
        status, headers, body = request(
            server, "POST", "/v1/run", {"source": FAST, "fuel": FUEL},
            headers={"X-Repro-Trace-Id": "caller-chose.this-1"})
        assert status == 200
        assert headers["x-repro-trace-id"] == "caller-chose.this-1"
        assert body["trace_id"] == "caller-chose.this-1"

    def test_invalid_inbound_trace_id_is_replaced(self, server):
        _, headers, _ = request(
            server, "GET", "/healthz",
            headers={"X-Repro-Trace-Id": "spaces are not legal"})
        assert re.fullmatch(r"[0-9a-f]{16}",
                            headers["x-repro-trace-id"])

    def test_error_responses_carry_the_trace_id(self, server):
        status, headers, body = request(
            server, "GET", "/nope",
            headers={"X-Repro-Trace-Id": "lost-404"})
        assert status == 404
        assert headers["x-repro-trace-id"] == "lost-404"
        assert body["trace_id"] == "lost-404"

    def test_debugz_resolves_a_trace_to_stages_and_spans(self, server):
        request(server, "POST", "/v1/run",
                {"source": FAST, "fuel": FUEL},
                headers={"X-Repro-Trace-Id": "find-me-1"})
        status, _, body = request(server, "GET", "/debugz?trace=find-me-1")
        assert status == 200
        assert len(body["records"]) == 1
        record = body["records"][0]
        assert record["endpoint"] == "run"
        assert record["status"] == 200
        # The request's journey is visible stage by stage...
        for stage in ("request", "admission", "parse", "coalesce",
                      "execute"):
            assert stage in record["stages"]
        # ...and the worker's span forest was merged into the request's.
        span_names = set()

        def _collect(spans):
            for span in spans:
                span_names.add(span["name"])
                _collect(span.get("children", []))

        _collect(record["spans"])
        assert "merged:worker:find-me-1" in span_names
        assert "work:run" in span_names

    def test_debugz_filters_by_status(self, server):
        request(server, "GET", "/definitely-not-a-route")
        status, _, body = request(server, "GET", "/debugz?errors=1")
        assert status == 200
        assert body["records"]
        assert all(r["status"] >= 400 for r in body["records"])


class TestErrorAccounting:
    def test_error_kinds_are_labelled(self):
        config = ServerConfig(port=0, workers=1, queue_limit=4)
        with ServerThread(config) as thread:
            request(thread, "GET", "/nope")
            request(thread, "POST", "/v1/run",
                    {"source": "void main() { nope"})
            request(thread, "POST", "/v1/run", {"source": 42})
            metrics = thread.server.metrics
            assert metrics.counter_value("serve.errors",
                                         kind="not_found") == 1
            assert metrics.counter_value("serve.errors",
                                         kind="protocol") == 2

    def test_debug_fail_is_inert_without_the_hook(self, server):
        status, _, _ = request(server, "POST", "/v1/run",
                               {"source": FAST, "fuel": FUEL,
                                "debug_fail": True})
        assert status == 200


class TestFlightDump:
    def test_forced_500_dumps_the_ring_with_stage_timings(self, tmp_path):
        config = ServerConfig(port=0, workers=1, queue_limit=4,
                              debug_hooks=True, flight_dir=tmp_path)
        with ServerThread(config) as thread:
            # A healthy request first, so the dump proves the whole
            # ring is preserved, not just the failing record.
            request(thread, "POST", "/v1/run",
                    {"source": FAST, "fuel": FUEL},
                    headers={"X-Repro-Trace-Id": "healthy-1"})
            status, _, body = request(
                thread, "POST", "/v1/run",
                {"source": FAST, "fuel": FUEL, "debug_fail": True},
                headers={"X-Repro-Trace-Id": "doomed-1"})
            assert status == 500
            assert "debug_fail" in body["error"]
            assert body["trace_id"] == "doomed-1"
            assert thread.server.metrics.counter_value(
                "serve.errors", kind="internal") == 1

            dumps = sorted(tmp_path.glob("flight-*.jsonl"))
            assert len(dumps) == 1
            assert dumps[0].name.endswith("-doomed-1.jsonl")
            records = [json.loads(line)
                       for line in dumps[0].read_text().splitlines()]
            assert [r["trace_id"] for r in records] == [
                "healthy-1", "doomed-1",
            ]
            doomed = records[-1]
            assert doomed["status"] == 500
            # The hook fires after parse, so the dump shows exactly how
            # far the request got before it died.
            assert doomed["stages"]["parse"] >= 0
            assert "execute" not in doomed["stages"]


class TestPrometheusExposition:
    def test_format_query_parameter_wins(self, server):
        request(server, "POST", "/v1/run", {"source": FAST, "fuel": FUEL})
        status, headers, text = request(
            server, "GET", "/metricsz?format=prometheus",
            parse_json=False)
        assert status == 200
        assert headers["content-type"].startswith(
            "text/plain; version=0.0.4")
        samples = parse_prometheus_text(text)
        assert sample_value(samples, "serve_requests_total",
                            endpoint="run") >= 1
        # Histogram families export as summaries with quantile labels.
        assert sample_value(samples, "serve_latency_ms",
                            endpoint="run", quantile="0.95") is not None
        assert sample_value(samples, "serve_latency_ms_count",
                            endpoint="run") >= 1
        # SLO and flight state ride along as gauges for scrapers.
        assert sample_value(samples, "serve_slo_ok") is not None
        assert sample_value(samples, "serve_uptime_s") > 0

    def test_accept_header_negotiates_text(self, server):
        status, headers, text = request(
            server, "GET", "/metricsz", parse_json=False,
            headers={"Accept": "text/plain"})
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        parse_prometheus_text(text)  # must be valid exposition text

    def test_json_remains_the_default(self, server):
        status, headers, body = request(server, "GET", "/metricsz")
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert set(body) >= {"counters", "gauges", "histograms", "cache",
                             "slo", "flight", "server"}

    def test_explicit_json_format_overrides_accept(self, server):
        status, _, body = request(
            server, "GET", "/metricsz?format=json",
            headers={"Accept": "text/plain"})
        assert status == 200
        assert "counters" in body


class TestHealthz:
    def test_reports_identity_and_slo(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["started_unix"] > 0
        assert body["uptime_s"] >= 0
        assert re.fullmatch(r"[0-9a-f]{16}", body["config_fingerprint"])
        assert body["slo"]["window_s"] > 0
        assert "burn_rate" in body["slo"]
        assert body["flight"]["capacity"] > 0

    def test_degrades_but_stays_200_after_5xx_burst(self, tmp_path):
        config = ServerConfig(port=0, workers=1, queue_limit=4,
                              debug_hooks=True,
                              slo_target_error_rate=0.01)
        with ServerThread(config) as thread:
            for _ in range(3):
                request(thread, "POST", "/v1/run",
                        {"source": FAST, "fuel": FUEL,
                         "debug_fail": True})
            status, _, body = request(thread, "GET", "/healthz")
            assert status == 200  # liveness: never fail the probe
            assert body["status"] == "degraded"
            assert body["slo"]["ok"] is False
            assert body["slo"]["burn_rate"] > 1.0


class TestKeepAlive:
    def test_two_requests_on_one_connection(self, server):
        async def _go():
            host, port = server.base_url.split("://", 1)[1].split(":")
            reader, writer = await asyncio.open_connection(host, int(port))
            try:
                for _ in range(2):
                    writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                    await writer.drain()
                    status = int((await reader.readline()).split()[1])
                    assert status == 200
                    length = 0
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                        name, _, value = line.decode().partition(":")
                        if name.strip().lower() == "content-length":
                            length = int(value.strip())
                    await reader.readexactly(length)
            finally:
                writer.close()

        asyncio.run(_go())
