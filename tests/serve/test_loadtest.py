"""The load-test client: planning, verification, perf recording."""

import pytest

from repro.perf import HistoryStore, PerfRecorder
from repro.serve import (
    Loadtest,
    LoadtestConfig,
    LoadtestReport,
    ServerConfig,
    ServerThread,
    record_report,
)

FUEL = 1_000_000


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(port=0, workers=2,
                                   queue_limit=16)) as thread:
        yield thread


class TestPlanning:
    def test_plan_is_seeded(self):
        config = LoadtestConfig(requests=10, seed=42)
        assert Loadtest(config).plan() == Loadtest(config).plan()

    def test_different_seeds_differ(self):
        a = Loadtest(LoadtestConfig(requests=20, seed=1)).plan()
        b = Loadtest(LoadtestConfig(requests=20, seed=2)).plan()
        assert a != b

    def test_plan_respects_the_mix(self):
        config = LoadtestConfig(requests=30, ops=("compile",),
                                kernels=("sum8",))
        plan = Loadtest(config).plan()
        assert {op for op, _ in plan} == {"compile"}
        assert all(payload["source"] for _, payload in plan)


class TestClosedLoop:
    def test_campaign_verifies_bit_identity(self, server):
        config = LoadtestConfig(url=server.base_url, requests=16,
                                concurrency=4, fuel=FUEL, seed=3)
        report = Loadtest(config).run()
        assert report.ok, report.mismatches
        assert report.completed == 16
        assert report.verified > 0
        assert report.latencies_ms
        assert report.wall_seconds > 0

    def test_identical_burst_coalesces(self):
        # One kernel, runs only: concurrent clients all ask for the
        # same computation, so the server must coalesce some of them.
        config = ServerConfig(port=0, workers=2, queue_limit=32)
        with ServerThread(config) as thread:
            campaign = LoadtestConfig(
                url=thread.base_url, requests=12, concurrency=6,
                ops=("run",), kernels=("sum8",), fuel=FUEL, seed=0)
            report = Loadtest(campaign).run()
            assert report.ok, report.mismatches
            assert report.coalesced > 0


class TestOpenLoop:
    def test_open_loop_sheds_under_saturation(self, monkeypatch):
        # Saturation must not depend on host speed: inject kernels
        # whose execution (never cached) far outlasts the 2.5ms
        # inter-arrival gap, so a 1-worker queue_limit=2 server is
        # structurally overwhelmed by the 400 req/s schedule.
        from repro.serve import loadtest as loadtest_module

        slow = ("void main() {{ int t = {}; "
                "for (int i = 0; i < 25000; i++) {{ t += i; }} "
                "sink(t); }}")
        for n in range(3):
            monkeypatch.setitem(loadtest_module.BUILTIN_SOURCES,
                                f"slow{n}", slow.format(n))
        config = ServerConfig(port=0, workers=1, queue_limit=2)
        with ServerThread(config) as thread:
            campaign = LoadtestConfig(
                url=thread.base_url, requests=20, mode="open",
                rate=400.0, ops=("run",),
                kernels=("slow0", "slow1", "slow2"),
                fuel=FUEL, seed=5, verify=False)
            report = Loadtest(campaign).run()
            # Offered far beyond capacity: some requests must be shed,
            # and shedding is not an error.
            assert report.shed > 0
            assert report.errors == 0
            assert report.completed + report.shed == 20


class TestTraceExport:
    def test_campaign_exports_correlated_span_forest(self, server,
                                                     tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        config = LoadtestConfig(url=server.base_url, requests=6,
                                concurrency=2, fuel=FUEL, seed=7,
                                trace_path=str(trace_path),
                                trace_samples=3)
        report = Loadtest(config).run()
        assert report.ok, report.mismatches
        assert len(report.trace_ids) == report.completed
        assert all(tid.startswith("lt-") for tid in report.trace_ids)
        # At least one sampled trace resolved on the server side.
        assert report.correlated >= 1
        assert report.trace_path == str(trace_path)
        assert report.to_dict()["correlated"] == report.correlated

        document = json.loads(trace_path.read_text())
        names = [event["name"]
                 for event in document["traceEvents"]]
        # One forest holds both halves of the conversation: the
        # client-side request spans and the server-side span trees
        # fetched back from /debugz — matched by trace id.
        assert any(name.startswith("merged:client:lt-")
                   for name in names)
        assert any(name.startswith("merged:server:lt-")
                   for name in names)
        # The server half carries the worker's compile spans too.
        assert any(name.startswith("merged:worker:lt-")
                   for name in names)
        client_ids = {name.split("client:", 1)[1] for name in names
                      if name.startswith("merged:client:")}
        server_ids = {name.split("server:", 1)[1] for name in names
                      if name.startswith("merged:server:")}
        assert server_ids and server_ids <= client_ids

    def test_no_trace_path_means_no_correlation_work(self, server):
        config = LoadtestConfig(url=server.base_url, requests=4,
                                concurrency=2, fuel=FUEL, seed=8)
        report = Loadtest(config).run()
        assert report.ok
        assert report.correlated == 0
        assert report.trace_path is None


class TestReport:
    def test_percentiles_are_exact(self):
        report = LoadtestReport(mode="closed", offered=4)
        report.latencies_ms = [1.0, 2.0, 3.0, 4.0]
        assert report.percentile(0.50) == 2.0
        assert report.percentile(1.00) == 4.0
        assert report.percentile(0.01) == 1.0

    def test_empty_report(self):
        report = LoadtestReport(mode="closed", offered=0)
        assert report.percentile(0.99) == 0.0
        document = report.to_dict()
        assert document["latency_ms"]["p50"] == 0.0
        assert document["throughput_rps"] == 0.0

    def test_to_dict_shape(self):
        report = LoadtestReport(mode="open", offered=2, completed=2,
                                wall_seconds=1.0)
        report.latencies_ms = [5.0, 15.0]
        report.by_status = {200: 2}
        document = report.to_dict()
        assert document["throughput_rps"] == 2.0
        assert document["by_status"] == {"200": 2}
        assert document["latency_ms"]["max"] == 15.0


class TestPerfRecording:
    def test_report_lands_in_history(self, tmp_path):
        report = LoadtestReport(mode="closed", offered=10, completed=9,
                                shed=1, coalesced=2, wall_seconds=2.0)
        report.latencies_ms = [float(i) for i in range(1, 10)]
        report.by_status = {200: 9, 429: 1}
        recorder = PerfRecorder(HistoryStore(tmp_path), source="loadtest")
        record_report(report, recorder, LoadtestConfig())

        records = HistoryStore(tmp_path).records()
        assert len(records) == 1
        record = records[0]
        assert record.engine == "serve"
        assert record.source == "loadtest"
        assert record.workload == "loadtest-closed"
        assert record.measures["p50_ms"] == 5.0
        assert record.measures["shed"] == 1.0
        assert record.counters["loadtest.status.200"] == 9
