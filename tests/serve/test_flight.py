"""FlightRecorder: the ring, the filters, and the 5xx dump artifact."""

import json

import pytest

from repro.serve import FlightRecorder, RequestRecord


def _record(trace_id="t", status=200, duration_ms=1.0, **kwargs):
    return RequestRecord(
        trace_id=trace_id,
        endpoint=kwargs.pop("endpoint", "run"),
        method="POST",
        status=status,
        started_unix=1_754_000_000.0,
        duration_ms=duration_ms,
        **kwargs,
    )


class TestRing:
    def test_records_get_monotonic_seq(self):
        recorder = FlightRecorder(capacity=8)
        for n in range(3):
            recorder.record(_record(trace_id=f"t{n}"))
        seqs = [r["seq"] for r in recorder.snapshot()]
        assert seqs == [3, 2, 1]  # newest first

    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(capacity=2)
        for n in range(5):
            recorder.record(_record(trace_id=f"t{n}"))
        ids = [r["trace_id"] for r in recorder.snapshot()]
        assert ids == ["t4", "t3"]
        assert recorder.stats()["recorded"] == 5
        assert recorder.stats()["size"] == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSnapshot:
    def _filled(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record(_record(trace_id="ok-1", status=200))
        recorder.record(_record(trace_id="shed", status=429))
        recorder.record(_record(trace_id="boom", status=500,
                                error="kaput"))
        recorder.record(_record(trace_id="ok-2", status=200))
        return recorder

    def test_filter_by_trace_id(self):
        records = self._filled().snapshot(trace_id="boom")
        assert len(records) == 1
        assert records[0]["error"] == "kaput"

    def test_filter_by_min_status(self):
        records = self._filled().snapshot(min_status=400)
        assert [r["trace_id"] for r in records] == ["boom", "shed"]

    def test_limit_takes_newest(self):
        records = self._filled().snapshot(limit=2)
        assert [r["trace_id"] for r in records] == ["ok-2", "boom"]

    def test_record_shape_rounds_floats(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(_record(duration_ms=1.23456,
                                stages={"parse": 0.98765}))
        record = recorder.snapshot()[0]
        assert record["duration_ms"] == 1.235
        assert record["stages"]["parse"] == 0.988


class TestDump:
    def test_5xx_dumps_entire_ring_as_jsonl(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path)
        recorder.record(_record(trace_id="before", status=200))
        path = recorder.record(_record(trace_id="crash", status=500))
        assert path is not None and path.exists()
        assert path.name == "flight-00000002-crash.jsonl"
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [l["trace_id"] for l in lines] == ["before", "crash"]
        assert recorder.stats()["dumps_written"] == 1

    def test_2xx_and_4xx_do_not_dump(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path)
        assert recorder.record(_record(status=200)) is None
        assert recorder.record(_record(status=429)) is None
        assert list(tmp_path.iterdir()) == []

    def test_no_dump_dir_means_no_artifacts(self):
        recorder = FlightRecorder(capacity=8)
        assert recorder.record(_record(status=500)) is None
        assert recorder.stats()["dumps_written"] == 0
