"""``repro top``: sampling a live server and rendering the dashboard."""

import json

import pytest

from repro.serve import ServerConfig, ServerThread, TopClient, TopConfig
from repro.serve.top import _family_total, render, run_top
from tests.serve.test_server import FAST, FUEL, request


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServerConfig(port=0, workers=2,
                                   queue_limit=4)) as thread:
        request(thread, "POST", "/v1/run", {"source": FAST, "fuel": FUEL},
                headers={"X-Repro-Trace-Id": "top-seed-1"})
        request(thread, "GET", "/nope")  # one 404 for the error counter
        yield thread


def _client(server, **overrides):
    return TopClient(TopConfig(url=server.base_url, **overrides))


class TestFamilyTotal:
    def test_sums_all_labelled_series(self):
        counters = {
            "serve.requests{endpoint=run}": 3,
            "serve.requests{endpoint=compile}": 2,
            "serve.requests": 1,
            "serve.requests_other": 99,  # different family, not summed
        }
        assert _family_total(counters, "serve.requests") == 6.0

    def test_missing_family_is_zero(self):
        assert _family_total({}, "serve.requests") == 0.0


class TestSampling:
    def test_sample_reduces_the_three_endpoints(self, server):
        sample = _client(server).sample()
        assert sample.ok is True
        assert sample.error is None
        assert sample.totals["requests"] >= 2
        assert sample.totals["errors"] >= 1
        assert sample.health["queue_limit"] == 4
        assert sample.slo["window_s"] > 0
        assert sample.flight["capacity"] > 0
        assert sample.queue_depth == 0

    def test_hottest_rows_come_from_the_flight_ring(self, server):
        sample = _client(server).sample()
        ids = [row["trace_id"] for row in sample.hottest]
        assert "top-seed-1" in ids
        durations = [row["duration_ms"] for row in sample.hottest]
        assert durations == sorted(durations, reverse=True)

    def test_rates_need_two_polls(self, server):
        client = _client(server)
        first = client.sample()
        assert first.rates == {"requests": 0.0, "errors": 0.0,
                               "shed": 0.0, "coalesced": 0.0}
        request(server, "POST", "/v1/run", {"source": FAST, "fuel": FUEL})
        second = client.sample(previous=first)
        assert second.rates["requests"] > 0.0

    def test_unreachable_server_reports_not_crashes(self):
        client = TopClient(TopConfig(url="http://127.0.0.1:9",
                                     timeout=0.5))
        sample = client.sample()
        assert sample.ok is False
        assert sample.error

    def test_to_dict_is_json_serializable(self, server):
        document = json.loads(json.dumps(_client(server)
                                         .sample().to_dict()))
        assert document["ok"] is True


class TestRendering:
    def test_render_shows_the_operational_picture(self, server):
        config = TopConfig(url=server.base_url)
        text = render(TopClient(config).sample(), config)
        assert server.base_url in text
        assert "throughput" in text
        assert "SLO" in text
        assert "p95" in text
        assert "top-seed-1" in text

    def test_render_unreachable(self):
        config = TopConfig(url="http://127.0.0.1:9")
        client = TopClient(TopConfig(url="http://127.0.0.1:9",
                                     timeout=0.5))
        text = render(client.sample(), config)
        assert "unreachable" in text


class TestOnceMode:
    def _run(self, config, **kwargs):
        chunks = []

        def write(*args, **print_kwargs):
            chunks.extend(str(a) for a in args)

        code = run_top(config, once=True, write=write, **kwargs)
        return code, "".join(chunks)

    def test_once_json_emits_one_document(self, server):
        code, output = self._run(TopConfig(url=server.base_url),
                                 as_json=True)
        assert code == 0
        document = json.loads(output)
        assert document["ok"] is True
        assert document["totals"]["requests"] >= 2

    def test_once_human_readable(self, server):
        code, output = self._run(TopConfig(url=server.base_url))
        assert code == 0
        assert "repro top" in output

    def test_once_exit_code_on_unreachable(self):
        code, output = self._run(TopConfig(url="http://127.0.0.1:9",
                                           timeout=0.5), as_json=True)
        assert code == 1
        assert json.loads(output)["ok"] is False
