"""Request validation and deterministic response rendering."""

import pytest

from repro import api
from repro.core.config import DEFAULT_VARIANT, CompileOptions
from repro.serve.protocol import (
    ProtocolError,
    VOLATILE_KEYS,
    load_program,
    parse_request,
    run_response,
    strip_volatile,
)

SOURCE = "void main() { int x = 5; sink(x); }"


class TestParseRequest:
    def test_defaults(self):
        job = parse_request("run", {"source": SOURCE})
        assert job.variant == DEFAULT_VARIANT
        assert job.machine == "ia64"
        assert job.engine == "closure"
        assert job.fuel == 100_000_000

    def test_workload_form(self):
        job = parse_request("run", {"workload": "huffman"})
        assert job.workload == "huffman"
        assert job.source is None

    @pytest.mark.parametrize("payload", [
        {},                                         # neither
        {"source": SOURCE, "workload": "huffman"},  # both
        [],                                         # not an object
        {"source": 42},                             # mistyped
        {"source": SOURCE, "variant": "nope"},
        {"source": SOURCE, "machine": "mips"},
        {"source": SOURCE, "engine": "jit"},
        {"source": SOURCE, "fuel": -1},
        {"source": SOURCE, "fuel": "lots"},
        {"source": SOURCE, "fuel": True},
        {"source": SOURCE, "fuel": 10**18},
        {"source": SOURCE, "variants": ["baseline"]},  # bench-only field
    ])
    def test_rejected_payloads(self, payload):
        with pytest.raises(ProtocolError) as err:
            parse_request("run", payload)
        assert err.value.status == 400

    def test_unknown_endpoint_is_404(self):
        with pytest.raises(ProtocolError) as err:
            parse_request("transpile", {"source": SOURCE})
        assert err.value.status == 404

    def test_bench_requires_workload(self):
        with pytest.raises(ProtocolError):
            parse_request("bench", {"source": SOURCE})
        job = parse_request("bench", {
            "workload": "huffman",
            "variants": ["baseline", "new algorithm (all)", "baseline"],
        })
        # deduplicated, order kept
        assert job.variants == ("baseline", "new algorithm (all)")

    def test_bench_rejects_unknown_variants(self):
        with pytest.raises(ProtocolError) as err:
            parse_request("bench", {"workload": "huffman",
                                    "variants": ["nope"]})
        assert "nope" in str(err.value)


class TestLoadProgram:
    def test_source(self):
        program = load_program(parse_request("run", {"source": SOURCE}))
        assert "main" in program.functions

    def test_workload(self):
        program = load_program(
            parse_request("run", {"workload": "huffman"}))
        assert program.functions

    def test_bad_source_is_protocol_error(self):
        job = parse_request("run", {"source": "void main() { nope"})
        with pytest.raises(ProtocolError) as err:
            load_program(job)
        assert err.value.status == 400
        assert "does not compile" in str(err.value)

    def test_unknown_workload_is_protocol_error(self):
        job = parse_request("run", {"workload": "nope"})
        with pytest.raises(ProtocolError) as err:
            load_program(job)
        assert "unknown workload" in str(err.value)


class TestRunResponse:
    def test_renders_and_is_deterministic(self):
        options = CompileOptions(fuel=1_000_000)
        first = run_response(api.run(SOURCE, options))
        second = run_response(api.run(SOURCE, options))
        assert first == second
        assert first["verified"] is True
        assert first["checksum"] == first["gold_checksum"]
        assert set(first["cycles"]) == {"total", "extend_cycles"}

    def test_strip_volatile(self):
        document = {"checksum": 1, "cached": True, "coalesced": False,
                    "timing_ms": 3.2, "cache_key": "abc"}
        stripped = strip_volatile(document)
        assert stripped == {"checksum": 1}
        assert VOLATILE_KEYS.isdisjoint(stripped)
