"""The minimal HTTP/1.1 layer: parsing, limits, rendering."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    Response,
    error_response,
    read_request,
)


def parse(raw: bytes, max_body_bytes: int = 1 << 20):
    """Feed ``raw`` to read_request on a throwaway event loop."""

    async def _go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(_go())


class TestReadRequest:
    def test_post_with_body(self):
        body = b'{"x": 1}'
        raw = (b"POST /v1/run HTTP/1.1\r\n"
               b"Content-Type: application/json\r\n"
               + f"Content-Length: {len(body)}\r\n\r\n".encode()
               + body)
        request = parse(raw)
        assert request.method == "POST"
        assert request.target == "/v1/run"
        assert request.json() == {"x": 1}

    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""
        assert request.keep_alive

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/9.9\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413_before_reading(self):
        raw = (b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"
               + b"x" * 1000)
        with pytest.raises(HttpError) as err:
            parse(raw, max_body_bytes=10)
        assert err.value.status == 413

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_too_many_headers(self):
        headers = b"".join(f"H{i}: v\r\n".encode() for i in range(100))
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert err.value.status == 400

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing: Value\r\n\r\n")
        assert request.headers["x-thing"] == "Value"


class TestRequestJson:
    def test_empty_body_rejected(self):
        with pytest.raises(HttpError) as err:
            Request("POST", "/", {}, b"").json()
        assert err.value.status == 400

    def test_malformed_json_rejected(self):
        with pytest.raises(HttpError) as err:
            Request("POST", "/", {}, b"{nope").json()
        assert err.value.status == 400


class TestResponse:
    def test_round_trips_through_parser(self):
        raw = Response(payload={"b": 2, "a": 1}).to_bytes()
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"a": 1, "b": 2}

    def test_payload_is_deterministic(self):
        a = Response(payload={"b": 2, "a": 1}).to_bytes()
        b = Response(payload={"a": 1, "b": 2}).to_bytes()
        assert a == b

    def test_extra_headers_rendered(self):
        raw = error_response(429, "slow down",
                             headers=[("Retry-After", "0.5")]).to_bytes()
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Retry-After: 0.5" in raw

    def test_error_payload_carries_status(self):
        raw = error_response(404, "gone").to_bytes()
        body = raw.partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"error": "gone", "status": 404}
