"""Metrics registry: instruments, labels, merge, export."""

import pytest

from repro.telemetry import MetricsRegistry


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.counter("eliminated").inc()
        registry.counter("eliminated").inc(2)
        assert registry.counter_value("eliminated") == 3

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("eliminated", width=32).inc(5)
        registry.counter("eliminated", width=16).inc(1)
        assert registry.counter_value("eliminated", width=32) == 5
        assert registry.counter_value("eliminated", width=16) == 1
        assert registry.counter_value("eliminated") == 0

    def test_counter_family(self):
        registry = MetricsRegistry()
        registry.counter("hits", theorem=1).inc(2)
        registry.counter("hits", theorem=3).inc(1)
        family = registry.counter_family("hits")
        assert family == {"hits{theorem=1}": 2, "hits{theorem=3}": 1}

    def test_counter_family_is_sorted(self):
        """Families come back key-sorted regardless of creation order,
        so JSON dumps of metrics are byte-stable across runs."""
        registry = MetricsRegistry()
        registry.counter("hits", theorem=3).inc(1)
        registry.counter("hits", theorem=1).inc(2)
        registry.counter("hits").inc(7)
        family = registry.counter_family("hits")
        assert list(family) == sorted(family)
        assert list(family) == ["hits", "hits{theorem=1}",
                                "hits{theorem=3}"]

    def test_counters_reject_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("fuel").set(100)
        registry.gauge("fuel").set(42)
        assert registry.gauge("fuel").value == 42

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        for value in (1, 2, 3, 100):
            h.observe(value)
        data = h.as_dict()
        assert data["count"] == 4
        assert data["sum"] == 106
        assert data["min"] == 1
        assert data["max"] == 100

    def test_histogram_power_of_two_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        h.observe(3)   # -> bucket 4
        h.observe(4)   # -> bucket 4
        h.observe(5)   # -> bucket 8
        assert h.buckets == {4: 2, 8: 1}


class TestQuantiles:
    def _histogram(self, values):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        for value in values:
            h.observe(value)
        return h

    def test_empty_histogram_has_no_quantiles(self):
        h = self._histogram([])
        assert h.quantile(0.5) is None
        data = h.as_dict()
        assert data["p50"] is None and data["p95"] is None

    def test_single_observation_is_every_quantile(self):
        h = self._histogram([42])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 42

    def test_quantiles_bounded_by_min_max(self):
        h = self._histogram([3, 5, 9, 17, 900])
        for q in (0.01, 0.5, 0.99):
            assert h.min <= h.quantile(q) <= h.max

    def test_quantiles_monotone_in_q(self):
        h = self._histogram(range(1, 200, 7))
        estimates = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert estimates == sorted(estimates)

    def test_p50_lands_in_the_median_bucket(self):
        # 10 observations in bucket 4, 1 in bucket 1024: the median is
        # in the low bucket no matter how extreme the outlier.
        h = self._histogram([3] * 10 + [1000])
        assert h.quantile(0.5) <= 4

    def test_quantile_rejects_out_of_range(self):
        h = self._histogram([1])
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_as_dict_exports_p50_p95_p99(self):
        data = self._histogram(range(1, 101)).as_dict()
        assert data["p50"] is not None
        assert data["p50"] <= data["p95"] <= data["p99"] <= data["max"]

    def test_merge_preserves_quantile_estimates(self):
        """Merging two histograms gives the same quantiles as one
        histogram fed both streams — merge is bucket-exact."""
        left = self._histogram([1, 3, 9, 100])
        right = self._histogram([2, 5, 700, 40])
        combined = self._histogram([1, 3, 9, 100, 2, 5, 700, 40])
        left.merge(right)
        for q in (0.25, 0.5, 0.95, 0.99):
            assert left.quantile(q) == combined.quantile(q)
        assert left.as_dict() == combined.as_dict()


class TestMerge:
    def test_merge_sums_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.counter("only_b", width=8).inc(4)
        a.merge(b)
        assert a.counter_value("n") == 3
        assert a.counter_value("only_b", width=8) == 4

    def test_merge_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1)
        b.histogram("h").observe(1000)
        a.merge(b)
        data = a.histogram("h").as_dict()
        assert data["count"] == 2
        assert data["min"] == 1
        assert data["max"] == 1000

    def test_merge_keeps_other_gauge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g").set(7)
        a.merge(b)
        assert a.gauge("g").value == 7


class TestExport:
    def test_as_dict_renders_series_names(self):
        registry = MetricsRegistry()
        registry.counter("eliminated", width=32, cause="use").inc(2)
        registry.gauge("fuel").set(10)
        registry.histogram("lat").observe(5)
        data = registry.as_dict()
        assert data["counters"] == {
            "eliminated{cause=use,width=32}": 2,
        }
        assert data["gauges"] == {"fuel": 10}
        assert data["histograms"]["lat"]["count"] == 1
