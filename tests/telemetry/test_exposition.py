"""Prometheus exposition: rendering, grammar, and the parser gate."""

import math

import pytest

from repro.telemetry import (
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
    sample_value,
)


def _registry():
    registry = MetricsRegistry()
    registry.counter("serve.requests", endpoint="run").inc(3)
    registry.counter("serve.requests", endpoint="compile").inc()
    registry.counter("serve.shed").inc(2)
    registry.gauge("serve.queue_depth").set(4)
    histogram = registry.histogram("serve.latency_ms", endpoint="run")
    for value in (1.0, 2.0, 4.0, 8.0, 100.0):
        histogram.observe(value)
    return registry


class TestNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.latency_ms") == "serve_latency_ms"

    def test_leading_digit_is_prefixed(self):
        assert prometheus_name("9lives")[0] not in "0123456789"

    def test_already_valid_name_unchanged(self):
        assert prometheus_name("process_cpu_seconds") == \
            "process_cpu_seconds"


class TestRendering:
    def test_counters_render_with_total_suffix_and_type(self):
        text = render_prometheus(_registry())
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{endpoint="run"} 3' in text
        assert 'serve_requests_total{endpoint="compile"} 1' in text
        assert "serve_shed_total 2" in text

    def test_gauges_render_verbatim(self):
        text = render_prometheus(_registry())
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 4" in text

    def test_histograms_render_as_summaries(self):
        text = render_prometheus(_registry())
        assert "# TYPE serve_latency_ms summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.99"' in text
        assert 'serve_latency_ms_count{endpoint="run"} 5' in text
        assert 'serve_latency_ms_sum{endpoint="run"} 115' in text

    def test_summary_quantiles_reuse_histogram_interpolation(self):
        registry = _registry()
        histogram = registry.histogram("serve.latency_ms", endpoint="run")
        samples = parse_prometheus_text(render_prometheus(registry))
        for q in (0.5, 0.95, 0.99):
            rendered = sample_value(samples, "serve_latency_ms",
                                    endpoint="run", quantile=format(q, "g"))
            assert rendered == pytest.approx(histogram.quantile(q))

    def test_output_is_deterministic(self):
        assert render_prometheus(_registry()) == \
            render_prometheus(_registry())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        samples = parse_prometheus_text(text)
        assert samples[0]["labels"]["path"] == 'a"b\\c\nd'


class TestParser:
    def test_round_trip(self):
        registry = _registry()
        samples = parse_prometheus_text(render_prometheus(registry))
        assert sample_value(samples, "serve_requests_total",
                            endpoint="run") == 3.0
        assert sample_value(samples, "serve_queue_depth") == 4.0

    def test_comments_and_blanks_ignored(self):
        samples = parse_prometheus_text(
            "# HELP x nothing\n\n# TYPE x counter\nx_total 1\n")
        assert len(samples) == 1

    def test_malformed_sample_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus_text("ok 1\n!!! not a sample\n")

    def test_malformed_labels_raise(self):
        with pytest.raises(ValueError, match="label"):
            parse_prometheus_text('c{key=unquoted} 1\n')

    def test_malformed_value_raises(self):
        with pytest.raises(ValueError, match="value"):
            parse_prometheus_text("c nope\n")

    def test_special_values_parse(self):
        samples = parse_prometheus_text("a NaN\nb +Inf\nc -Inf\n")
        assert math.isnan(samples[0]["value"])
        assert samples[1]["value"] == math.inf
        assert samples[2]["value"] == -math.inf

    def test_sample_value_requires_exact_label_match(self):
        samples = parse_prometheus_text('c{a="1",b="2"} 5\n')
        assert sample_value(samples, "c", a="1", b="2") == 5.0
        assert sample_value(samples, "c", a="1") is None
        assert sample_value(samples, "missing") is None
