"""Decision log: one explainable record per elimination candidate.

The theorem kernels mirror tests/core/test_theorems.py; here the
assertion is not just *that* the extension went away but that the
decision log says *why* — verdict, cause, theorem attribution, and a
non-empty reason chain for kept extensions.
"""

import dataclasses

from repro.core import VARIANTS, compile_ir
from repro.ir import Cond, Opcode, Program, ScalarType, build_function
from repro.telemetry import (
    CAUSE_ARRAY,
    CAUSE_REQUIRED,
    Telemetry,
    VERDICT_ELIMINATED,
    VERDICT_KEPT,
)

ARRAY_CFG = VARIANTS["array"]
FULL_CFG = VARIANTS["new algorithm (all)"]


def _compile_logged(program, config):
    telemetry = Telemetry("decisions-test")
    compile_ir(program, config, telemetry=telemetry)
    return telemetry


def _zero_extended_index_program():
    """Theorem 1: a[b[0]] — the loaded index is zero-extended (IA64
    loads clear the upper 32 bits), so its upper bits are provably
    zero.  A masked index like (x & 0xF) would not do here: convert64
    already knows AND-with-mask is canonical and never generates an
    extension, so phase 3 would have nothing to prove."""
    program = Program()
    b = build_function(program, "main", [], ScalarType.I32)
    n = b.const(16)
    a = b.newarray(ScalarType.I32, n)
    idx_arr = b.newarray(ScalarType.I32, n)
    five = b.const(5)
    zero = b.const(0)
    b.astore(idx_arr, zero, five, ScalarType.I32)
    loaded = b.aload(idx_arr, zero, ScalarType.I32)  # upper 32 zero
    value = b.aload(a, loaded, ScalarType.I32)
    out = b.binop(Opcode.AND32, value, b.const(0xFF))
    b.sink(out)
    b.ret(out)
    return program


def _sum_index_program():
    """Theorem 2: i + (j & 0xFF), both canonical, one non-negative."""
    program = Program()
    b = build_function(program, "main",
                       [("i", ScalarType.I32), ("j", ScalarType.I32)],
                       ScalarType.I32)
    i, j = b.func.params
    a = b.newarray(ScalarType.I32, b.const(64))
    masked = b.binop(Opcode.AND32, j, b.const(0xFF))
    idx = b.binop(Opcode.ADD32, i, masked)
    value = b.aload(a, idx, ScalarType.I32)
    out = b.binop(Opcode.AND32, value, b.const(0xFF))
    b.sink(out)
    b.ret(out)
    return program


def _sub_index_program():
    """Theorem 3: upper-zero i minus a small masked j."""
    program = Program()
    b = build_function(program, "main", [("x", ScalarType.I32)],
                       ScalarType.I32)
    n = b.const(64)
    a = b.newarray(ScalarType.I32, n)
    idx_arr = b.newarray(ScalarType.I32, n)
    ten = b.const(10)
    zero = b.const(0)
    b.astore(idx_arr, zero, ten, ScalarType.I32)
    i = b.aload(idx_arr, zero, ScalarType.I32)  # upper 32 zero (IA64)
    j = b.binop(Opcode.AND32, b.func.params[0], b.const(0x7))
    idx = b.binop(Opcode.SUB32, i, j)
    value = b.aload(a, idx, ScalarType.I32)
    out = b.binop(Opcode.AND32, value, b.const(0xFF))
    b.sink(out)
    b.ret(out)
    return program


def _count_down_program():
    """Theorem 4: the classic count-down loop subscript."""
    program = Program()
    b = build_function(program, "main", [], ScalarType.I32)
    a = b.newarray(ScalarType.I32, b.const(32))
    i = b.func.named_reg("i", ScalarType.I32)
    t = b.func.named_reg("t", ScalarType.I32)
    one = b.const(1)
    zero = b.const(0)
    b.mov(b.const(31), i)
    b.mov(zero, t)
    loop = b.block("loop")
    done = b.block("done")
    b.jmp(loop)
    b.switch(loop)
    b.binop(Opcode.SUB32, i, one, i)
    v = b.aload(a, i, ScalarType.I32)
    b.binop(Opcode.ADD32, t, v, t)
    cond = b.cmp(Opcode.CMP32, Cond.GT, i, zero)
    b.br(cond, loop, done)
    b.switch(done)
    b.sink(t)
    b.ret(t)
    return program


def _multiply_index_program():
    """Hypothesis violation: i * 2 subscript must keep its extension."""
    program = Program()
    b = build_function(program, "main", [("i", ScalarType.I32)],
                       ScalarType.I32)
    a = b.newarray(ScalarType.I32, b.const(64))
    idx = b.binop(Opcode.MUL32, b.func.params[0], b.const(2))
    value = b.aload(a, idx, ScalarType.I32)
    b.sink(value)
    b.ret(value)
    return program


class TestEliminatedRecords:
    def test_theorem1_attribution(self):
        telemetry = _compile_logged(_zero_extended_index_program(),
                                    ARRAY_CFG)
        eliminated = telemetry.decisions.eliminated()
        assert eliminated, "Theorem 1 kernel eliminated nothing"
        array_records = [r for r in eliminated if r.cause == CAUSE_ARRAY]
        assert array_records, "no AnalyzeARRAY-caused elimination recorded"
        assert any(1 in r.theorems for r in array_records)
        assert telemetry.metrics.counter_value(
            "signext.theorem_hits", theorem=1) >= 1

    def test_theorem2_attribution(self):
        telemetry = _compile_logged(_sum_index_program(), ARRAY_CFG)
        array_records = [r for r in telemetry.decisions.eliminated()
                         if r.cause == CAUSE_ARRAY]
        assert array_records
        hit = set().union(*(r.theorems for r in array_records))
        assert hit & {2, 4}, f"expected a Theorem 2/4 hit, got {hit}"

    def test_theorem3_attribution(self):
        telemetry = _compile_logged(_sub_index_program(),
                                    VARIANTS["array, order"])
        array_records = [r for r in telemetry.decisions.eliminated()
                         if r.cause == CAUSE_ARRAY]
        assert array_records
        hit = set().union(*(r.theorems for r in array_records))
        assert 3 in hit, f"expected a Theorem 3 hit, got {hit}"

    def test_theorem4_attribution(self):
        # Restrict the theorem set so attribution is unambiguous: with
        # all four enabled, Theorem 1 is tried first and claims the
        # count-down subscript via the dummy-marker canonicality path.
        only_t4 = dataclasses.replace(FULL_CFG, theorems=frozenset({4}))
        telemetry = _compile_logged(_count_down_program(), only_t4)
        array_records = [r for r in telemetry.decisions.eliminated()
                         if r.cause == CAUSE_ARRAY]
        assert array_records
        hit = set().union(*(r.theorems for r in array_records))
        assert 4 in hit, f"expected a Theorem 4 hit, got {hit}"

    def test_record_locates_the_instruction(self):
        telemetry = _compile_logged(_zero_extended_index_program(),
                                    ARRAY_CFG)
        for record in telemetry.decisions:
            assert record.function == "main"
            assert record.block != "?"
            assert record.instr_uid > 0
            assert "extend" in record.instr
            assert record.width in (8, 16, 32)


class TestKeptRecords:
    def test_kept_extension_is_explained(self):
        telemetry = _compile_logged(_multiply_index_program(), ARRAY_CFG)
        kept = telemetry.decisions.kept()
        assert kept, "the i*2 subscript extension should survive"
        for record in kept:
            assert record.verdict == VERDICT_KEPT
            assert record.cause == CAUSE_REQUIRED
            assert record.reasons, "a kept extension must carry reasons"
        # The reason chain names the analysis that required it.
        joined = " ".join(r for record in kept for r in record.reasons)
        assert "Analyze" in joined

    def test_verdict_partition(self):
        telemetry = _compile_logged(_count_down_program(), FULL_CFG)
        records = list(telemetry.decisions)
        assert records
        for record in records:
            assert record.verdict in (VERDICT_ELIMINATED, VERDICT_KEPT)
        assert (len(telemetry.decisions.eliminated())
                + len(telemetry.decisions.kept())) == len(records)

    def test_decisions_match_function_stats(self):
        telemetry = Telemetry()
        compiled = compile_ir(_count_down_program(), FULL_CFG,
                                   telemetry=telemetry)
        stats = compiled.function_stats["main"]
        assert len(telemetry.decisions) == stats.candidates
        assert len(telemetry.decisions.eliminated()) == stats.eliminated
