"""validate_telemetry_document: real documents, merges, corruption.

The validator is the CI trace-smoke gate; these tests pin down that it
(a) accepts every document the pipeline actually produces — including
JSON round-trips and multi-process merges — and (b) rejects the
corruption modes a broken exporter would introduce.
"""

import copy
import json

from repro.core import VARIANTS, compile_ir
from repro.telemetry import Telemetry, validate_telemetry_document
from tests.conftest import make_fig7_program

FULL_CFG = VARIANTS["new algorithm (all)"]


def _compile_document(label="unit"):
    telemetry = Telemetry(label)
    compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
    return telemetry


class TestAcceptsRealDocuments:
    def test_pipeline_document_validates(self):
        doc = _compile_document().to_dict()
        assert validate_telemetry_document(doc) == []

    def test_json_round_trip_validates(self):
        doc = json.loads(json.dumps(_compile_document().to_dict()))
        assert validate_telemetry_document(doc) == []

    def test_merged_multi_process_document_validates(self):
        """A parent that absorbed two 'worker' compilations — the batch
        driver's shape — still validates, with non-negative rebased
        timestamps throughout."""
        parent = Telemetry("parent")
        with parent.span("batch"):
            pass
        parent.merge(_compile_document("worker-1"))
        parent.merge(_compile_document("worker-2"))
        doc = parent.to_dict()
        assert validate_telemetry_document(doc) == []
        roots = [s["name"] for s in doc["spans"]]
        assert "merged:worker-1" in roots and "merged:worker-2" in roots

    def test_empty_telemetry_validates(self):
        assert validate_telemetry_document(Telemetry().to_dict()) == []


class TestRejectsCorruption:
    def _doc(self):
        return copy.deepcopy(_compile_document().to_dict())

    def test_missing_top_level_key(self):
        doc = self._doc()
        del doc["decisions"]
        problems = validate_telemetry_document(doc)
        assert any("decisions" in p for p in problems)

    def test_missing_counter_family_block(self):
        doc = self._doc()
        del doc["metrics"]["counters"]
        problems = validate_telemetry_document(doc)
        assert any("metrics" in p for p in problems)

    def test_negative_duration_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["dur"] = -5
                break
        problems = validate_telemetry_document(doc)
        assert any("negative" in p for p in problems)

    def test_negative_timestamp_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["ts"] = -1
                break
        problems = validate_telemetry_document(doc)
        assert any("negative" in p for p in problems)

    def test_non_integer_duration_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["dur"] = 1.5
                break
        problems = validate_telemetry_document(doc)
        assert any("integer" in p for p in problems)

    def test_bad_phase_flagged(self):
        doc = self._doc()
        doc["trace"]["traceEvents"].append({"ph": "Z", "name": "bogus"})
        problems = validate_telemetry_document(doc)
        assert any("phase" in p for p in problems)

    def test_decision_missing_keys_flagged(self):
        doc = self._doc()
        if doc["decisions"]:
            del doc["decisions"][0]["verdict"]
            problems = validate_telemetry_document(doc)
            assert any("decisions[0]" in p for p in problems)

    def test_duplicate_counter_label_set_flagged(self):
        """Two renderings of the same (family, label set) mean an
        exporter double-counted a series; the registry always sorts
        labels, so any permutation duplicate is corruption."""
        doc = self._doc()
        doc["metrics"]["counters"]["dup{a=1,b=2}"] = 1
        doc["metrics"]["counters"]["dup{b=2,a=1}"] = 2
        problems = validate_telemetry_document(doc)
        assert any("duplicate label set" in p for p in problems)

    def test_distinct_label_sets_are_not_duplicates(self):
        doc = self._doc()
        doc["metrics"]["counters"]["fam{a=1}"] = 1
        doc["metrics"]["counters"]["fam{a=2}"] = 2
        doc["metrics"]["counters"]["fam"] = 3
        assert validate_telemetry_document(doc) == []

    def test_child_extending_past_parent_flagged(self):
        doc = self._doc()
        doc["spans"] = [{
            "name": "parent", "category": "serve",
            "start_us": 0, "duration_us": 100,
            "children": [{
                "name": "runaway", "category": "serve",
                "start_us": 50, "duration_us": 100,  # ends at 150 > 100
            }],
        }]
        problems = validate_telemetry_document(doc)
        assert any("extends past its parent" in p for p in problems)

    def test_deeply_nested_extent_violation_flagged(self):
        doc = self._doc()
        doc["spans"] = [{
            "name": "a", "start_us": 0, "duration_us": 100,
            "children": [{
                "name": "b", "start_us": 10, "duration_us": 80,
                "children": [{
                    "name": "c", "start_us": 20, "duration_us": 90,
                }],
            }],
        }]
        problems = validate_telemetry_document(doc)
        assert any("extends past its parent" in p
                   and "children[0].children[0]" in p for p in problems)

    def test_contained_children_accepted(self):
        doc = self._doc()
        doc["spans"] = [{
            "name": "parent", "start_us": 0, "duration_us": 100,
            "children": [
                {"name": "a", "start_us": 0, "duration_us": 40},
                {"name": "b", "start_us": 40, "duration_us": 60},
            ],
        }]
        assert validate_telemetry_document(doc) == []
