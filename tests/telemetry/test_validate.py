"""validate_telemetry_document: real documents, merges, corruption.

The validator is the CI trace-smoke gate; these tests pin down that it
(a) accepts every document the pipeline actually produces — including
JSON round-trips and multi-process merges — and (b) rejects the
corruption modes a broken exporter would introduce.
"""

import copy
import json

from repro.core import VARIANTS, compile_ir
from repro.telemetry import Telemetry, validate_telemetry_document
from tests.conftest import make_fig7_program

FULL_CFG = VARIANTS["new algorithm (all)"]


def _compile_document(label="unit"):
    telemetry = Telemetry(label)
    compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
    return telemetry


class TestAcceptsRealDocuments:
    def test_pipeline_document_validates(self):
        doc = _compile_document().to_dict()
        assert validate_telemetry_document(doc) == []

    def test_json_round_trip_validates(self):
        doc = json.loads(json.dumps(_compile_document().to_dict()))
        assert validate_telemetry_document(doc) == []

    def test_merged_multi_process_document_validates(self):
        """A parent that absorbed two 'worker' compilations — the batch
        driver's shape — still validates, with non-negative rebased
        timestamps throughout."""
        parent = Telemetry("parent")
        with parent.span("batch"):
            pass
        parent.merge(_compile_document("worker-1"))
        parent.merge(_compile_document("worker-2"))
        doc = parent.to_dict()
        assert validate_telemetry_document(doc) == []
        roots = [s["name"] for s in doc["spans"]]
        assert "merged:worker-1" in roots and "merged:worker-2" in roots

    def test_empty_telemetry_validates(self):
        assert validate_telemetry_document(Telemetry().to_dict()) == []


class TestRejectsCorruption:
    def _doc(self):
        return copy.deepcopy(_compile_document().to_dict())

    def test_missing_top_level_key(self):
        doc = self._doc()
        del doc["decisions"]
        problems = validate_telemetry_document(doc)
        assert any("decisions" in p for p in problems)

    def test_missing_counter_family_block(self):
        doc = self._doc()
        del doc["metrics"]["counters"]
        problems = validate_telemetry_document(doc)
        assert any("metrics" in p for p in problems)

    def test_negative_duration_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["dur"] = -5
                break
        problems = validate_telemetry_document(doc)
        assert any("negative" in p for p in problems)

    def test_negative_timestamp_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["ts"] = -1
                break
        problems = validate_telemetry_document(doc)
        assert any("negative" in p for p in problems)

    def test_non_integer_duration_flagged(self):
        doc = self._doc()
        for event in doc["trace"]["traceEvents"]:
            if event["ph"] == "X":
                event["dur"] = 1.5
                break
        problems = validate_telemetry_document(doc)
        assert any("integer" in p for p in problems)

    def test_bad_phase_flagged(self):
        doc = self._doc()
        doc["trace"]["traceEvents"].append({"ph": "Z", "name": "bogus"})
        problems = validate_telemetry_document(doc)
        assert any("phase" in p for p in problems)

    def test_decision_missing_keys_flagged(self):
        doc = self._doc()
        if doc["decisions"]:
            del doc["decisions"][0]["verdict"]
            problems = validate_telemetry_document(doc)
            assert any("decisions[0]" in p for p in problems)
