"""Telemetry plumbing through the compile pipeline and interpreter."""

import dataclasses
import json

from repro.core import VARIANTS, compile_ir
from repro.interp import Interpreter
from repro.telemetry import Telemetry, validate_telemetry_document
from tests.conftest import make_fig7_program

FULL_CFG = VARIANTS["new algorithm (all)"]


def _span_names(telemetry):
    return [span.name for span in telemetry.tracer.walk()]


class TestSpans:
    def test_every_pipeline_phase_has_a_span(self):
        telemetry = Telemetry()
        compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
        names = _span_names(telemetry)
        for expected in ("compile", "inline", "function:main", "convert64",
                         "general-opts", "sign-ext", "insertion",
                         "ordering", "chains", "elimination"):
            assert expected in names, f"missing span {expected!r}"

    def test_every_opt_pass_has_a_span(self):
        telemetry = Telemetry()
        compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
        names = set(_span_names(telemetry))
        for pass_name in ("constant-fold", "simplify", "copy-prop", "gcse",
                          "licm", "copy-prop-cleanup", "dce"):
            assert pass_name in names, f"missing pass span {pass_name!r}"

    def test_spans_nest_under_compile(self):
        telemetry = Telemetry()
        compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
        assert [root.name for root in telemetry.tracer.roots] == ["compile"]
        function_spans = [c for c in telemetry.tracer.roots[0].children
                          if c.name.startswith("function:")]
        assert function_spans, "function span missing under compile"


class TestMetrics:
    def test_static_before_after(self):
        telemetry = Telemetry()
        compiled = compile_ir(make_fig7_program(8), FULL_CFG,
                                   telemetry=telemetry)
        before = telemetry.metrics.counter_value(
            "compile.static_extends.before")
        after = telemetry.metrics.counter_value(
            "compile.static_extends.after")
        assert before > after
        assert after == compiled.static_extend_count

    def test_candidate_and_elimination_counters(self):
        telemetry = Telemetry()
        compiled = compile_ir(make_fig7_program(8), FULL_CFG,
                                   telemetry=telemetry)
        stats = compiled.function_stats["main"]
        assert telemetry.metrics.counter_value(
            "signext.candidates") == stats.candidates
        eliminated = sum(
            telemetry.metrics.counter_family("signext.eliminated").values()
        )
        assert eliminated == stats.eliminated

    def test_interpreter_metrics_sink(self):
        telemetry = Telemetry()
        compiled = compile_ir(make_fig7_program(8), FULL_CFG,
                                   telemetry=telemetry)
        run = Interpreter(compiled.program,
                          metrics=telemetry.metrics).run()
        metrics = telemetry.metrics
        assert metrics.counter_value("runtime.steps") == run.steps
        dynamic = sum(
            metrics.counter_family("runtime.extends").values()
        )
        assert dynamic == run.total_extends
        opcodes = metrics.counter_family("runtime.opcodes")
        assert sum(opcodes.values()) == run.steps
        assert metrics.gauge("runtime.fuel_remaining").value >= 0
        assert metrics.histogram("runtime.site_exec_counts").count > 0


class TestDisabledTelemetry:
    def test_stats_identical_with_and_without(self):
        """The acceptance bar: telemetry off must change nothing the
        harness counts."""
        for name in ("baseline", "first algorithm (bwd flow)",
                     "basic ud/du", "new algorithm (all)"):
            config = VARIANTS[name]
            plain = compile_ir(make_fig7_program(12), config)
            telemetry = Telemetry()
            traced = compile_ir(make_fig7_program(12), config,
                                     telemetry=telemetry)
            assert plain.static_extend_count == traced.static_extend_count
            for func_name, stats in plain.function_stats.items():
                assert dataclasses.asdict(stats) == dataclasses.asdict(
                    traced.function_stats[func_name]
                ), f"{name}/{func_name} stats diverged"

    def test_compile_result_telemetry_is_none_by_default(self):
        compiled = compile_ir(make_fig7_program(8), FULL_CFG)
        assert compiled.telemetry is None


class TestDocument:
    def test_full_document_validates(self):
        telemetry = Telemetry("doc-test")
        compiled = compile_ir(make_fig7_program(8), FULL_CFG,
                                   telemetry=telemetry)
        Interpreter(compiled.program, metrics=telemetry.metrics).run()
        doc = json.loads(json.dumps(telemetry.to_dict()))
        assert validate_telemetry_document(doc) == []

    def test_validator_flags_problems(self):
        assert validate_telemetry_document({}) != []
        bad = {"schema_version": 1, "trace": {"traceEvents": [{"ph": "?"}]},
               "spans": [], "metrics": {"counters": {}, "gauges": {},
                                        "histograms": {}},
               "decisions": []}
        assert any("phase" in p for p in validate_telemetry_document(bad))

    def test_write_json(self, tmp_path):
        telemetry = Telemetry()
        compile_ir(make_fig7_program(8), FULL_CFG, telemetry=telemetry)
        path = tmp_path / "telemetry.json"
        telemetry.write_json(str(path))
        doc = json.loads(path.read_text())
        assert validate_telemetry_document(doc) == []
