"""Span tracer: nesting, clocks, and Chrome trace_event export."""

import json

from repro.telemetry import Tracer


class _FakeClock:
    """Deterministic nanosecond clock advancing 1000ns per reading."""

    def __init__(self) -> None:
        self.now_ns = 0

    def __call__(self) -> int:
        self.now_ns += 1000
        return self.now_ns


class TestNesting:
    def test_parent_child_structure(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("convert64"):
                pass
            with tracer.span("sign-ext"):
                with tracer.span("insertion"):
                    pass
        assert [root.name for root in tracer.roots] == ["compile"]
        compile_span = tracer.roots[0]
        assert [c.name for c in compile_span.children] == [
            "convert64", "sign-ext",
        ]
        assert [c.name for c in compile_span.children[1].children] == [
            "insertion",
        ]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]

    def test_walk_depth_first_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a1"):
                pass
            with tracer.span("a2"):
                pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.walk()] == ["a", "a1", "a2", "b"]

    def test_exception_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        inner = tracer.roots[0].children[0]
        assert inner.duration_us >= 0
        # The stack fully unwound: a new span is a fresh root.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]


class TestClock:
    def test_monotonic_timestamps(self):
        clock = _FakeClock()
        tracer = Tracer(clock_ns=clock)
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert b.start_us >= a.start_us
        assert a.duration_us >= b.duration_us

    def test_durations_accumulate(self):
        clock = _FakeClock()
        tracer = Tracer(clock_ns=clock)
        with tracer.span("a") as span:
            clock.now_ns += 5_000_000  # 5ms inside the span
        assert span.duration_us >= 5000


class TestMergeRebase:
    """Merged worker forests are rebased onto the parent clock.

    Worker processes measure against their own monotonic epoch;
    without rebasing, a worker that started later (huge epoch) would
    land its spans far past the parent timeline, and one that started
    earlier would land before the parent's epoch.
    """

    def _worker(self, name, start_ns):
        """A fake worker tracer whose epoch begins at ``start_ns``."""
        clock = _FakeClock()
        clock.now_ns = start_ns
        tracer = Tracer(clock_ns=clock, process_name=name)
        with tracer.span("job"):
            clock.now_ns += 2_000_000  # 2ms of work
            with tracer.span("inner"):
                clock.now_ns += 1_000_000
        return tracer

    def test_two_workers_land_inside_parent_timeline(self):
        parent_clock = _FakeClock()
        parent = Tracer(clock_ns=parent_clock)
        parent_clock.now_ns += 50_000_000  # parent is 50ms in
        # Wildly different worker epochs: one "before" the parent's,
        # one far after — both must rebase into the parent timeline.
        early = self._worker("w1", start_ns=10)
        late = self._worker("w2", start_ns=999_000_000_000)
        parent.merge(early)
        parent.merge(late)

        horizon = parent._now_us()
        for root in parent.roots:
            assert root.name.startswith("merged:")
            for span in [root, *root.children,
                         *root.children[0].children]:
                assert span.start_us >= 0
                assert span.start_us + span.duration_us <= horizon

    def test_relative_timing_preserved(self):
        parent = Tracer(clock_ns=_FakeClock())
        worker = self._worker("w", start_ns=777_000_000)
        job = worker.roots[0]
        inner = job.children[0]
        gap_before = inner.start_us - job.start_us
        durations = (job.duration_us, inner.duration_us)
        parent.merge(worker)

        merged_job = parent.roots[-1].children[0]
        merged_inner = merged_job.children[0]
        assert merged_inner.start_us - merged_job.start_us == gap_before
        assert (merged_job.duration_us,
                merged_inner.duration_us) == durations

    def test_wrapper_covers_worker_extent(self):
        parent = Tracer(clock_ns=_FakeClock())
        worker = self._worker("w", start_ns=123_456_789)
        extent = (worker.roots[-1].start_us
                  + worker.roots[-1].duration_us
                  - worker.roots[0].start_us)
        parent.merge(worker)
        wrapper = parent.roots[-1]
        assert wrapper.name == "merged:w"
        assert wrapper.duration_us == extent
        assert wrapper.start_us == wrapper.children[0].start_us

    def test_merged_chrome_events_validate(self):
        """After a merge no exported event may carry negative ts."""
        parent = Tracer(clock_ns=_FakeClock())
        parent.merge(self._worker("w1", start_ns=5))
        parent.merge(self._worker("w2", start_ns=10**15))
        for event in parent.to_chrome_events():
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_empty_worker_is_noop(self):
        parent = Tracer(clock_ns=_FakeClock())
        parent.merge(Tracer(clock_ns=_FakeClock(), process_name="idle"))
        assert parent.roots == []

    def test_empty_worker_into_busy_parent_is_noop(self):
        parent = Tracer(clock_ns=_FakeClock())
        with parent.span("work"):
            pass
        parent.merge(Tracer(clock_ns=_FakeClock(), process_name="idle"))
        assert [root.name for root in parent.roots] == ["work"]

    def test_zero_offset_when_worker_ends_at_merge_point(self):
        """A worker whose timeline already ends exactly 'now' on the
        parent clock needs no shift at all."""
        parent_clock = _FakeClock()
        parent = Tracer(clock_ns=parent_clock)
        worker = self._worker("w", start_ns=0)
        # Advance the parent so now_us == the worker's last end (3ms of
        # work + the clock reads the worker itself consumed).
        last_end = (worker.roots[0].start_us
                    + worker.roots[0].duration_us)
        parent_clock.now_ns = parent._epoch_ns + last_end * 1000 - 1000
        original_start = worker.roots[0].start_us
        parent.merge(worker)
        merged_job = parent.roots[-1].children[0]
        assert merged_job.start_us == original_start  # offset was 0

    def test_negative_offset_clamped_to_parent_epoch(self):
        """A worker whose timeline extends past the parent's 'now'
        would need a negative shift; the clamp stops it at the parent's
        epoch so no span can land before time zero."""
        parent = Tracer(clock_ns=_FakeClock())  # now_us ~ 0
        worker = self._worker("w", start_ns=0)  # spans span ~3ms
        first_start = worker.roots[0].start_us
        parent.merge(worker)
        merged_job = parent.roots[-1].children[0]
        # offset = max(now - last_end, -first_start) = -first_start
        assert merged_job.start_us == 0
        assert first_start >= 0
        for event in parent.to_chrome_events():
            assert event["ts"] >= 0

    def test_merge_into_tracer_with_open_spans(self):
        """Merging while the parent has spans still open must append
        the worker forest as a new root — never nest it under the open
        span — and leave the parent's stack intact."""
        parent = Tracer(clock_ns=_FakeClock())
        worker = self._worker("w", start_ns=42)
        with parent.span("request"):
            with parent.span("execute"):
                parent.merge(worker)
        assert [root.name for root in parent.roots] == [
            "request", "merged:w",
        ]
        request = parent.roots[0]
        assert [c.name for c in request.children] == ["execute"]
        assert request.duration_us >= 0
        # The stack fully unwound: a new span is a fresh root.
        with parent.span("after"):
            pass
        assert parent.roots[-1].name == "after"


class TestFromDict:
    def _worker(self):
        clock = _FakeClock()
        tracer = Tracer(clock_ns=clock, process_name="w")
        with tracer.span("job", category="worker", trace_id="t-1"):
            clock.now_ns += 2_000_000
            with tracer.span("inner"):
                clock.now_ns += 1_000_000
        return tracer

    def test_round_trip_preserves_forest(self):
        original = self._worker()
        rebuilt = Tracer.from_dict(original.to_dict(), process_name="w")
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.process_name == "w"

    def test_json_round_trip(self):
        original = self._worker()
        exported = json.loads(json.dumps(original.to_dict()))
        rebuilt = Tracer.from_dict(exported)
        assert rebuilt.to_dict() == original.to_dict()

    def test_reconstructed_tracer_merges_like_a_live_one(self):
        worker = self._worker()
        live_parent = Tracer(clock_ns=_FakeClock())
        live_parent.merge(self._worker())
        rebuilt_parent = Tracer(clock_ns=_FakeClock())
        rebuilt_parent.merge(Tracer.from_dict(worker.to_dict(),
                                              process_name="w"))
        assert (rebuilt_parent.to_dict()
                == live_parent.to_dict())

    def test_missing_fields_get_defaults(self):
        span = Tracer.from_dict([{"name": "x"}]).roots[0]
        assert span.category == "pipeline"
        assert span.start_us == 0
        assert span.duration_us == 0
        assert span.children == []


class TestChromeExport:
    def _trace(self):
        tracer = Tracer(process_name="unit-test")
        with tracer.span("compile", program="p"):
            with tracer.span("convert64"):
                pass
        return tracer

    def test_round_trip_through_json(self):
        tracer = self._trace()
        doc = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert "traceEvents" in doc
        names = [e["name"] for e in doc["traceEvents"]]
        assert "compile" in names and "convert64" in names

    def test_complete_event_shape(self):
        """Every span event conforms to the about://tracing complete
        ("X") event contract: integer microsecond ts/dur, pid/tid."""
        tracer = self._trace()
        events = tracer.to_chrome_events()
        assert events, "no events exported"
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["dur"] >= 0
            assert "pid" in event and "tid" in event

    def test_metadata_event_first(self):
        doc = self._trace().to_chrome_trace()
        first = doc["traceEvents"][0]
        assert first["ph"] == "M"
        assert first["args"]["name"] == "unit-test"

    def test_args_survive_export(self):
        tracer = self._trace()
        compile_event = next(e for e in tracer.to_chrome_events()
                             if e["name"] == "compile")
        assert compile_event["args"] == {"program": "p"}

    def test_nested_dict_export(self):
        tracer = self._trace()
        nested = tracer.to_dict()
        assert nested[0]["name"] == "compile"
        assert nested[0]["children"][0]["name"] == "convert64"

    def test_annotate(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            span.annotate(eliminated=3)
        assert tracer.roots[0].args["eliminated"] == 3
