"""JsonlLogger: record shape, severities, and size-based rotation."""

import json

import pytest

from repro.telemetry import SEVERITIES, JsonlLogger


class _Clock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestRecords:
    def test_one_json_object_per_line(self, tmp_path):
        logger = JsonlLogger(tmp_path / "log.jsonl", clock=_Clock())
        logger.info("request", status=200, trace_id="abc")
        logger.error("request", status=500)
        lines = (tmp_path / "log.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["severity"] == "info"
        assert first["event"] == "request"
        assert first["status"] == 200
        assert first["trace_id"] == "abc"
        assert first["ts"] == 1001.0

    def test_severity_helpers_cover_all_levels(self, tmp_path):
        logger = JsonlLogger(tmp_path / "log.jsonl")
        for severity in SEVERITIES:
            getattr(logger, severity)("tick")
        events = logger.read_events()
        assert [e["severity"] for e in events] == list(SEVERITIES)

    def test_unknown_severity_rejected(self, tmp_path):
        logger = JsonlLogger(tmp_path / "log.jsonl")
        with pytest.raises(ValueError, match="severity"):
            logger.log("fatal", "boom")

    def test_non_serializable_fields_stringify(self, tmp_path):
        logger = JsonlLogger(tmp_path / "log.jsonl")
        logger.info("request", path=tmp_path)  # Path is not JSON-native
        assert logger.read_events()[0]["path"] == str(tmp_path)

    def test_creates_parent_directories(self, tmp_path):
        logger = JsonlLogger(tmp_path / "deep" / "nested" / "log.jsonl")
        logger.info("tick")
        assert logger.read_events()


class TestRotation:
    def _filled(self, tmp_path, *, max_bytes=200, backups=2):
        logger = JsonlLogger(tmp_path / "log.jsonl",
                             max_bytes=max_bytes, backups=backups)
        for n in range(20):
            logger.info("tick", n=n, padding="x" * 40)
        return logger

    def test_active_file_stays_bounded(self, tmp_path):
        logger = self._filled(tmp_path)
        assert logger.path.stat().st_size <= logger.max_bytes

    def test_rotated_generations_exist_and_are_bounded(self, tmp_path):
        logger = self._filled(tmp_path, backups=2)
        assert logger.rotated_path(1).exists()
        assert not logger.rotated_path(3).exists()

    def test_rotated_files_are_valid_jsonl(self, tmp_path):
        logger = self._filled(tmp_path)
        for line in logger.rotated_path(1).read_text().splitlines():
            json.loads(line)

    def test_read_events_includes_rotated_oldest_first(self, tmp_path):
        logger = self._filled(tmp_path)
        events = logger.read_events(include_rotated=True)
        ns = [e["n"] for e in events]
        assert ns == sorted(ns)
        # Rotation keeps only the newest generations, so the tail
        # (the most recent events) must always survive.
        assert ns[-1] == 19

    def test_zero_backups_truncates_instead_of_rotating(self, tmp_path):
        logger = JsonlLogger(tmp_path / "log.jsonl", max_bytes=120,
                             backups=0)
        for n in range(12):
            logger.info("tick", n=n, padding="y" * 30)
        assert not logger.rotated_path(1).exists()
        assert logger.path.stat().st_size <= logger.max_bytes

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlLogger(tmp_path / "l", max_bytes=0)
        with pytest.raises(ValueError):
            JsonlLogger(tmp_path / "l", backups=-1)
