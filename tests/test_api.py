"""The repro.api facade: compile / run / bench, options, deprecations."""

import argparse
import warnings
from pathlib import Path

import pytest

import repro
from repro import api
from repro.core import VARIANTS, CompileOptions
from repro.core.config import DEFAULT_VARIANT
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.ir.printer import format_program
from repro.machine import PPC64
from repro.workloads import Workload

SOURCE = """
void main() {
    int[] a = new int[24];
    int t = 0;
    for (int i = 0; i < 24; i++) { a[i] = i * 2; t += a[i]; }
    sink(t);
}
"""

FAST = Workload(name="fast_api", suite="jbytemark",
                description="api test kernel", source=SOURCE)

SMALL_VARIANTS = {
    "baseline": VARIANTS["baseline"],
    "new algorithm (all)": VARIANTS["new algorithm (all)"],
}


class TestCompile:
    def test_accepts_source_text(self):
        result = repro.compile(SOURCE)
        assert result.function_stats

    def test_accepts_program(self):
        program = compile_source(SOURCE, "prog")
        result = repro.compile(program)
        assert isinstance(result.program, Program)
        # options.clone defaults to True: the input is untouched.
        assert format_program(program) == \
            format_program(compile_source(SOURCE, "prog"))

    def test_accepts_path(self, tmp_path):
        path = tmp_path / "kernel.j32"
        path.write_text(SOURCE)
        from_path = repro.compile(path)
        from_str = repro.compile(str(path))
        assert format_program(from_path.program) == \
            format_program(from_str.program)

    def test_missing_j32_path_raises(self):
        with pytest.raises(FileNotFoundError):
            repro.compile("no/such/file.j32")

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            repro.compile(42)

    def test_config_override_beats_variant(self):
        config = VARIANTS["baseline"].with_traits(PPC64)
        result = repro.compile(SOURCE, CompileOptions(), config=config)
        assert result.config is config

    def test_driver_path_matches_direct_path(self, tmp_path):
        direct = repro.compile(SOURCE)
        driven = repro.compile(
            SOURCE, CompileOptions(cache=True, cache_dir=str(tmp_path))
        )
        assert format_program(direct.program) == \
            format_program(driven.program)

    def test_telemetry_collection(self):
        result = repro.compile(SOURCE, CompileOptions(telemetry=True))
        assert result.telemetry is not None
        assert result.telemetry.tracer.roots
        assert repro.compile(SOURCE).telemetry is None


class TestRun:
    def test_run_verifies_against_gold(self):
        outcome = repro.run(SOURCE)
        assert outcome.verified
        assert outcome.steps > 0
        assert outcome.cycles.total > 0
        assert outcome.checksum == outcome.gold_checksum

    def test_variant_changes_extension_counts(self):
        base = repro.run(SOURCE, CompileOptions(variant="baseline"))
        full = repro.run(SOURCE)
        assert full.extend_counts.get(32, 0) <= base.extend_counts.get(32, 0)


class TestBench:
    def test_bench_small_grid(self):
        suite = repro.bench([FAST], variants=SMALL_VARIANTS)
        results = suite.workload("fast_api")
        assert set(results.cells) == set(SMALL_VARIANTS)
        with pytest.raises(KeyError):
            suite.workload("missing")

    def test_bench_warm_cache_no_recompiles(self, tmp_path):
        options = CompileOptions(cache=True, cache_dir=str(tmp_path))
        cold = repro.bench([FAST], variants=SMALL_VARIANTS, options=options)
        assert cold.cache_misses == len(SMALL_VARIANTS)
        assert cold.cache_hits == 0

        warm = repro.bench([FAST], variants=SMALL_VARIANTS, options=options)
        assert warm.cache_hits == len(SMALL_VARIANTS)
        assert warm.cache_misses == 0
        # Identical results modulo wall-clock timing noise.
        from repro.harness import strip_volatile

        assert strip_volatile(cold.to_dict()) == strip_volatile(warm.to_dict())

    def test_bench_accepts_registry_names(self):
        suite = repro.bench(["huffman"], variants={
            "baseline": VARIANTS["baseline"],
        })
        assert suite.workload("huffman").cells["baseline"].dyn_extend32 > 0


class TestCompileOptions:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            CompileOptions(variant="nope")

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            CompileOptions(jobs=0)

    def test_config_combines_variant_and_machine(self):
        options = CompileOptions(machine="ppc64")
        config = options.config()
        assert config.traits.name == PPC64.name
        assert config == VARIANTS[DEFAULT_VARIANT].with_traits(PPC64)

    def test_from_cli_args(self):
        args = argparse.Namespace(
            variant="baseline", machine="ppc64", fuel=1000,
            telemetry="out.json", jobs=3, cache=True,
            cache_dir="/tmp/c", timeout=5.0, profile_dir="/tmp/prof",
        )
        options = CompileOptions.from_cli_args(args)
        assert options.variant == "baseline"
        assert options.machine == "ppc64"
        assert options.fuel == 1000
        assert options.telemetry is True  # path coerced to "collect"
        assert options.jobs == 3
        assert options.cache is True
        assert options.cache_dir == "/tmp/c"
        assert options.timeout == 5.0
        assert options.profile_dir == "/tmp/prof"

    def test_profile_dir_defaults_off(self):
        assert CompileOptions().profile_dir is None
        assert CompileOptions.from_cli_args(
            argparse.Namespace()).profile_dir is None

    def test_from_cli_args_sparse_namespace(self):
        options = CompileOptions.from_cli_args(argparse.Namespace())
        assert options == CompileOptions()


class TestDeprecatedAliases:
    def test_compile_program_warns_and_works(self):
        from repro.core import compile_program

        with pytest.warns(DeprecationWarning, match="compile_ir"):
            result = compile_program(
                compile_source(SOURCE, "legacy"),
                VARIANTS["new algorithm (all)"],
            )
        assert result.function_stats

    def test_run_workload_warns_and_works(self):
        from repro.harness import run_workload

        with pytest.warns(DeprecationWarning, match="measure_workload"):
            results = run_workload(FAST, SMALL_VARIANTS)
        assert set(results.cells) == set(SMALL_VARIANTS)

    def test_top_level_reexports(self):
        assert repro.compile_program is not None
        assert repro.run_workload is not None
        assert repro.__version__ == "1.8.0"

    def test_new_engines_do_not_warn(self):
        from repro.core import compile_ir

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compile_ir(compile_source(SOURCE, "quiet"),
                       VARIANTS["baseline"])


class TestProfileFacade:
    def test_profile_returns_execution_profile(self):
        outcome = api.profile(SOURCE)
        assert isinstance(outcome, repro.ProfileResult)
        profile = outcome.profile
        assert profile.function("main").entries == 1
        assert profile.total_cycles > 0
        # telemetry is forced on so verdicts can attach to sites
        assert outcome.telemetry is not None

    def test_profile_accepts_workload(self):
        outcome = api.profile(FAST)
        assert outcome.profile.workload == "fast_api"

    def test_profile_writes_artifact_when_dir_set(self, tmp_path):
        from repro.profile import load_profile

        options = CompileOptions(variant="baseline",
                                 profile_dir=str(tmp_path))
        outcome = api.profile(FAST, options)
        assert outcome.artifact is not None
        assert outcome.artifact.exists()
        loaded = load_profile(outcome.artifact)
        assert loaded.to_dict() == outcome.profile.to_dict()

    def test_profile_engine_both_keeps_parity_check(self):
        outcome = api.profile(SOURCE, CompileOptions(engine="both"))
        assert outcome.profile.engine == "both"
        assert outcome.profile.steps > 0

    def test_entries_match_closure_fold_counters(self):
        from repro.interp import create_interpreter

        outcome = api.profile(FAST)
        interp = create_interpreter(outcome.compile.program,
                                    engine="closure",
                                    collect_profile=True)
        interp.run()
        mine = {
            name: {b: c for b, c in blocks.items() if c}
            for name, blocks in outcome.profile.block_entries().items()
        }
        mine = {name: blocks for name, blocks in mine.items() if blocks}
        assert mine == {
            name: dict(blocks)
            for name, blocks in interp.block_entries.items() if blocks
        }

    def test_bench_profile_dir_writes_cell_artifacts(self, tmp_path):
        from repro.profile import load_profiles

        options = CompileOptions(profile_dir=str(tmp_path / "prof"))
        repro.bench([FAST], variants=SMALL_VARIANTS, options=options)
        loaded = load_profiles(tmp_path / "prof")
        assert len(loaded) == len(SMALL_VARIANTS)
        assert {p.variant for p in loaded} == set(SMALL_VARIANTS)
        assert all(p.workload == "fast_api" for p in loaded)
