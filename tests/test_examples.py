"""Every example must run as a plain script — no PYTHONPATH required.

The examples bootstrap ``src/`` onto ``sys.path`` themselves when the
package is not installed; these tests execute each one the way a reader
would (``python examples/foo.py``) with a scrubbed environment.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300, env=env, cwd=REPO,
    )


@pytest.mark.parametrize("script, args, expect", [
    ("quickstart.py", (), "dynamic 32-bit extensions"),
    ("profile_guided.py", (), "profile-guided order determination"),
    ("machine_codegen.py", (), "PPC64, full algorithm"),
    ("benchmark_sweep.py", ("fourier",), "Dynamic 32-bit sign extensions"),
])
def test_example_runs_clean(script, args, expect):
    result = _run(script, *args)
    assert result.returncode == 0, result.stderr
    assert expect in result.stdout


def test_benchmark_sweep_cache_flag(tmp_path):
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    argv = [sys.executable, str(EXAMPLES / "benchmark_sweep.py"),
            "fourier", "--cache"]
    cold = subprocess.run(argv, capture_output=True, text=True,
                          timeout=300, env=env, cwd=REPO)
    assert cold.returncode == 0, cold.stderr
    assert "[cache: 0 hits, 12 misses]" in cold.stdout
    warm = subprocess.run(argv, capture_output=True, text=True,
                          timeout=300, env=env, cwd=REPO)
    assert warm.returncode == 0, warm.stderr
    assert "[cache: 12 hits, 0 misses]" in warm.stdout


def test_benchmark_sweep_rejects_unknown_workload():
    result = _run("benchmark_sweep.py", "doom")
    assert result.returncode == 1
    assert "unknown workload" in result.stdout
