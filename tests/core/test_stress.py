"""Stress tests: larger generated programs through the full pipeline."""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.testing import ProgramGenerator


class TestScale:
    def test_large_generated_program(self):
        generator = ProgramGenerator(424242, max_loops=2,
                                     max_statements=40)
        source = generator.generate()
        program = compile_source(source, "stress")
        gold = Interpreter(program, mode="ideal", fuel=5_000_000).run()
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = Interpreter(compiled.program, fuel=5_000_000).run()
        assert run.observable() == gold.observable()

    def test_many_blocks(self):
        """A long if-else ladder: hundreds of blocks; no recursion-depth
        or quadratic blowups in the analyses."""
        arms = "\n".join(
            f"    if (x == {k}) {{ t += {k * 3}; }}" for k in range(150)
        )
        source = f"""
        int main() {{
            int x = 42;
            int t = 0;
{arms}
            return t;
        }}
        """
        program = compile_source(source, "ladder")
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        result = Interpreter(compiled.program).run()
        assert result.ret_value == 42 * 3

    def test_long_straightline_chain(self):
        """A deep dependency chain stresses the recursive analyses
        (value ranges, canonicality) without hitting Python limits."""
        body = "\n".join(
            f"    t = (t + {k}) & 0xffff;" for k in range(400)
        )
        source = f"""
        int main() {{
            int t = 1;
{body}
            sink(t);
            return t;
        }}
        """
        program = compile_source(source, "chain")
        gold = Interpreter(program, mode="ideal").run()
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = Interpreter(compiled.program).run()
        assert run.observable() == gold.observable()
        # Everything is masked: no dynamic extensions remain.
        assert run.extends32 <= 1

    @pytest.mark.parametrize("depth", [4, 8])
    def test_nested_loops(self, depth):
        opening = ""
        closing = ""
        for level in range(depth):
            pad = "    " * (level + 1)
            opening += (f"{pad}for (int i{level} = 0; i{level} < 2; "
                        f"i{level}++) {{\n")
            closing = "    " * (level + 1) + "}\n" + closing
        source = f"""
        int main() {{
            int n = 0;
{opening}{'    ' * (depth + 1)}n++;
{closing}
            return n;
        }}
        """
        program = compile_source(source, f"nest{depth}")
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        result = Interpreter(compiled.program).run()
        assert result.ret_value == 2 ** depth
