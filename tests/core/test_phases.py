"""Unit tests for the individual phase-3 components: insertion, dummy
markers, ordering, the first algorithm, PDE insertion, and timing."""

from repro.analysis.frequency import BranchProfile
from repro.core import (
    VARIANTS,
    compile_ir,
    convert_function,
    function_has_loop,
    insert_before_requiring_uses,
    insert_dummy_markers,
    is_candidate_extend,
    order_candidates,
    remove_dummy_markers,
    run_first_algorithm,
    run_pde_insertion,
)
from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from repro.ir.clone import clone_program
from repro.machine import IA64
from repro.opt.pass_manager import (
    BUCKET_CHAINS,
    BUCKET_OTHERS,
    BUCKET_SIGN_EXT,
)
from tests.conftest import make_fig7_program, run_ideal, run_machine


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestHasLoop:
    def test_loopless(self):
        program = Program()
        b = build_function(program, "main", [], None)
        b.ret()
        assert not function_has_loop(program.main)

    def test_with_loop(self):
        assert function_has_loop(make_fig7_program(3).main)


class TestDummyMarkers:
    def _converted_fig7(self):
        program = clone_program(make_fig7_program(5))
        convert_function(program.main, IA64)
        return program

    def test_inserted_after_accesses(self):
        program = self._converted_fig7()
        count = insert_dummy_markers(program.main)
        assert count >= 2  # the fill store and the loop load at least
        assert _count(program.main, Opcode.JUST_EXTENDED) == count

    def test_skipped_when_index_overwritten(self):
        # i = a[i]: marker must not be inserted.
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(4)
        arr = b.newarray(ScalarType.I32, n)
        i = b.func.named_reg("i", ScalarType.I32)
        b.mov(b.const(0), i)
        b.aload(arr, i, ScalarType.I32, i)  # i = a[i]
        b.ret(i)
        count = insert_dummy_markers(program.main)
        assert count == 0

    def test_removed_after_elimination(self):
        program = self._converted_fig7()
        insert_dummy_markers(program.main)
        removed = remove_dummy_markers(program.main)
        assert removed > 0
        assert _count(program.main, Opcode.JUST_EXTENDED) == 0

    def test_full_pipeline_leaves_no_dummies(self):
        compiled = compile_ir(make_fig7_program(5),
                                   VARIANTS["new algorithm (all)"])
        for func in compiled.program.functions.values():
            assert _count(func, Opcode.JUST_EXTENDED) == 0


class TestInsertion:
    def test_only_in_functions_with_loops(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.F64)
        total = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        d = b.unop(Opcode.I2D, total)
        b.ret(d)
        convert_function(program.main, IA64)
        inserted = insert_before_requiring_uses(program.main, IA64)
        assert inserted == 0  # no loop -> no insertion

    def test_inserts_before_requiring_use(self):
        program = clone_program(make_fig7_program(5))
        convert_function(program.main, IA64)
        inserted = insert_before_requiring_uses(program.main, IA64)
        assert inserted >= 1
        # The i2d in the exit block is now preceded by an extension.
        for block in program.main.blocks:
            for position, instr in enumerate(block.instrs):
                if instr.opcode is Opcode.I2D:
                    assert block.instrs[position - 1].opcode is Opcode.EXTEND32


class TestOrdering:
    def test_candidates_are_same_register_extends(self):
        program = clone_program(make_fig7_program(5))
        convert_function(program.main, IA64)
        for ext in order_candidates(program.main, use_order=True):
            assert is_candidate_extend(ext)

    def test_order_puts_loop_extensions_first(self):
        program = clone_program(make_fig7_program(5))
        convert_function(program.main, IA64)
        ordered = order_candidates(program.main, use_order=True)
        assert ordered, "expected candidates"
        # First candidate lives in a loop (depth > 0).
        from repro.analysis import LoopForest

        LoopForest(program.main)
        first_block = next(
            block for block in program.main.blocks
            if any(i is ordered[0] for i in block.instrs)
        )
        assert first_block.loop_depth > 0

    def test_profile_sharpen_order(self):
        program = clone_program(make_fig7_program(40))
        profile_src = make_fig7_program(40)
        from repro.interp import collect_branch_profiles

        profiles = collect_branch_profiles(profile_src)
        convert_function(program.main, IA64)
        # Block labels agree between the clone and the profile source.
        ordered = order_candidates(program.main, use_order=True,
                                   profile=profiles["main"])
        assert ordered

    def test_reverse_dfs_without_order(self):
        program = clone_program(make_fig7_program(5))
        convert_function(program.main, IA64)
        with_order = order_candidates(program.main, use_order=True)
        without = order_candidates(program.main, use_order=False)
        assert {i.uid for i in with_order} == {i.uid for i in without}


class TestFirstAlgorithm:
    def test_removes_store_feeding_extension(self):
        # v's extension is unneeded: only a 32-bit store consumes it.
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)], None)
        n = b.const(8)
        arr = b.newarray(ScalarType.I32, n)
        zero = b.const(0)
        v = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        b.astore(arr, zero, v, ScalarType.I32)
        b.ret()
        convert_function(program.main, IA64)
        before = _count(program.main, Opcode.EXTEND32)
        removed = run_first_algorithm(program.main, IA64)
        assert removed >= 1
        assert _count(program.main, Opcode.EXTEND32) == before - removed

    def test_keeps_extension_before_i2d(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.F64)
        v = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        d = b.unop(Opcode.I2D, v)
        b.ret(d)
        convert_function(program.main, IA64)
        run_first_algorithm(program.main, IA64)
        assert _count(program.main, Opcode.EXTEND32) == 1

    def test_keeps_latest_extension(self):
        """Limitation 3: backward flow keeps the latest of a chain."""
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.F64)
        x = b.func.params[0]
        v = b.func.named_reg("v", ScalarType.I32)
        b.binop(Opcode.ADD32, x, x, v)
        b.emit(Instr(Opcode.EXTEND32, v, (v,)))  # e1 (early)
        b.emit(Instr(Opcode.EXTEND32, v, (v,)))  # e2 (late)
        d = b.unop(Opcode.I2D, v)
        b.ret(d)
        removed = run_first_algorithm(program.main, IA64)
        assert removed == 1
        # e2 (the latest) survives.
        remaining = [i for _, i in program.main.instructions()
                     if i.opcode is Opcode.EXTEND32]
        assert len(remaining) == 1

    def test_sound_on_fig7(self):
        program = make_fig7_program(20)
        gold = run_ideal(program)
        converted = clone_program(program)
        for func in converted.functions.values():
            convert_function(func, IA64)
            run_first_algorithm(func, IA64)
        assert run_machine(converted).observable() == gold.observable()


class TestPDEInsertion:
    def test_sinks_out_of_straightline_dead_path(self):
        # extend whose value is never needed downstream: dropped.
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        x = b.func.params[0]
        v = b.func.named_reg("v", ScalarType.I32)
        b.binop(Opcode.ADD32, x, x, v)
        b.emit(Instr(Opcode.EXTEND32, v, (v,)))
        b.mov(b.const(5), v)  # v redefined: the extension was dead
        b.ret(v)
        delta = run_pde_insertion(program.main, IA64)
        assert delta < 0  # net removal
        assert _count(program.main, Opcode.EXTEND32) == 0

    def test_materializes_before_requiring_use(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.F64)
        x = b.func.params[0]
        v = b.func.named_reg("v", ScalarType.I32)
        b.binop(Opcode.ADD32, x, x, v)
        b.emit(Instr(Opcode.EXTEND32, v, (v,)))
        b.emit(Instr(Opcode.NOP))
        d = b.unop(Opcode.I2D, v)
        b.ret(d)
        run_pde_insertion(program.main, IA64)
        instrs = program.main.entry.instrs
        i2d_at = next(k for k, i in enumerate(instrs)
                      if i.opcode is Opcode.I2D)
        assert instrs[i2d_at - 1].opcode is Opcode.EXTEND32
        # x + x overflows; the materialized extension canonicalizes it,
        # so i2d sees the wrapped Java value, not the raw 64-bit sum.
        result = run_machine(program, args=(0x7FFFFFFF,))
        assert result.ret_value == -2.0

    def test_sound_on_fig7(self):
        program = make_fig7_program(20)
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["all, using PDE"])
        assert run_machine(compiled.program).observable() == gold.observable()


class TestTiming:
    def test_buckets_populated(self):
        compiled = compile_ir(make_fig7_program(5),
                                   VARIANTS["new algorithm (all)"])
        timing = compiled.timing
        assert timing.seconds.get(BUCKET_SIGN_EXT, 0) > 0
        assert timing.seconds.get(BUCKET_CHAINS, 0) > 0
        assert timing.seconds.get(BUCKET_OTHERS, 0) > 0
        total = timing.fraction(BUCKET_SIGN_EXT) + timing.fraction(
            BUCKET_CHAINS) + timing.fraction(BUCKET_OTHERS)
        assert abs(total - 1.0) < 1e-9

    def test_baseline_has_no_sign_ext_time(self):
        compiled = compile_ir(make_fig7_program(5), VARIANTS["baseline"])
        assert compiled.timing.seconds.get(BUCKET_SIGN_EXT, 0) == 0
