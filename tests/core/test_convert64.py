"""Tests for Figure 5 step 1: conversion for a 64-bit architecture."""

from repro.core import convert_function
from repro.core.config import Placement
from repro.ir import Instr, Opcode, Program, ScalarType, build_function
from repro.ir.clone import clone_program
from repro.machine import IA64, PPC64
from tests.conftest import make_fig7_program, run_ideal, run_machine


def _count(func, opcode):
    return sum(1 for _, i in func.instructions() if i.opcode is opcode)


class TestGenDef:
    def test_extend_after_every_nonguaranteed_def(self):
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        result = b.binop(Opcode.ADD32, *b.func.params)
        b.ret(result)
        convert_function(program.main, IA64)
        instrs = [i for _, i in program.main.instructions()]
        add_at = next(k for k, i in enumerate(instrs)
                      if i.opcode is Opcode.ADD32)
        assert instrs[add_at + 1].opcode is Opcode.EXTEND32
        assert instrs[add_at + 1].dest.name == instrs[add_at].dest.name

    def test_no_extend_after_guaranteed_defs(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)], None)
        b.const(5)  # canonical constant
        from repro.ir import Cond

        b.cmp(Opcode.CMP32, Cond.LT, b.func.params[0], b.func.params[0])
        b.ret()
        convert_function(program.main, IA64)
        assert _count(program.main, Opcode.EXTEND32) == 0

    def test_no_extend_after_copies(self):
        # Gen-def invariant: copies of canonical values stay canonical.
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)], None)
        b.mov(b.func.params[0])
        b.ret()
        convert_function(program.main, IA64)
        assert _count(program.main, Opcode.EXTEND32) == 0

    def test_byte_load_gets_extend8_on_ia64(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(4)
        arr = b.newarray(ScalarType.I8, n)
        zero = b.const(0)
        value = b.aload(arr, zero, ScalarType.I8)
        b.ret(value)
        convert_function(program.main, IA64)
        assert _count(program.main, Opcode.EXTEND8) == 1

    def test_i32_load_needs_no_extend_on_ppc64(self):
        program = make_fig7_program(5)
        ia64 = clone_program(program)
        ppc = clone_program(program)
        convert_function(ia64.main, IA64)
        convert_function(ppc.main, PPC64)
        # IA64 zero-extends int loads; PPC64's lwa sign-extends, so the
        # PPC64 conversion emits strictly fewer extensions.
        assert _count(ppc.main, Opcode.EXTEND32) < _count(
            ia64.main, Opcode.EXTEND32
        )

    def test_converted_code_preserves_behaviour(self):
        program = make_fig7_program(20)
        gold = run_ideal(program)
        converted = clone_program(program)
        for func in converted.functions.values():
            convert_function(func, IA64)
        run = run_machine(converted)
        assert run.observable() == gold.observable()


class TestGenUse:
    def test_extends_placed_before_requiring_uses(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.F64)
        total = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        d = b.unop(Opcode.I2D, total)
        b.ret(d)
        convert_function(program.main, IA64, Placement.GEN_USE)
        instrs = [i for _, i in program.main.instructions()]
        i2d_at = next(k for k, i in enumerate(instrs)
                      if i.opcode is Opcode.I2D)
        assert instrs[i2d_at - 1].opcode is Opcode.EXTEND32

    def test_gen_use_preserves_behaviour(self):
        program = make_fig7_program(20)
        gold = run_ideal(program)
        converted = clone_program(program)
        for func in converted.functions.values():
            convert_function(func, IA64, Placement.GEN_USE)
        run = run_machine(converted)
        assert run.observable() == gold.observable()

    def test_gen_use_skips_canonical_defs(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.F64)
        c = b.const(42)
        d = b.unop(Opcode.I2D, c)
        b.ret(d)
        convert_function(program.main, IA64, Placement.GEN_USE)
        assert _count(program.main, Opcode.EXTEND32) == 0
