"""Reproductions of the paper's worked examples (Figures 3, 7-10, 15).

Each test builds the figure's kernel, runs the relevant algorithm
variant, and checks the paper's stated outcome: which extensions remain,
and where.
"""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.core.config import Algorithm, SignExtConfig
from repro.ir import Opcode
from tests.conftest import make_fig7_program, run_ideal, run_machine


def _extends_in_loops(program) -> int:
    """Static count of extend32 instructions inside loops."""
    from repro.analysis import LoopForest

    total = 0
    for func in program.functions.values():
        forest = LoopForest(func)
        for block in func.blocks:
            if block.loop_depth > 0:
                total += sum(
                    1 for i in block.instrs if i.opcode is Opcode.EXTEND32
                )
    return total


def _dyn_extends(program, variant_name):
    config = VARIANTS[variant_name]
    compiled = compile_ir(program, config)
    run = run_machine(compiled.program)
    return run, compiled


class TestFigure3FirstAlgorithmLimitations:
    """The first algorithm eliminates (1), (5), (7) but not (3)/(9)."""

    def test_first_algorithm_leaves_loop_extensions(self):
        program = make_fig7_program(50)
        run, compiled = _dyn_extends(program, "first algorithm (bwd flow)")
        gold = run_ideal(program)
        assert run.observable() == gold.observable()
        # The array-index extension (3) and the accumulator extension (9)
        # both execute every iteration: >= 2 per iteration remain.
        assert run.extends32 >= 2 * 49

    def test_first_algorithm_improves_on_baseline(self):
        program = make_fig7_program(50)
        baseline, _ = _dyn_extends(program, "baseline")
        first, _ = _dyn_extends(program, "first algorithm (bwd flow)")
        assert first.extends32 < baseline.extends32


class TestFigure7And8InsertionEffect:
    """Insertion + order + array empties the loop entirely (Figure 8(b))."""

    def test_full_algorithm_leaves_single_extension(self):
        program = make_fig7_program(50)
        run, compiled = _dyn_extends(program, "new algorithm (all)")
        gold = run_ideal(program)
        assert run.observable() == gold.observable()
        # Only the inserted extension before (double)t remains: one
        # dynamic execution regardless of the iteration count.
        assert run.extends32 == 1

    def test_without_insertion_the_loop_keeps_extension_9(self):
        program = make_fig7_program(50)
        run, _ = _dyn_extends(program, "array, order")
        # extension (9) for t += j still runs every iteration.
        assert run.extends32 >= 49

    def test_insertion_without_order_not_sufficient(self):
        """Figure 7: eliminating (11) first forces (9) to stay."""
        program = make_fig7_program(50)
        with_order, _ = _dyn_extends(program, "new algorithm (all)")
        without_order, _ = _dyn_extends(program, "array, insert")
        assert with_order.extends32 <= without_order.extends32


class TestFigure9OrderDetermination:
    """Two candidates, only one can be eliminated: prefer the loop one."""

    def _fig9_program(self):
        from repro.ir import Cond, Program, ScalarType, build_function

        program = Program("fig9")
        b = build_function(
            program, "main",
            [("j", ScalarType.I32), ("k", ScalarType.I32)], ScalarType.I32
        )
        j, k = b.func.params
        n = b.const(40)
        arr = b.newarray(ScalarType.I32, n)
        i = b.func.named_reg("i", ScalarType.I32)
        one = b.const(1)
        end = b.const(30)
        zero = b.const(0)
        # i = j + k  (needs extension for the array use, Theorem 2)
        b.binop(Opcode.ADD32, j, k, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.ADD32, i, one, i)
        b.astore(arr, i, zero, ScalarType.I32)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, end)
        b.br(cond, loop, done)
        b.switch(done)
        total = b.aload(arr, end, ScalarType.I32)
        b.sink(total)
        b.ret(total)
        return program

    def test_order_prefers_hot_extension(self):
        program = self._fig9_program()
        config = VARIANTS["new algorithm (all)"]
        compiled = compile_ir(program, config)
        run = run_machine(compiled.program, args=(3, 4))
        gold = run_ideal(program, args=(3, 4))
        assert run.observable() == gold.observable()
        # Result 1 of Figure 9: the in-loop extension is gone; what
        # remains executes once per run (the pre-loop extension and the
        # one protecting the observable sink), not once per iteration.
        assert run.extends32 <= 2
        assert _extends_in_loops(compiled.program) == 0


class TestFigure10ArraySizeDependence:
    """i = i - 2 with mem = 0x80000000: eliminable only if maxlen is
    known to be below 0x7fffffff."""

    def _fig10_program(self):
        from repro.ir import Cond, Program, ScalarType, build_function

        program = Program("fig10")
        program.add_global("mem", ScalarType.I32, 64)
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(65)
        arr = b.newarray(ScalarType.I32, n)
        i = b.func.named_reg("i", ScalarType.I32)
        t = b.func.named_reg("t", ScalarType.I32)
        two = b.const(2)
        zero = b.const(0)
        b.gload("mem", ScalarType.I32, i)
        b.mov(zero, t)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.SUB32, i, two, i)
        j = b.aload(arr, i, ScalarType.I32)
        b.binop(Opcode.ADD32, t, j, t)
        cond = b.cmp(Opcode.CMP32, Cond.GT, i, zero)
        b.br(cond, loop, done)
        b.switch(done)
        b.sink(t)
        b.ret(t)
        return program

    def test_step_minus_2_eliminable_with_limited_maxlen(self):
        """With maxlen < 0x7fffffff, Theorem 4 covers step -2 (the
        third condition becomes j >= maxlen-1-0x7fffffff <= -2)."""
        import dataclasses

        program = self._fig10_program()
        gold = run_ideal(program)
        config = dataclasses.replace(
            VARIANTS["new algorithm (all)"], max_array_length=0x7FFF0001
        )
        compiled = compile_ir(program, config)
        run = run_machine(compiled.program)
        assert run.observable() == gold.observable()
        assert _extends_in_loops(compiled.program) == 0

    def test_step_minus_2_on_java_maxlen_also_safe(self):
        """With the Java maxlen the bound is -1, so a -2 step cannot use
        Theorem 4's negative-operand slack... but Theorem 3 (upper-32
        zero via the zero-extending load + dummies) may still apply.
        Whatever the analysis decides, behaviour must be preserved."""
        program = self._fig10_program()
        gold = run_ideal(program)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        run = run_machine(compiled.program)
        assert run.observable() == gold.observable()


class TestFigure15PdeComparison:
    def test_pde_close_to_simple_insertion(self):
        program = make_fig7_program(50)
        simple, _ = _dyn_extends(program, "new algorithm (all)")
        pde, _ = _dyn_extends(program, "all, using PDE")
        # The paper: "the simple insertion algorithm is slightly better";
        # on this kernel they coincide or simple wins.
        assert simple.extends32 <= pde.extends32 + 1


class TestVariantMonotonicity:
    """Adding machinery never makes the Figure-7 kernel worse."""

    @pytest.mark.parametrize("weaker,stronger", [
        ("baseline", "first algorithm (bwd flow)"),
        ("first algorithm (bwd flow)", "basic ud/du"),
        ("basic ud/du", "array"),
        ("array", "new algorithm (all)"),
    ])
    def test_pairwise(self, weaker, stronger):
        program = make_fig7_program(30)
        weak, _ = _dyn_extends(program, weaker)
        strong, _ = _dyn_extends(program, stronger)
        assert strong.extends32 <= weak.extends32
