"""PPC64 end-to-end: implicit sign extension changes the problem but
not the answers."""

import pytest

from repro.core import VARIANTS, compile_ir
from repro.machine import IA64, PPC64
from repro.workloads import get_workload
from tests.conftest import make_fig7_program, run_ideal, run_machine


class TestPpc64Equivalence:
    @pytest.mark.parametrize("variant", [
        "baseline", "gen use", "first algorithm (bwd flow)",
        "new algorithm (all)", "all, using PDE",
    ])
    def test_fig7_all_variants(self, variant):
        program = make_fig7_program(30)
        gold = run_ideal(program)
        config = VARIANTS[variant].with_traits(PPC64)
        compiled = compile_ir(program, config)
        run = run_machine(compiled.program, traits=PPC64)
        assert run.observable() == gold.observable()

    @pytest.mark.parametrize("name", ["bitfield", "javac"])
    def test_workloads_full_algorithm(self, name):
        program = get_workload(name).program()
        gold = run_ideal(program, fuel=20_000_000)
        config = VARIANTS["new algorithm (all)"].with_traits(PPC64)
        compiled = compile_ir(program, config)
        run = run_machine(compiled.program, traits=PPC64, fuel=20_000_000)
        assert run.observable() == gold.observable()

    def test_ppc64_baseline_fewer_extensions(self):
        """Section 1: implicit sign extension (lwa) means fewer explicit
        extensions exist before any optimization."""
        program = make_fig7_program(30)
        ia64 = compile_ir(program, VARIANTS["baseline"])
        ppc64 = compile_ir(
            program, VARIANTS["baseline"].with_traits(PPC64)
        )
        ia64_run = run_machine(ia64.program, traits=IA64)
        ppc64_run = run_machine(ppc64.program, traits=PPC64)
        assert ppc64_run.extends32 < ia64_run.extends32

    def test_theorem3_matters_more_on_ia64(self):
        """Theorem 3 'is useful on IA64 since zero extension is
        performed for every memory read' — the upper-32-zero fact that
        feeds it simply does not exist for PPC64 int loads, yet the
        full algorithm still reaches a small residual there because
        loads are canonical instead."""
        program = make_fig7_program(30)
        for traits in (IA64, PPC64):
            config = VARIANTS["new algorithm (all)"].with_traits(traits)
            compiled = compile_ir(program, config)
            run = run_machine(compiled.program, traits=traits)
            assert run.extends32 <= 2
