"""Direct tests of Theorems 1-4 (Section 3) via AnalyzeARRAY.

Each test builds a kernel whose array subscript matches one theorem's
hypotheses, runs elimination with array analysis enabled, and checks
that the subscript's extension disappears — or stays when a hypothesis
is violated.  Soundness (identical observable behaviour under
machine-faithful execution) is asserted every time.
"""

from repro.core import VARIANTS, compile_ir
from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from tests.conftest import run_ideal, run_machine

ARRAY_CFG = VARIANTS["array"]
FULL_CFG = VARIANTS["new algorithm (all)"]


def _loop_extends(program) -> int:
    from repro.analysis import LoopForest

    total = 0
    for func in program.functions.values():
        LoopForest(func)
        for block in func.blocks:
            if block.loop_depth > 0:
                total += sum(1 for i in block.instrs if i.is_extend)
    return total


def _check(program, config=ARRAY_CFG, args=()):
    gold = run_ideal(program, args=args)
    compiled = compile_ir(program, config)
    run = run_machine(compiled.program, args=args)
    assert run.observable() == gold.observable()
    return compiled, run


class TestTheorem1:
    """Upper 32 bits zero + LS(i) => no extension for a[i]."""

    def test_zero_extended_load_as_index(self):
        # On IA64 an int load zero-extends: a[b[0]] needs no sxt for
        # the outer subscript.
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(16)
        a = b.newarray(ScalarType.I32, n)
        idx_arr = b.newarray(ScalarType.I32, n)
        five = b.const(5)
        zero = b.const(0)
        b.astore(idx_arr, zero, five, ScalarType.I32)
        loaded = b.aload(idx_arr, zero, ScalarType.I32)
        value = b.aload(a, loaded, ScalarType.I32)
        out = b.binop(Opcode.AND32, value, b.const(0xFF))  # canonical
        b.sink(out)
        b.ret(out)
        compiled, run = _check(program)
        assert run.extends32 == 0

    def test_masked_index(self):
        # (x & 0xF) has zero upper bits: Theorem 1 applies.
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(16)
        a = b.newarray(ScalarType.I32, n)
        mask = b.const(0xF)
        idx = b.binop(Opcode.AND32, b.func.params[0], mask)
        value = b.aload(a, idx, ScalarType.I32)
        out = b.binop(Opcode.AND32, value, b.const(0xFF))  # canonical
        b.sink(out)
        b.ret(out)
        compiled, run = _check(program, args=(0x7FFF_FFF3,))
        assert run.extends32 == 0


class TestTheorem2:
    """i + j with both canonical and one in [0, 0x7fffffff]."""

    def test_sum_of_canonical_nonnegative(self):
        program = Program()
        b = build_function(program, "main",
                           [("i", ScalarType.I32), ("j", ScalarType.I32)],
                           ScalarType.I32)
        i, j = b.func.params
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        # j & 0xFF is canonical and non-negative.
        masked = b.binop(Opcode.AND32, j, b.const(0xFF))
        idx = b.binop(Opcode.ADD32, i, masked)
        value = b.aload(a, idx, ScalarType.I32)
        out = b.binop(Opcode.AND32, value, b.const(0xFF))  # canonical
        b.sink(out)
        b.ret(out)
        compiled, run = _check(program, args=(5, 7))
        assert run.extends32 == 0


class TestTheorem3:
    """i - j with upper-32-zero i and 0 <= j <= 0x7fffffff.

    Note: this needs order determination.  Without it, elimination runs
    bottom-up, analyzes the subscript's extension while the load's
    extension still exists (which destroys the upper-32-zero fact), and
    keeps it — exactly the order-sensitivity the paper describes.
    """

    def _program(self):
        program = Program()
        b = build_function(program, "main", [("x", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        idx_arr = b.newarray(ScalarType.I32, n)
        ten = b.const(10)
        zero = b.const(0)
        b.astore(idx_arr, zero, ten, ScalarType.I32)
        i = b.aload(idx_arr, zero, ScalarType.I32)  # upper 32 zero (IA64)
        j = b.binop(Opcode.AND32, b.func.params[0], b.const(0x7))  # in [0,7]
        idx = b.binop(Opcode.SUB32, i, j)
        value = b.aload(a, idx, ScalarType.I32)
        out = b.binop(Opcode.AND32, value, b.const(0xFF))  # canonical
        b.sink(out)
        b.ret(out)
        return program

    def test_loaded_minus_masked(self):
        program = self._program()
        compiled, run = _check(program, VARIANTS["array, order"], args=(3,))
        assert run.extends32 == 0

    def test_reverse_order_misses_it(self):
        """Counterpart: without order determination the subscript
        extension survives (soundly)."""
        program = self._program()
        compiled, run = _check(program, VARIANTS["array"], args=(3,))
        assert run.extends32 >= 1


class TestTheorem4:
    """Count-down loops: i + (-1) with -1 >= (maxlen-1) - 0x7fffffff."""

    def test_count_down_loop_subscript_eliminated(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(32)
        a = b.newarray(ScalarType.I32, n)
        i = b.func.named_reg("i", ScalarType.I32)
        t = b.func.named_reg("t", ScalarType.I32)
        one = b.const(1)
        zero = b.const(0)
        thirty = b.const(31)
        b.mov(thirty, i)
        b.mov(zero, t)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.binop(Opcode.SUB32, i, one, i)
        v = b.aload(a, i, ScalarType.I32)
        b.binop(Opcode.ADD32, t, v, t)
        cond = b.cmp(Opcode.CMP32, Cond.GT, i, zero)
        b.br(cond, loop, done)
        b.switch(done)
        b.sink(t)
        b.ret(t)
        compiled, run = _check(program, FULL_CFG)
        assert _loop_extends(compiled.program) == 0

    def test_count_up_loop_subscript_eliminated(self):
        program = Program()
        b = build_function(program, "main", [], ScalarType.I32)
        n = b.const(32)
        a = b.newarray(ScalarType.I32, n)
        i = b.func.named_reg("i", ScalarType.I32)
        one = b.const(1)
        zero = b.const(0)
        limit = b.const(32)
        b.mov(zero, i)
        loop = b.block("loop")
        done = b.block("done")
        b.jmp(loop)
        b.switch(loop)
        b.astore(a, i, i, ScalarType.I32)
        b.binop(Opcode.ADD32, i, one, i)
        cond = b.cmp(Opcode.CMP32, Cond.LT, i, limit)
        b.br(cond, loop, done)
        b.switch(done)
        b.ret(i)
        compiled, run = _check(program, FULL_CFG)
        assert _loop_extends(compiled.program) == 0


class TestHypothesisViolations:
    def test_multiply_blocks_array_analysis(self):
        # i * 2 as subscript: the theorems cover only +/-, so the
        # extension must stay (and behaviour is still correct).
        program = Program()
        b = build_function(program, "main", [("i", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        idx = b.binop(Opcode.MUL32, b.func.params[0], b.const(2))
        value = b.aload(a, idx, ScalarType.I32)
        b.sink(value)
        b.ret(value)
        compiled, run = _check(program, args=(5,))
        assert run.extends32 >= 1

    def test_unknown_plus_unknown_blocked(self):
        # i + j with neither operand range-bounded: Theorem 2/4's range
        # condition fails, the extension stays.
        program = Program()
        b = build_function(program, "main",
                           [("i", ScalarType.I32), ("j", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        idx = b.binop(Opcode.ADD32, *b.func.params)
        value = b.aload(a, idx, ScalarType.I32)
        b.sink(value)
        b.ret(value)
        compiled, run = _check(program, args=(60, 2))
        assert run.extends32 >= 1

    def test_non_canonical_operand_blocked(self):
        # i + small where i itself is a raw (unextended) sum: the
        # "already sign-extended" hypothesis fails for i.
        program = Program()
        b = build_function(program, "main",
                           [("x", ScalarType.I32), ("y", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        raw = b.binop(Opcode.ADD32, *b.func.params)
        idx = b.binop(Opcode.ADD32, raw, b.const(1))
        value = b.aload(a, idx, ScalarType.I32)
        b.sink(value)
        b.ret(value)
        gold = run_ideal(program, args=(10, 20))
        compiled = compile_ir(program, ARRAY_CFG)
        run = run_machine(compiled.program, args=(10, 20))
        assert run.observable() == gold.observable()


class TestUnsoundnessDetector:
    def test_interpreter_faults_on_bad_effective_address(self):
        """Sanity-check the oracle itself: hand-removing a required
        extension triggers the MemoryFault detector."""
        import pytest

        from repro.interp import Interpreter, MemoryFault, Trap

        program = Program()
        b = build_function(program, "main", [("i", ScalarType.I32)],
                           ScalarType.I32)
        n = b.const(64)
        a = b.newarray(ScalarType.I32, n)
        # Note: NO extension after the add; i + j may have garbage
        # upper bits at the access.
        idx = b.binop(Opcode.ADD32, b.func.params[0], b.func.params[0])
        value = b.aload(a, idx, ScalarType.I32)
        b.ret(value)
        # i = 0x80000000: i+i = 0x100000000 -> low32 = 0 passes the
        # bounds check but the full register is wild.
        interp = Interpreter(program, mode="machine")
        with pytest.raises((MemoryFault, Trap)):
            interp.run(args=(0x8000_0000,))
