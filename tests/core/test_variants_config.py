"""Consistency of the variant registry (the rows of Tables 1/2)."""

import dataclasses

from repro.core import REFERENCE_VARIANTS, VARIANTS
from repro.core.config import Algorithm, Placement, SignExtConfig
from repro.harness.tables import ROW_ORDER
from repro.ir.types import JAVA_MAX_ARRAY_LENGTH


class TestRegistry:
    def test_twelve_rows_in_paper_order(self):
        assert list(VARIANTS) == [
            "baseline",
            "gen use",
            "first algorithm (bwd flow)",
            "basic ud/du",
            "insert",
            "order",
            "insert, order",
            "array",
            "array, insert",
            "array, order",
            "all, using PDE",
            "new algorithm (all)",
        ]
        assert ROW_ORDER == list(VARIANTS)

    def test_reference_rows(self):
        assert REFERENCE_VARIANTS == {"gen use", "all, using PDE"}

    def test_flags_match_names(self):
        v = VARIANTS
        assert v["baseline"].algorithm is Algorithm.NONE
        assert v["gen use"].placement is Placement.GEN_USE
        assert v["gen use"].algorithm is Algorithm.NONE
        assert v["first algorithm (bwd flow)"].algorithm is Algorithm.BWD_FLOW
        for name in ("basic ud/du", "insert", "order", "insert, order",
                     "array", "array, insert", "array, order",
                     "all, using PDE", "new algorithm (all)"):
            assert v[name].algorithm is Algorithm.UD_DU, name
        assert not v["basic ud/du"].insert
        assert not v["basic ud/du"].order
        assert not v["basic ud/du"].array
        assert v["insert"].insert and not v["insert"].order
        assert v["order"].order and not v["order"].insert
        assert v["insert, order"].insert and v["insert, order"].order
        assert v["array"].array
        assert v["array, insert"].array and v["array, insert"].insert
        assert v["array, order"].array and v["array, order"].order
        full = v["new algorithm (all)"]
        assert full.insert and full.order and full.array
        assert not full.insert_pde
        pde = v["all, using PDE"]
        assert pde.insert and pde.order and pde.array and pde.insert_pde

    def test_all_variants_use_gen_def_except_reference(self):
        for name, config in VARIANTS.items():
            expected = (Placement.GEN_USE if name == "gen use"
                        else Placement.GEN_DEF)
            assert config.placement is expected, name

    def test_defaults(self):
        config = SignExtConfig()
        assert config.max_array_length == JAVA_MAX_ARRAY_LENGTH
        assert config.theorems == frozenset({1, 2, 3, 4})
        assert config.general_opts
        assert config.use_profile
        assert config.traits.name == "ia64"

    def test_with_traits_is_pure(self):
        from repro.machine import PPC64

        base = VARIANTS["new algorithm (all)"]
        changed = base.with_traits(PPC64)
        assert changed.traits.name == "ppc64"
        assert base.traits.name == "ia64"  # frozen original untouched
        assert changed.insert == base.insert

    def test_configs_are_hashable_and_frozen(self):
        config = VARIANTS["baseline"]
        with_change = dataclasses.replace(config, order=True)
        assert with_change != config
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            config.order = True  # type: ignore[misc]
