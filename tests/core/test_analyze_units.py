"""Focused unit tests for the Eliminator's analysis routines
(AnalyzeUSE / AnalyzeDEF / AnalyzeARRAY internals)."""

import dataclasses

from repro.analysis import Chains
from repro.core import VARIANTS
from repro.core.analyze import Eliminator
from repro.core.convert64 import convert_function
from repro.ir import (
    Cond,
    Instr,
    Opcode,
    Program,
    ScalarType,
    build_function,
)
from repro.machine import IA64


def _setup(build, config=None):
    """Build a function, convert it, and return (func, eliminator)."""
    program = Program()
    b = build_function(program, "main", [("x", ScalarType.I32),
                                         ("y", ScalarType.I32)], None)
    build(b)
    b.ret()
    convert_function(program.main, IA64)
    chains = Chains(program.main)
    eliminator = Eliminator(program.main, chains,
                            config or VARIANTS["new algorithm (all)"])
    return program.main, eliminator


def _first(func, opcode):
    for _, instr in func.instructions():
        if instr.opcode is opcode:
            return instr
    raise AssertionError(f"no {opcode} in function")


def _extends(func):
    return [i for _, i in func.instructions()
            if i.opcode is Opcode.EXTEND32]


class TestAnalyzeUse:
    def test_store_use_not_required(self):
        def build(b):
            n = b.const(8)
            arr = b.newarray(ScalarType.I32, n)
            zero = b.const(0)
            v = b.binop(Opcode.ADD32, *b.func.params)
            b.astore(arr, zero, v, ScalarType.I32)

        func, eliminator = _setup(build)
        ext = _extends(func)[0]
        assert eliminator.try_eliminate(ext)

    def test_i2d_use_required(self):
        def build(b):
            v = b.binop(Opcode.ADD32, *b.func.params)
            d = b.unop(Opcode.I2D, v)
            b.sink(d)

        func, eliminator = _setup(build)
        ext = _extends(func)[0]
        assert not eliminator.try_eliminate(ext)

    def test_case2_propagation_through_add(self):
        def build(b):
            n = b.const(8)
            arr = b.newarray(ScalarType.I32, n)
            zero = b.const(0)
            v = b.binop(Opcode.ADD32, *b.func.params)
            w = b.binop(Opcode.ADD32, v, v)
            b.astore(arr, zero, w, ScalarType.I32)

        func, eliminator = _setup(build)
        # Both extensions die: the final consumer is a 32-bit store.
        for ext in list(_extends(func)):
            assert eliminator.try_eliminate(ext)

    def test_masking_and_is_case1(self):
        """Figure 3 statement (6): AND with a positive constant."""
        def build(b):
            v = b.binop(Opcode.ADD32, *b.func.params)
            masked = b.binop(Opcode.AND32, v, b.const(0x0FFFFFFF))
            d = b.unop(Opcode.I2D, masked)
            b.sink(d)

        func, eliminator = _setup(build)
        # v's extension: its only use is the masking AND -> removable.
        ext = _extends(func)[0]
        assert eliminator.try_eliminate(ext)

    def test_or_is_not_masking(self):
        def build(b):
            v = b.binop(Opcode.ADD32, *b.func.params)
            combined = b.binop(Opcode.OR32, v, b.const(0x0FFFFFFF))
            d = b.unop(Opcode.I2D, combined)
            b.sink(d)

        func, eliminator = _setup(build)
        ext = _extends(func)[0]
        assert not eliminator.try_eliminate(ext)


class TestAnalyzeDef:
    def test_all_defs_canonical_allows_elimination(self):
        def build(b):
            p = b.cmp(Opcode.CMP32, Cond.LT, *b.func.params)
            # p is 0/1 (canonical); an extension of it is redundant even
            # though its use (i2d) requires canonicality.
            d = b.unop(Opcode.I2D, p)
            b.sink(d)

        func, eliminator = _setup(build)
        extends = _extends(func)
        if extends:  # conversion may already skip it (cmp is canonical)
            assert eliminator.try_eliminate(extends[0])
        else:
            # Conversion itself knew the compare result is canonical.
            assert True

    def test_mixed_defs_block_def_side(self):
        def build(b):
            x, y = b.func.params
            v = b.func.named_reg("v", ScalarType.I32)
            then_block = b.block("then")
            join = b.block("join")
            p = b.cmp(Opcode.CMP32, Cond.LT, x, y)
            b.br(p, then_block, join)
            b.switch(then_block)
            b.binop(Opcode.ADD32, x, y, v)  # not canonical
            b.jmp(join)
            b.switch(join)
            b.mov(b.const(5), v)
            d = b.unop(Opcode.I2D, v)
            b.sink(d)

        # Note: the mov kills the add along that path; the actually
        # interesting case is built in integration tests.  Here we only
        # verify the setup compiles and the API answers consistently.
        func, eliminator = _setup(build)
        for ext in list(_extends(func)):
            eliminator.try_eliminate(ext)  # must not raise


class TestTheoremConfig:
    def test_disabling_all_theorems_keeps_subscript_extension(self):
        """An index loaded from an int array is upper-32-zero (IA64)
        but NOT canonical, so only Theorem 1 can remove its extension;
        with the theorems disabled it must stay."""
        config = dataclasses.replace(
            VARIANTS["new algorithm (all)"], theorems=frozenset()
        )

        def build(b):
            n = b.const(8)
            arr = b.newarray(ScalarType.I32, n)
            idx_arr = b.newarray(ScalarType.I32, n)
            zero = b.const(0)
            loaded = b.aload(idx_arr, zero, ScalarType.I32)
            v = b.aload(arr, loaded, ScalarType.I32)
            out = b.binop(Opcode.AND32, v, b.const(0xFF))
            b.sink(out)

        func, eliminator = _setup(build, config)
        kept = [e for e in _extends(func)
                if not eliminator.try_eliminate(e)]
        assert kept

    def test_theorem1_alone_handles_masked_index(self):
        config = dataclasses.replace(
            VARIANTS["new algorithm (all)"], theorems=frozenset({1})
        )

        def build(b):
            n = b.const(8)
            arr = b.newarray(ScalarType.I32, n)
            masked = b.binop(Opcode.AND32, b.func.params[0], b.const(7))
            v = b.aload(arr, masked, ScalarType.I32)
            out = b.binop(Opcode.AND32, v, b.const(0xFF))
            b.sink(out)

        func, eliminator = _setup(build, config)
        for ext in list(_extends(func)):
            assert eliminator.try_eliminate(ext)


class TestStats:
    def test_elimination_counts_by_width(self):
        from repro.core import compile_ir
        from repro.frontend import compile_source

        program = compile_source("""
            void main() {
                byte[] bs = new byte[16];
                int t = 0;
                for (int i = 0; i < 16; i++) { bs[i] = (byte)(i * 9); }
                for (int i = 0; i < 16; i++) { t += bs[i]; }
                sink(t);
            }
        """)
        compiled = compile_ir(program, VARIANTS["new algorithm (all)"])
        stats = compiled.function_stats["main"]
        assert stats.candidates > 0
        assert stats.eliminated > 0
        assert stats.eliminated == sum(stats.eliminated_by_width.values())
