#!/usr/bin/env python3
"""Mini benchmark sweep: one workload, all twelve variants.

A scaled-down version of what `pytest benchmarks/` does for the full
suites — useful for a quick look at one benchmark's Table-1 column.

Run:  python examples/benchmark_sweep.py [workload]
      (default: huffman; try numeric_sort, compress, idea, ...)
"""

import sys

from repro.harness import (
    format_dynamic_count_table,
    format_performance_figure,
    run_workload,
)
from repro.workloads import JBYTEMARK, SPECJVM98, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "huffman"
    if name not in JBYTEMARK + SPECJVM98:
        print(f"unknown workload {name!r}; choose from:")
        print("  " + ", ".join(JBYTEMARK + SPECJVM98))
        raise SystemExit(1)

    workload = get_workload(name)
    print(f"{workload.display_name}: {workload.description}")
    print("running all 12 variants (each verified against the gold "
          "run)...\n")
    results = run_workload(workload)

    print(format_dynamic_count_table(
        [results], f"Dynamic 32-bit sign extensions: {workload.display_name}"
    ))
    print()
    print(format_performance_figure(
        [results],
        f"Modelled run-time improvement: {workload.display_name}",
    ))


if __name__ == "__main__":
    main()
