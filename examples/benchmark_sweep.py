#!/usr/bin/env python3
"""Mini benchmark sweep: one workload, all twelve variants.

A scaled-down version of what `pytest benchmarks/` does for the full
suites — useful for a quick look at one benchmark's Table-1 column.
Pass ``--cache`` to reuse compilations across invocations (the second
run of the same workload skips all twelve compiles).

Run:  python examples/benchmark_sweep.py [workload] [--cache]
      (default: huffman; try numeric_sort, compress, idea, ...)
"""

import pathlib
import sys

try:
    import repro  # the installed package
except ImportError:  # source checkout without installation: use src/
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    import repro

from repro.harness import (
    format_dynamic_count_table,
    format_performance_figure,
)
from repro.workloads import JBYTEMARK, SPECJVM98, get_workload


def main() -> None:
    argv = [a for a in sys.argv[1:] if a != "--cache"]
    use_cache = "--cache" in sys.argv[1:]
    name = argv[0] if argv else "huffman"
    if name not in JBYTEMARK + SPECJVM98:
        print(f"unknown workload {name!r}; choose from:")
        print("  " + ", ".join(JBYTEMARK + SPECJVM98))
        raise SystemExit(1)

    workload = get_workload(name)
    print(f"{workload.display_name}: {workload.description}")
    print("running all 12 variants (each verified against the gold "
          "run)...\n")
    suite = repro.bench(
        [workload], options=repro.CompileOptions(cache=use_cache)
    )
    results = suite.workload(name)

    print(format_dynamic_count_table(
        [results], f"Dynamic 32-bit sign extensions: {workload.display_name}"
    ))
    print()
    print(format_performance_figure(
        [results],
        f"Modelled run-time improvement: {workload.display_name}",
    ))
    if use_cache:
        print(f"\n[cache: {suite.cache_hits} hits, "
              f"{suite.cache_misses} misses]")


if __name__ == "__main__":
    main()
