#!/usr/bin/env python3
"""Profile-guided order determination (the paper's Section 2.2).

The paper's JIT runs methods in an interpreter first; the interpreter's
branch statistics sharpen the execution-frequency estimates that decide
*which* sign extension to eliminate when only one of several can go.

This example builds a kernel with a branch the static 50/50 estimate
gets wrong: a rarely-taken slow path containing an extension that
competes with one on the hot path.  With profiles, elimination targets
the hot path first.

Run:  python examples/profile_guided.py
"""

import dataclasses
import pathlib
import sys

try:
    import repro  # the installed package
except ImportError:  # source checkout without installation: use src/
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    import repro  # noqa: F401

from repro import api
from repro.core import VARIANTS
from repro.frontend import compile_source
from repro.interp import Interpreter, collect_branch_profiles

SOURCE = """
void main() {
    int[] a = new int[256];
    int hot = 0;
    int cold = 0;
    for (int i = 0; i < 2000; i++) {
        int k = i & 255;
        if (k == 255) {
            // Cold path: taken 1 time in 256.
            cold += a[k] / (k | 1);
        } else {
            // Hot path.
            hot += a[k];
            a[k] = hot;
        }
    }
    double d = (double) hot;
    sinkd(d);
    sink(cold);
}
"""


def run_variant(program, config, profiles=None) -> int:
    compiled = api.compile(program, config=config, profiles=profiles)
    run = Interpreter(compiled.program).run()
    return run.extends32


def main() -> None:
    program = compile_source(SOURCE, "profile_guided")
    gold = Interpreter(program, mode="ideal").run()
    print(f"gold checksum: {gold.checksum:#x}\n")

    # Step 1: the profiling interpreter run (the paper's mixed-mode
    # execution before JIT compilation).
    profiles = collect_branch_profiles(program)
    edges = profiles["main"].edge_counts
    print(f"profiled {len(edges)} control-flow edges; "
          f"total transfers {sum(edges.values())}")

    full = VARIANTS["new algorithm (all)"]
    static_only = dataclasses.replace(full, use_profile=False)

    baseline = run_variant(program, VARIANTS["baseline"])
    static = run_variant(program, static_only)
    guided = run_variant(program, full, profiles)

    print(f"\ndynamic 32-bit extensions:")
    print(f"  baseline                    : {baseline:8d}")
    print(f"  full algorithm, static freq : {static:8d}")
    print(f"  full algorithm, profiled    : {guided:8d}")
    print(f"\nprofile-guided order determination removed "
          f"{100 * (1 - guided / max(baseline, 1)):.1f}% of the "
          "baseline's extensions")


if __name__ == "__main__":
    main()
