#!/usr/bin/env python3
"""Quickstart: compile a J32 kernel and watch sign extensions disappear.

This walks the full Figure-5 pipeline on the paper's running example
(Figure 7): a count-down array-summing loop whose int arithmetic needs
sign extensions on IA64.  It prints the IR before and after, the
dynamic extension counts per variant, and verifies that optimized code
behaves identically.

Run:  python examples/quickstart.py
"""

import pathlib
import sys

try:
    import repro  # the installed package
except ImportError:  # source checkout without installation: use src/
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    import repro  # noqa: F401

from repro import api
from repro.core import VARIANTS
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.ir import format_function

SOURCE = """
int mem = 200;

double main() {
    int n = 201;
    int[] a = new int[n];
    for (int k = 0; k < n; k++) { a[k] = k * 3; }

    // The paper's Figure 7 kernel:
    int i = mem;
    int t = 0;
    do {
        i = i - 1;
        int j = a[i];
        j = j & 0x0fffffff;
        t += j;
    } while (i > 0);
    double d = (double) t;
    sinkd(d);
    return d;
}
"""


def main() -> None:
    program = compile_source(SOURCE, "quickstart")

    print("=" * 72)
    print("Unoptimized (ideal) execution — the gold standard")
    print("=" * 72)
    gold = Interpreter(program, mode="ideal").run()
    print(f"result = {gold.ret_value}, checksum = {gold.checksum:#x}\n")

    print("=" * 72)
    print("Baseline 64-bit conversion (extensions after every definition)")
    print("=" * 72)
    baseline = api.compile(program, config=VARIANTS["baseline"])
    print(format_function(baseline.program.main))
    base_run = Interpreter(baseline.program).run()
    print(f"\ndynamic 32-bit extensions: {base_run.extends32}\n")

    print("=" * 72)
    print("The paper's full algorithm (insert + order + array theorems)")
    print("=" * 72)
    best = api.compile(program, config=VARIANTS["new algorithm (all)"])
    print(format_function(best.program.main))
    best_run = Interpreter(best.program).run()
    print(f"\ndynamic 32-bit extensions: {best_run.extends32}")

    assert best_run.observable() == gold.observable(), "behaviour changed!"
    percent = 100.0 * best_run.extends32 / max(base_run.extends32, 1)
    print(f"\nresidual: {percent:.2f}% of baseline "
          f"({base_run.extends32} -> {best_run.extends32}) — "
          "behaviour verified identical")

    print("\nAll twelve variants (the rows of the paper's Tables 1/2):")
    for name, config in VARIANTS.items():
        compiled = api.compile(program, config=config)
        run = Interpreter(compiled.program).run()
        assert run.observable() == gold.observable(), name
        bar = "#" * int(40 * run.extends32 / max(base_run.extends32, 1))
        print(f"  {name:28s} {run.extends32:8d} |{bar}")


if __name__ == "__main__":
    main()
