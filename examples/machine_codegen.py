#!/usr/bin/env python3
"""Machine-level view: IA64 vs PPC64 lowering (the paper's Figure 4).

Compiles `base[index] = 0` style array accesses for both targets and
prints the assembly-flavoured lowering:

* IA64, unoptimized:  sxt4 + shladd + st4 (explicit sign extension);
* IA64, optimized:    shladd + st4 (the extension is gone);
* PPC64:              rldic + add + stw, and lwa loads that sign-extend
                      implicitly, so fewer extensions exist at all.

Run:  python examples/machine_codegen.py
"""

import pathlib
import sys

try:
    import repro  # the installed package
except ImportError:  # source checkout without installation: use src/
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
    )
    import repro  # noqa: F401

from repro import api
from repro.core import VARIANTS
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.machine import IA64, PPC64
from repro.machine.costs import count_cycles
from repro.machine.lower import lower_function

SOURCE = """
void main() {
    int[] base = new int[64];
    for (int index = 0; index < 64; index++) {
        base[index] = 0;
    }
    int t = 0;
    for (int index = 63; index > 0; index--) {
        base[index] = index;
        t += base[index];
    }
    sink(t);
}
"""


def show(title: str, variant: str, traits) -> None:
    print("=" * 72)
    print(f"{title}")
    print("=" * 72)
    program = compile_source(SOURCE, "codegen")
    config = VARIANTS[variant].with_traits(traits)
    compiled = api.compile(program, config=config)
    code = lower_function(compiled.program.main, traits)
    print(code.text)
    interesting = {
        m: c for m, c in sorted(code.counts.items())
        if m.startswith(("sxt", "exts", "shladd", "rldic", "lwa", "ld4",
                         "lwz", "st4", "stw"))
    }
    print(f"\nstatic counts: {interesting}")
    run = Interpreter(compiled.program, traits=traits).run()
    cycles = count_cycles(compiled.program, run, traits)
    print(f"dynamic 32-bit extensions: {run.extends32}, "
          f"modelled cycles: {cycles.total:.0f} "
          f"(extension cycles: {cycles.extend_cycles:.0f})\n")


def main() -> None:
    show("IA64, baseline (Figure 4(b): sxt4 + shladd)", "baseline", IA64)
    show("IA64, full algorithm (shladd only)", "new algorithm (all)", IA64)
    show("PPC64, baseline (Figure 4(c): rldic; lwa sign-extends)",
         "baseline", PPC64)
    show("PPC64, full algorithm", "new algorithm (all)", PPC64)


if __name__ == "__main__":
    main()
