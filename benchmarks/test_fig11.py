"""Figure 11: Table 1's residual extensions as % of baseline, plotted
per variant (jBYTEmark)."""

from repro.harness import format_percent_figure
from repro.interp import Interpreter
from repro.workloads import get_workload

from conftest import write_artifact


def test_regenerate_figure11(jbytemark_results, benchmark):
    program = get_workload("bitfield").program()
    benchmark.pedantic(
        lambda: Interpreter(program, mode="ideal").run(),
        rounds=3,
        iterations=1,
    )

    text = format_percent_figure(
        jbytemark_results,
        "Figure 11: residual 32-bit sign extensions, % of baseline "
        "(jBYTEmark)",
    )
    write_artifact("fig11.txt", text)

    # Per-benchmark: the full algorithm never exceeds the first
    # algorithm's residual.
    for result in jbytemark_results:
        full = result.cells["new algorithm (all)"].dyn_extend32
        first = result.cells["first algorithm (bwd flow)"].dyn_extend32
        assert full <= first


def test_insert_needs_order(jbytemark_results):
    """Paper observation 2: 'Sign extension insertion is ineffective
    without order determination' — insert+order is at least as good as
    insert alone on average."""
    def avg(variant):
        return sum(
            r.cells[variant].percent_of(r.baseline)
            for r in jbytemark_results
        ) / len(jbytemark_results)

    assert avg("insert, order") <= avg("insert") + 1e-9
