"""Ablation benches for the design choices DESIGN.md calls out.

* gen-def vs gen-use placement (Figure 6);
* Theorem 4's dependence on the assumed maximum array length;
* IA64 vs PPC64: implicit sign extension shrinks the problem;
* profile-guided vs static order determination.
"""

import dataclasses

from repro.core import VARIANTS, compile_ir
from repro.interp import Interpreter
from repro.interp.profiler import collect_branch_profiles
from repro.machine import IA64, PPC64
from repro.workloads import get_workload

from conftest import write_artifact

_WORKLOADS = ("numeric_sort", "huffman", "compress")


def _dyn(program, config, profiles=None, traits=IA64):
    compiled = compile_ir(program, config.with_traits(traits), profiles)
    run = Interpreter(compiled.program, traits=traits,
                      fuel=50_000_000).run()
    return run.extends32


def test_gen_def_vs_gen_use(benchmark):
    lines = ["Ablation: extension placement (Figure 6)", ""]
    program = get_workload("numeric_sort").program()
    benchmark.pedantic(
        lambda: _dyn(program, VARIANTS["gen use"]), rounds=1, iterations=1
    )
    for name in _WORKLOADS:
        source = get_workload(name).program()
        gen_def = _dyn(source, VARIANTS["baseline"])
        gen_use = _dyn(source, VARIANTS["gen use"])
        optimized = _dyn(source, VARIANTS["new algorithm (all)"])
        lines.append(
            f"{name:14s} gen-def(base)={gen_def:8d} gen-use={gen_use:8d} "
            f"gen-def+all={optimized:8d}"
        )
        # Gen-def enables the optimizer: the optimized gen-def pipeline
        # beats the gen-use reference.
        assert optimized < gen_use
    write_artifact("ablation_placement.txt", "\n".join(lines))


def test_maxlen_sensitivity():
    """Theorem 4's bound (maxlen-1) - 0x7fffffff: shrinking maxlen can
    only enable more eliminations, never fewer."""
    lines = ["Ablation: Theorem 4 maximum array length", ""]
    program = get_workload("numeric_sort").program()
    full = VARIANTS["new algorithm (all)"]
    java = _dyn(program, full)
    limited = _dyn(
        program, dataclasses.replace(full, max_array_length=0x7FFF0001)
    )
    tiny = _dyn(
        program, dataclasses.replace(full, max_array_length=1 << 20)
    )
    lines.append(f"maxlen=0x7fffffff: {java}")
    lines.append(f"maxlen=0x7fff0001: {limited}")
    lines.append(f"maxlen=2^20:       {tiny}")
    assert limited <= java
    assert tiny <= limited
    write_artifact("ablation_maxlen.txt", "\n".join(lines))


def test_ia64_vs_ppc64():
    """PPC64's lwa gives implicit sign extension: the baseline executes
    fewer explicit extensions than IA64's."""
    lines = ["Ablation: target architecture", ""]
    for name in _WORKLOADS:
        program = get_workload(name).program()
        ia64 = _dyn(program, VARIANTS["baseline"], traits=IA64)
        ppc64 = _dyn(program, VARIANTS["baseline"], traits=PPC64)
        lines.append(f"{name:14s} ia64={ia64:8d} ppc64={ppc64:8d}")
        assert ppc64 <= ia64
    write_artifact("ablation_machine.txt", "\n".join(lines))


def test_profile_guided_order():
    """Order determination with real branch profiles is at least as
    good as the static estimate (the paper's Section 2.2 refinement)."""
    lines = ["Ablation: profile-guided order determination", ""]
    full = VARIANTS["new algorithm (all)"]
    static_cfg = dataclasses.replace(full, use_profile=False)
    for name in _WORKLOADS:
        program = get_workload(name).program()
        profiles = collect_branch_profiles(program)
        with_profile = _dyn(program, full, profiles)
        static = _dyn(program, static_cfg)
        lines.append(
            f"{name:14s} profile={with_profile:8d} static={static:8d}"
        )
        base = max(_dyn(program, VARIANTS["baseline"]), 1)
        assert (with_profile - static) / base < 0.05
    write_artifact("ablation_profile.txt", "\n".join(lines))
