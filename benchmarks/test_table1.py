"""Table 1: dynamic counts of remaining 32-bit sign extensions,
jBYTEmark.

Regenerates the table, checks its paper shape, and benchmarks the JIT
compilation of one representative benchmark under the full algorithm
(the compile-time side of the trade-off the paper reports in Table 3).
"""

from repro.core import VARIANTS, compile_ir
from repro.harness import format_dynamic_count_table
from repro.workloads import get_workload

from conftest import write_artifact


def _average_percent(results, variant):
    values = [
        r.cells[variant].percent_of(r.baseline) for r in results
    ]
    return sum(values) / len(values)


def test_regenerate_table1(jbytemark_results, benchmark):
    program = get_workload("numeric_sort").program()
    benchmark.pedantic(
        compile_ir,
        args=(program, VARIANTS["new algorithm (all)"]),
        rounds=3,
        iterations=1,
    )

    text = format_dynamic_count_table(
        jbytemark_results,
        "Table 1: dynamic counts of remaining 32-bit sign extensions "
        "(jBYTEmark)",
    )
    write_artifact("table1.txt", text)

    # Paper shape: monotone improvement of the headline variants.
    baseline = _average_percent(jbytemark_results, "baseline")
    first = _average_percent(jbytemark_results, "first algorithm (bwd flow)")
    array = _average_percent(jbytemark_results, "array")
    full = _average_percent(jbytemark_results, "new algorithm (all)")
    assert baseline == 100.0
    assert first < baseline          # paper: 48.29%
    assert array < first             # paper: 4.63%
    assert full <= array + 1e-9      # paper: 4.58%
    # The majority of extensions are eliminated (paper: >95% on average).
    assert full < 50.0


def test_paper_claims_jbytemark(jbytemark_results, benchmark):
    """Every encoded paper claim must reproduce on this suite."""
    from repro.harness import check_claims, format_claims

    benchmark.pedantic(lambda: check_claims(jbytemark_results),
                       rounds=5, iterations=2)
    text = format_claims(jbytemark_results,
                         "Paper claims vs measurements (jBYTEmark)")
    write_artifact("claims_jbytemark.txt", text)
    failures = [v for v in check_claims(jbytemark_results) if not v.holds]
    assert not failures, failures
