"""Ablation: the two PRE formulations for Figure 5's step 2.

The default pipeline performs common-subexpression elimination with
available-expression GCSE plus loop-invariant code motion; the textbook
alternative is busy code motion (earliest down-safe placement).  Both
stand in for the paper's "variant of the partial redundancy elimination
algorithm [13, 14]".  This bench compares their effect on the dynamic
extension counts that the sign-extension phase then has to deal with.
"""

from repro.core import VARIANTS, compile_ir
from repro.core.convert64 import convert_function
from repro.interp import Interpreter
from repro.ir.clone import clone_program
from repro.machine import IA64
from repro.opt import (
    busy_code_motion,
    eliminate_dead_code,
    fold_constants,
    inline_small_functions,
    propagate_copies,
    simplify,
)
from repro.workloads import get_workload

from conftest import write_artifact

_WORKLOADS = ("numeric_sort", "bitfield", "huffman")


def _bcm_pipeline(program):
    """Step 1 + a BCM-based step 2 (no phase 3), for comparison."""
    clone = clone_program(program)
    inline_small_functions(clone)
    for func in clone.functions.values():
        convert_function(func, IA64)
        for _ in range(2):
            changed = fold_constants(func)
            changed |= simplify(func)
            changed |= propagate_copies(func)
            changed |= busy_code_motion(func)
            changed |= eliminate_dead_code(func)
            if not changed:
                break
    return clone


def test_pre_formulations(benchmark):
    program = get_workload("numeric_sort").program()
    benchmark.pedantic(lambda: _bcm_pipeline(program), rounds=1,
                       iterations=1)

    lines = ["Ablation: step-2 PRE formulation "
             "(dynamic extends after step 2 only, no phase 3)", ""]
    header = (f"{'workload':14s}{'gcse+licm':>12s}{'bcm':>12s}"
              f"{'no step 2':>12s}")
    lines.append(header)
    lines.append("-" * len(header))
    import dataclasses

    for name in _WORKLOADS:
        source = get_workload(name).program()
        gold = Interpreter(source, mode="ideal", fuel=50_000_000).run()

        default = compile_ir(
            source, VARIANTS["baseline"]
        )
        default_run = Interpreter(default.program, fuel=50_000_000).run()
        assert default_run.observable() == gold.observable()

        bcm_program = _bcm_pipeline(source)
        bcm_run = Interpreter(bcm_program, fuel=50_000_000).run()
        assert bcm_run.observable() == gold.observable()

        bare = compile_ir(
            source,
            dataclasses.replace(VARIANTS["baseline"], general_opts=False),
        )
        bare_run = Interpreter(bare.program, fuel=50_000_000).run()
        assert bare_run.observable() == gold.observable()

        lines.append(
            f"{name:14s}{default_run.extends32:>12d}"
            f"{bcm_run.extends32:>12d}{bare_run.extends32:>12d}"
        )
        # Both PRE formulations must not be worse than no step 2 at all
        # (they can only remove or move extensions).
        assert default_run.extends32 <= bare_run.extends32 * 1.02 + 10
        assert bcm_run.extends32 <= bare_run.extends32 * 1.02 + 10

    write_artifact("ablation_pre.txt", "\n".join(lines))
