"""Table 2: dynamic counts of remaining 32-bit sign extensions,
SPECjvm98."""

from repro.core import VARIANTS, compile_ir
from repro.harness import format_dynamic_count_table
from repro.workloads import get_workload

from conftest import write_artifact


def _average_percent(results, variant):
    values = [r.cells[variant].percent_of(r.baseline) for r in results]
    return sum(values) / len(values)


def test_regenerate_table2(specjvm98_results, benchmark):
    program = get_workload("compress").program()
    benchmark.pedantic(
        compile_ir,
        args=(program, VARIANTS["new algorithm (all)"]),
        rounds=3,
        iterations=1,
    )

    text = format_dynamic_count_table(
        specjvm98_results,
        "Table 2: dynamic counts of remaining 32-bit sign extensions "
        "(SPECjvm98)",
    )
    write_artifact("table2.txt", text)

    baseline = _average_percent(specjvm98_results, "baseline")
    first = _average_percent(specjvm98_results,
                             "first algorithm (bwd flow)")
    basic = _average_percent(specjvm98_results, "basic ud/du")
    array = _average_percent(specjvm98_results, "array")
    full = _average_percent(specjvm98_results, "new algorithm (all)")
    assert baseline == 100.0
    assert first < baseline        # paper: 44.22%
    assert basic <= first + 1e-9   # paper: 39.28%
    assert array < basic           # paper: 15.02%
    assert full <= array + 1e-9    # paper: 9.54%
    assert full < 50.0


def test_array_elimination_most_effective(specjvm98_results):
    """'Sign extension elimination for array indices is most effective
    for all the benchmark programs.'"""
    for result in specjvm98_results:
        basic = result.cells["basic ud/du"].dyn_extend32
        array = result.cells["array"].dyn_extend32
        assert array <= basic


def test_paper_claims_specjvm98(specjvm98_results, benchmark):
    from repro.harness import check_claims, format_claims

    benchmark.pedantic(lambda: check_claims(specjvm98_results),
                       rounds=5, iterations=2)
    text = format_claims(specjvm98_results,
                         "Paper claims vs measurements (SPECjvm98)")
    write_artifact("claims_specjvm98.txt", text)
    failures = [v for v in check_claims(specjvm98_results) if not v.holds]
    assert not failures, failures
