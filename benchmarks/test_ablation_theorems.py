"""Theorem-level ablation: how much does each of Section 3's theorems
contribute to array-subscript elimination?

Runs the full algorithm with subsets of {Theorem 1..4} enabled and
reports residual dynamic extensions on array-heavy workloads.
"""

import dataclasses

from repro.core import VARIANTS, compile_ir
from repro.interp import Interpreter
from repro.workloads import get_workload

from conftest import write_artifact

_WORKLOADS = ("numeric_sort", "huffman", "bitfield")

_SETS = [
    ("none", frozenset()),
    ("T1 only", frozenset({1})),
    ("T1+T2", frozenset({1, 2})),
    ("T1+T2+T3", frozenset({1, 2, 3})),
    ("all (T1-T4)", frozenset({1, 2, 3, 4})),
]


def _dyn(program, theorems):
    config = dataclasses.replace(
        VARIANTS["new algorithm (all)"], theorems=theorems
    )
    compiled = compile_ir(program, config)
    run = Interpreter(compiled.program, fuel=50_000_000).run()
    return run.extends32


def test_theorem_ablation(benchmark):
    program = get_workload("numeric_sort").program()
    benchmark.pedantic(
        lambda: _dyn(program, frozenset({1, 2, 3, 4})),
        rounds=1,
        iterations=1,
    )

    lines = ["Ablation: Section 3 theorems (residual dynamic extends)", ""]
    header = f"{'theorems':14s}" + "".join(
        f"{name:>14s}" for name in _WORKLOADS
    )
    lines.append(header)
    lines.append("-" * len(header))
    previous = None
    for label, theorems in _SETS:
        row = [f"{label:14s}"]
        totals = []
        for name in _WORKLOADS:
            source = get_workload(name).program()
            count = _dyn(source, theorems)
            totals.append(count)
            row.append(f"{count:>14d}")
        lines.append("".join(row))
        if previous is not None:
            # Monotone: enabling more theorems never hurts.
            assert all(c <= p for c, p in zip(totals, previous)), (
                label, totals, previous
            )
        previous = totals
    write_artifact("ablation_theorems.txt", "\n".join(lines))
