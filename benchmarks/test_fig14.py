"""Figure 14: run-time improvement over baseline, SPECjvm98.

The paper singles out compress (and Huffman in Figure 13) as the big
winners; both are extension-dense integer kernels, so the shape check
here is that compress's improvement is above the suite median.
"""

import statistics

from repro.harness import format_performance_figure

from conftest import write_artifact


def test_regenerate_figure14(specjvm98_results, benchmark):
    sample = specjvm98_results[0]
    benchmark.pedantic(
        lambda: [
            c.cycles.improvement_over(sample.baseline.cycles)
            for c in sample.cells.values()
        ],
        rounds=20,
        iterations=5,
    )

    text = format_performance_figure(
        specjvm98_results,
        "Figure 14: modelled run-time improvement over baseline "
        "(SPECjvm98, %)",
    )
    write_artifact("fig14.txt", text)

    improvements = {}
    for result in specjvm98_results:
        base = result.baseline.cycles
        full = result.cells["new algorithm (all)"].cycles
        improvement = full.improvement_over(base)
        improvements[result.workload.name] = improvement
        assert improvement >= 0.0

    median = statistics.median(improvements.values())
    assert improvements["compress"] >= median
