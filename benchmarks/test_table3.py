"""Table 3: breakdown of JIT compilation time.

The paper reports sign-extension optimizations at 0.11% of compile time
and UD/DU chain creation at 2.92% on average.  Our passes run in Python
(and the general optimizer is comparatively lean), so the absolute
proportions differ; what must reproduce is the *structure*: the
sign-extension phase is a small fraction, and chain creation is
accounted separately because other optimizations also want the chains.
"""

import statistics

from repro.core import VARIANTS, compile_ir
from repro.harness import format_timing_table
from repro.opt.pass_manager import BUCKET_CHAINS, BUCKET_OTHERS, BUCKET_SIGN_EXT
from repro.workloads import get_workload

from conftest import write_artifact


def test_regenerate_table3(jbytemark_results, specjvm98_results, benchmark):
    program = get_workload("db").program()
    benchmark.pedantic(
        compile_ir,
        args=(program, VARIANTS["new algorithm (all)"]),
        rounds=3,
        iterations=1,
    )

    results = specjvm98_results + jbytemark_results
    text = format_timing_table(results)
    write_artifact("table3.txt", text)

    sign_ext = []
    chains = []
    others = []
    for result in results:
        timing = result.cells["new algorithm (all)"].timing
        sign_ext.append(timing.fraction(BUCKET_SIGN_EXT))
        chains.append(timing.fraction(BUCKET_CHAINS))
        others.append(timing.fraction(BUCKET_OTHERS))

    # Structure checks: all three buckets are populated, they sum to 1,
    # and "others" dominates as in the paper (96.97% average there).
    for a, b, c in zip(sign_ext, chains, others):
        assert a > 0 and b > 0 and c > 0
        assert abs(a + b + c - 1.0) < 1e-9
    assert statistics.mean(others) > 0.5
    assert statistics.mean(others) > statistics.mean(sign_ext)
    assert statistics.mean(others) > statistics.mean(chains)
