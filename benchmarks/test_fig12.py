"""Figure 12: Table 2's residual extensions as % of baseline
(SPECjvm98)."""

from repro.harness import format_percent_figure
from repro.interp import Interpreter
from repro.workloads import get_workload

from conftest import write_artifact


def test_regenerate_figure12(specjvm98_results, benchmark):
    program = get_workload("jess").program()
    benchmark.pedantic(
        lambda: Interpreter(program, mode="ideal").run(),
        rounds=3,
        iterations=1,
    )

    text = format_percent_figure(
        specjvm98_results,
        "Figure 12: residual 32-bit sign extensions, % of baseline "
        "(SPECjvm98)",
    )
    write_artifact("fig12.txt", text)

    for result in specjvm98_results:
        full = result.cells["new algorithm (all)"].dyn_extend32
        base = result.baseline.dyn_extend32
        if base:
            # Paper: between 71.52% and 99.999% eliminated overall; we
            # require at least half per benchmark.
            assert full / base < 0.5


def test_pde_vs_simple_insertion(specjvm98_results):
    """Paper: 'the simple insertion algorithm is slightly better for
    all the benchmarks' — allow a small tolerance per benchmark."""
    for result in specjvm98_results:
        simple = result.cells["new algorithm (all)"].dyn_extend32
        pde = result.cells["all, using PDE"].dyn_extend32
        base = max(result.baseline.dyn_extend32, 1)
        assert (simple - pde) / base < 0.10
