"""Shared fixtures for the benchmark suite.

The full experiment — 17 workloads x 12 variants, every run verified
against the unoptimized gold execution — is performed once per session
and shared by all table/figure benchmarks.  Regenerated artifacts are
written to ``results/`` next to this directory.

Compilation goes through the batch driver; two environment variables
speed up repeated regenerations:

* ``REPRO_BENCH_JOBS=N``    — compile over N worker processes;
* ``REPRO_BENCH_CACHE=DIR`` — reuse compilations from a content-
  addressed cache at DIR (cells whose IR/config/profiles are unchanged
  skip compilation entirely on the second run).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.driver import BatchCompiler, CompileCache
from repro.harness import run_suite
from repro.workloads import jbytemark_workloads, specjvm98_workloads

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def bench_driver():
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = CompileCache(cache_dir) if cache_dir else None
    with BatchCompiler(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache=cache,
    ) as driver:
        yield driver


@pytest.fixture(scope="session")
def jbytemark_results(bench_driver):
    return run_suite(jbytemark_workloads(), driver=bench_driver)


@pytest.fixture(scope="session")
def specjvm98_results(bench_driver):
    return run_suite(specjvm98_workloads(), driver=bench_driver)


def write_artifact(name: str, text: str) -> None:
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
