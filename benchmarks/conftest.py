"""Shared fixtures for the benchmark suite.

The full experiment — 17 workloads x 12 variants, every run verified
against the unoptimized gold execution — is performed once per session
and shared by all table/figure benchmarks.  Regenerated artifacts are
written to ``results/`` next to this directory.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import run_suite
from repro.workloads import jbytemark_workloads, specjvm98_workloads

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def jbytemark_results():
    return run_suite(jbytemark_workloads())


@pytest.fixture(scope="session")
def specjvm98_results():
    return run_suite(specjvm98_workloads())


def write_artifact(name: str, text: str) -> None:
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
