"""Shared fixtures for the benchmark suite.

The full experiment — 17 workloads x 12 variants, every run verified
against the unoptimized gold execution — is performed once per session
and shared by all table/figure benchmarks.  Regenerated artifacts are
written to ``results/`` next to this directory.

Every measured cell is also appended to the perf history (see
docs/PERF.md): records carry source ``benchmarks`` and the standard
``(workload, machine, variant, engine)`` key, so ``repro perf report``
can plot the fig11-14/table1-3 trajectories across PRs from the same
timeseries the CI gate uses.  The history lands in
``$REPRO_PERF_DIR`` when set, else ``results/perf-history/``.

Compilation goes through the batch driver; two environment variables
speed up repeated regenerations:

* ``REPRO_BENCH_JOBS=N``    — compile over N worker processes;
* ``REPRO_BENCH_CACHE=DIR`` — reuse compilations from a content-
  addressed cache at DIR (cells whose IR/config/profiles are unchanged
  skip compilation entirely on the second run).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.driver import BatchCompiler, CompileCache
from repro.harness import run_suite
from repro.perf import HistoryStore, PerfRecorder
from repro.workloads import jbytemark_workloads, specjvm98_workloads

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def bench_driver():
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = CompileCache(cache_dir) if cache_dir else None
    with BatchCompiler(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache=cache,
    ) as driver:
        yield driver


@pytest.fixture(scope="session")
def perf_recorder():
    """One recorder (one run_id) for the whole benchmark session."""
    directory = os.environ.get("REPRO_PERF_DIR")
    store = HistoryStore(directory if directory
                         else RESULTS_DIR / "perf-history")
    return PerfRecorder(store, source="benchmarks")


@pytest.fixture(scope="session")
def jbytemark_results(bench_driver, perf_recorder):
    return run_suite(jbytemark_workloads(), driver=bench_driver,
                     recorder=perf_recorder)


@pytest.fixture(scope="session")
def specjvm98_results(bench_driver, perf_recorder):
    return run_suite(specjvm98_workloads(), driver=bench_driver,
                     recorder=perf_recorder)


def write_artifact(name: str, text: str) -> None:
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
