"""Figure 13: run-time improvement over baseline, jBYTEmark.

Run time is modelled cycles (see repro.machine.costs); the claim being
reproduced is the figure's shape: every variant improves on the
baseline, and the full algorithm gives the largest improvements.
"""

from repro.harness import format_performance_figure
from repro.machine.costs import count_cycles

from conftest import write_artifact


def test_regenerate_figure13(jbytemark_results, benchmark):
    # Benchmark the cost-model evaluation itself (it walks every
    # instruction of every compiled variant).
    sample = jbytemark_results[0]
    cell = sample.cells["new algorithm (all)"]
    benchmark.pedantic(
        lambda: cell.cycles.improvement_over(sample.baseline.cycles),
        rounds=50,
        iterations=10,
    )
    assert count_cycles is not None  # the model these numbers come from

    text = format_performance_figure(
        jbytemark_results,
        "Figure 13: modelled run-time improvement over baseline "
        "(jBYTEmark, %)",
    )
    write_artifact("fig13.txt", text)

    for result in jbytemark_results:
        base = result.baseline.cycles
        full = result.cells["new algorithm (all)"].cycles
        assert full.improvement_over(base) >= 0.0

    # The full algorithm is the best or tied-best performer on average.
    def avg(variant):
        return sum(
            r.cells[variant].cycles.improvement_over(r.baseline.cycles)
            for r in jbytemark_results
        ) / len(jbytemark_results)

    assert avg("new algorithm (all)") >= avg("first algorithm (bwd flow)")
    assert avg("new algorithm (all)") >= avg("gen use")
