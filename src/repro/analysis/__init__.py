"""Program analyses: CFG orders, dominators, loops, dataflow, UD/DU
chains, value ranges, and execution-frequency estimation."""

from .cfg import (
    depth_first_order,
    postorder,
    reverse_depth_first_order,
    reverse_postorder,
)
from .dataflow import DataflowProblem, Direction, Meet, bit_indices
from .dominators import DominatorTree
from .frequency import BranchProfile, estimate_frequencies
from .liveness import Liveness
from .loops import Loop, LoopForest
from .reaching import Definition, ReachingDefinitions
from .ud_du import Chains, Use
from .value_range import Interval, TOP, ValueRanges

__all__ = [
    "BranchProfile",
    "Chains",
    "DataflowProblem",
    "Definition",
    "Direction",
    "DominatorTree",
    "Interval",
    "Liveness",
    "Loop",
    "LoopForest",
    "Meet",
    "ReachingDefinitions",
    "TOP",
    "Use",
    "ValueRanges",
    "bit_indices",
    "depth_first_order",
    "estimate_frequencies",
    "postorder",
    "reverse_depth_first_order",
    "reverse_postorder",
]
