"""Value-range analysis of 32-bit integer registers.

Section 3 of the paper: "These theorems depend on knowledge of the value
range, which can be determined at compile time using one of the value
range analysis techniques [4, 7]."

This implementation computes, per definition, a conservative interval of
the *semantic signed 32-bit value* the register carries, by structural
recursion over UD chains.  Cycles (loop-carried values) go to TOP, and
any arithmetic whose interval could leave the signed 32-bit range goes
to TOP (wraparound makes the interval meaningless).  The result is
always an over-approximation, which keeps the theorems sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.types import INT32_MAX, INT32_MIN, sign_extend
from ..machine.model import MachineTraits
from .ud_du import Chains, Definition


@dataclass(frozen=True)
class Interval:
    """A closed interval of signed 32-bit values."""

    lo: int
    hi: int

    @property
    def is_top(self) -> bool:
        return self.lo <= INT32_MIN and self.hi >= INT32_MAX

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(INT32_MIN, INT32_MAX)


def _clamped(lo: int, hi: int) -> Interval:
    """Interval if it fits in the signed 32-bit range, else TOP."""
    if lo < INT32_MIN or hi > INT32_MAX or lo > hi:
        return TOP
    return Interval(lo, hi)


class ValueRanges:
    """Memoized per-definition interval computation over UD chains."""

    def __init__(self, chains: Chains, traits: MachineTraits,
                 max_array_length: int = INT32_MAX) -> None:
        self.chains = chains
        self.traits = traits
        self.max_array_length = max_array_length
        self._memo: dict[int, Interval] = {}  # Definition.index -> Interval
        self._visiting: set[int] = set()

    # -- public API -----------------------------------------------------------

    def range_of_use(self, instr: Instr, operand_index: int) -> Interval:
        """Interval of an operand: union over its reaching definitions."""
        defs = self.chains.defs_for(instr, operand_index)
        if not defs:
            return TOP
        result: Interval | None = None
        for definition in defs:
            interval = self.range_of_def(definition)
            result = interval if result is None else result.union(interval)
            if result.is_top:
                return TOP
        return result if result is not None else TOP

    def const_of_use(self, instr: Instr, operand_index: int) -> int | None:
        """The exact constant value of an operand, when all reaching
        definitions are the same integer constant."""
        defs = self.chains.defs_for(instr, operand_index)
        value: int | None = None
        for definition in defs:
            src = definition.instr
            if src is None or src.opcode is not Opcode.CONST:
                return None
            if not isinstance(src.imm, int):
                return None
            if value is None:
                value = src.imm
            elif value != src.imm:
                return None
        return value

    def range_of_def(self, definition: Definition) -> Interval:
        if definition.is_param:
            return TOP
        cached = self._memo.get(definition.index)
        if cached is not None:
            return cached
        if definition.index in self._visiting:
            return TOP  # loop-carried: conservative
        self._visiting.add(definition.index)
        try:
            interval = self._evaluate(definition.instr)
        finally:
            self._visiting.discard(definition.index)
        self._memo[definition.index] = interval
        return interval

    # -- evaluation --------------------------------------------------------------

    def _evaluate(self, instr: Instr) -> Interval:
        opcode = instr.opcode
        if opcode is Opcode.CONST:
            if isinstance(instr.imm, int):
                value = sign_extend(instr.imm, 32)
                return Interval(value, value)
            return TOP
        if opcode is Opcode.MOV:
            return self.range_of_use(instr, 0)
        if opcode is Opcode.JUST_EXTENDED:
            # A bounds-checked array index: in [0, maxlen - 1].
            return Interval(0, max(0, self.max_array_length - 1))
        if opcode is Opcode.ARRAYLEN:
            return Interval(0, self.max_array_length)
        if opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
            return Interval(0, 1)
        if opcode in (Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32):
            bits = {Opcode.EXTEND8: 8, Opcode.EXTEND16: 16,
                    Opcode.EXTEND32: 32}[opcode]
            src = self.range_of_use(instr, 0)
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if src.within(lo, hi):
                return src
            return Interval(lo, hi)
        if opcode in (Opcode.ZEXT8, Opcode.ZEXT16):
            bits = 8 if opcode is Opcode.ZEXT8 else 16
            src = self.range_of_use(instr, 0)
            if src.within(0, (1 << bits) - 1):
                return src
            return Interval(0, (1 << bits) - 1)
        if opcode is Opcode.ADD32:
            induction = self._induction_range(instr)
            if induction is not None:
                return induction
            a = self.range_of_use(instr, 0)
            b = self.range_of_use(instr, 1)
            return _clamped(a.lo + b.lo, a.hi + b.hi)
        if opcode is Opcode.SUB32:
            induction = self._induction_range(instr)
            if induction is not None:
                return induction
            a = self.range_of_use(instr, 0)
            b = self.range_of_use(instr, 1)
            return _clamped(a.lo - b.hi, a.hi - b.lo)
        if opcode is Opcode.NEG32:
            a = self.range_of_use(instr, 0)
            return _clamped(-a.hi, -a.lo)
        if opcode is Opcode.MUL32:
            a = self.range_of_use(instr, 0)
            b = self.range_of_use(instr, 1)
            if a.is_top or b.is_top:
                return TOP
            corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
            return _clamped(min(corners), max(corners))
        if opcode is Opcode.AND32:
            for operand in (0, 1):
                value = self.const_of_use(instr, operand)
                if isinstance(value, int) and 0 <= value <= INT32_MAX:
                    return Interval(0, value)
            a = self.range_of_use(instr, 0)
            b = self.range_of_use(instr, 1)
            if a.lo >= 0 and b.lo >= 0:
                return Interval(0, min(a.hi, b.hi))
            return TOP
        if opcode is Opcode.USHR32:
            amount = self.const_of_use(instr, 1)
            if isinstance(amount, int):
                amount &= 31
                if amount > 0:
                    return Interval(0, (1 << (32 - amount)) - 1)
            return TOP
        if opcode is Opcode.SHR32:
            amount = self.const_of_use(instr, 1)
            src = self.range_of_use(instr, 0)
            if isinstance(amount, int):
                amount &= 31
                return Interval(src.lo >> amount, src.hi >> amount)
            return Interval(min(src.lo, -1) if src.lo < 0 else 0,
                            max(src.hi, 0) if src.hi > 0 else 0)
        if opcode is Opcode.REM32:
            divisor = self.const_of_use(instr, 1)
            if isinstance(divisor, int) and divisor != 0:
                bound = abs(sign_extend(divisor, 32)) - 1
                dividend = self.range_of_use(instr, 0)
                lo = 0 if dividend.lo >= 0 else -bound
                return Interval(lo, bound)
            return TOP
        if opcode is Opcode.DIV32:
            divisor = self.const_of_use(instr, 1)
            dividend = self.range_of_use(instr, 0)
            if (isinstance(divisor, int) and divisor > 0
                    and not dividend.is_top):
                lows = [dividend.lo // divisor, dividend.hi // divisor]
                # Java division truncates toward zero; bound loosely.
                return _clamped(min(lows) - 1, max(lows) + 1)
            return TOP
        if opcode is Opcode.D2I:
            return TOP
        return TOP

    # -- guarded induction variables ------------------------------------------

    def _induction_range(self, instr: Instr) -> Interval | None:
        """Range of a guarded induction-variable step ``k = k + c``.

        This is the loop-counter case the paper's cited range analyses
        [Blume-Eigenmann, Harrison] handle: a register whose only
        cyclic definition is a constant step, where every cyclic path
        back to the step crosses a comparison edge bounding the
        register in the step's direction.  Then

        * every value the register ever holds is bounded below by the
          non-step definitions (for a positive step; symmetrically for
          a negative one), and
        * every pre-step value either comes straight from a non-step
          definition or has passed the guard since it was last defined,

        so the post-step value lies in
        ``[init.lo + c, max(init.hi, guard_bound) + c]`` (positive
        step) or ``[min(init.lo, guard_bound) + c, init.hi + c]``
        (negative step).
        """
        dest = instr.dest
        if dest is None or not instr.srcs or instr.srcs[0].name != dest.name:
            return None
        step = self.const_of_use(instr, 1)
        if not isinstance(step, int):
            return None
        step = sign_extend(step, 32)
        if instr.opcode is Opcode.SUB32:
            step = -step
        if step == 0 or abs(step) > (1 << 20):
            return None

        init = self._non_step_range(dest.name, instr)
        if init is None or init.is_top:
            return None

        bound = self._guard_bound(dest.name, instr, upper=step > 0)
        if bound is None:
            return None
        if step > 0:
            return _clamped(init.lo + step, max(init.hi, bound) + step)
        return _clamped(min(init.lo, bound) + step, init.hi + step)

    def _non_step_range(self, reg_name: str, step_instr: Instr) -> Interval | None:
        """Union of the ranges of every other definition of the register.

        Any definition whose range depends on the step (a mutual cycle)
        evaluates to TOP here because the step is already on the
        visiting stack, which safely rejects irregular loops.
        """
        result: Interval | None = None
        found = False
        for definition in self.chains.definitions:
            if definition.reg.name != reg_name:
                continue
            if definition.instr is step_instr:
                continue
            if self._is_value_preserving_self_def(definition.instr, reg_name):
                # ``k = extend32 k`` / ``k = just_extended k``: the
                # 32-bit semantic value is unchanged, so the definition
                # contributes nothing beyond the defs it forwards.
                continue
            found = True
            interval = self.range_of_def(definition)
            if interval.is_top:
                return None
            result = interval if result is None else result.union(interval)
        if not found:
            return None
        return result

    @staticmethod
    def _is_value_preserving_self_def(instr: Instr | None,
                                      reg_name: str) -> bool:
        return (
            instr is not None
            and instr.opcode in (Opcode.EXTEND32, Opcode.JUST_EXTENDED,
                                 Opcode.MOV)
            and len(instr.srcs) == 1
            and instr.srcs[0].name == reg_name
        )

    def _guard_bound(self, reg_name: str, step_instr: Instr,
                     upper: bool) -> int | None:
        """A bound on the register enforced on every cyclic path back to
        the step instruction, discovered from compare-and-branch guards.
        """
        step_block = self.chains.block_of(step_instr)
        func = self.chains.func
        func.build_cfg()
        for block in func.blocks:
            for position, cmp_instr in enumerate(block.instrs):
                if cmp_instr.opcode is not Opcode.CMP32 \
                        or cmp_instr.cond is None \
                        or cmp_instr.cond.is_unsigned:
                    continue
                bound_value = self._cmp_bound(cmp_instr, reg_name, upper)
                if bound_value is None:
                    continue
                cond_holds_edge, cond_fails_edge = self._branch_edges(
                    block, position, cmp_instr
                )
                if cond_holds_edge is None:
                    continue
                edge = (cond_holds_edge if bound_value[1]
                        else cond_fails_edge)
                if edge is None:
                    continue
                if not self._cycles_pass_edge(step_block, edge):
                    continue
                return bound_value[0]
        return None

    def _cmp_bound(self, cmp_instr: Instr, reg_name: str,
                   upper: bool) -> tuple[int, bool] | None:
        """(bound, on_true_edge) if this compare bounds the register.

        ``on_true_edge`` says whether the bound holds when the compare
        is true (vs when it is false).
        """
        from ..ir.opcodes import Cond

        cond = cmp_instr.cond
        names = [s.name for s in cmp_instr.srcs]
        if reg_name not in names:
            return None
        index = names.index(reg_name)
        if index == 1:
            cond = cond.swap()  # normalize to (reg COND other)
        other = 1 - index
        other_range = self.range_of_use(cmp_instr, other)
        if other_range.is_top:
            return None
        if upper:
            if cond is Cond.LT:
                return (other_range.hi - 1, True)
            if cond is Cond.LE:
                return (other_range.hi, True)
            if cond is Cond.GT:
                return (other_range.hi, False)  # !(reg > b) => reg <= b
            if cond is Cond.GE:
                return (other_range.hi - 1, False)
            return None
        if cond is Cond.GT:
            return (other_range.lo + 1, True)
        if cond is Cond.GE:
            return (other_range.lo, True)
        if cond is Cond.LT:
            return (other_range.lo, False)  # !(reg < b) => reg >= b
        if cond is Cond.LE:
            return (other_range.lo + 1, False)
        return None

    def _branch_edges(self, block, position: int, cmp_instr: Instr):
        """(true_edge, false_edge) when the compare directly feeds this
        block's conditional branch; edges are (block_label, succ_label).
        """
        terminator = block.instrs[-1]
        if terminator.opcode is not Opcode.BR:
            return (None, None)
        if not terminator.srcs or terminator.srcs[0].name != \
                (cmp_instr.dest.name if cmp_instr.dest else None):
            return (None, None)
        # The compare must be the branch condition's last definition in
        # this block.
        for later in block.instrs[position + 1:]:
            if later.dest is not None \
                    and later.dest.name == cmp_instr.dest.name:
                return (None, None)
        return (
            (block.label, terminator.targets[0]),
            (block.label, terminator.targets[1]),
        )

    def _cycles_pass_edge(self, step_block, edge: tuple[str, str]) -> bool:
        """True when removing ``edge`` breaks every cycle through the
        step's block (i.e. the guard is crossed each iteration)."""
        func = self.chains.func
        seen: set[str] = set()
        stack = []
        for succ in step_block.succs:
            if (step_block.label, succ.label) != edge:
                stack.append(succ)
        while stack:
            block = stack.pop()
            if block.label in seen:
                continue
            if block is step_block:
                return False  # found an unguarded cycle
            seen.add(block.label)
            for succ in block.succs:
                if (block.label, succ.label) != edge:
                    stack.append(succ)
        return True
