"""A generic iterative bit-vector dataflow framework.

Facts are sets of small integers encoded as Python ints (bitsets), which
makes the transfer functions single AND/OR operations.  Used by reaching
definitions, liveness, the first algorithm's backward NEED analysis, and
the PRE phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.block import Block
from ..ir.function import Function
from .cfg import postorder, reverse_postorder


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class Meet(enum.Enum):
    UNION = "union"  # may analyses
    INTERSECT = "intersect"  # must analyses


@dataclass
class BlockFacts:
    """gen/kill summary of one block, plus the fixpoint solution."""

    gen: int = 0
    kill: int = 0
    in_: int = 0
    out: int = 0


class DataflowProblem:
    """One instance of a bit-vector dataflow problem.

    Subclass or construct directly by filling per-block gen/kill with
    :meth:`facts_for`; then call :meth:`solve`.
    """

    def __init__(
        self,
        func: Function,
        direction: Direction,
        meet: Meet,
        universe_size: int,
        *,
        boundary: int = 0,
        initial: int | None = None,
    ) -> None:
        func.build_cfg()
        self.func = func
        self.direction = direction
        self.meet = meet
        self.universe_size = universe_size
        self.full = (1 << universe_size) - 1 if universe_size else 0
        self.boundary = boundary
        # Optimistic initialization for INTERSECT, empty for UNION.
        if initial is None:
            initial = self.full if meet is Meet.INTERSECT else 0
        self.initial = initial
        self.facts: dict[str, BlockFacts] = {
            block.label: BlockFacts(in_=initial, out=initial)
            for block in func.blocks
        }

    def facts_for(self, block: Block) -> BlockFacts:
        return self.facts[block.label]

    def _transfer(self, facts: BlockFacts, inp: int) -> int:
        return (inp & ~facts.kill) | facts.gen

    def _meet(self, values: list[int]) -> int:
        if not values:
            return self.boundary
        result = values[0]
        for value in values[1:]:
            if self.meet is Meet.UNION:
                result |= value
            else:
                result &= value
        return result

    def solve(self) -> None:
        """Iterate to fixpoint (worklist over a good block order)."""
        forward = self.direction is Direction.FORWARD
        order = reverse_postorder(self.func) if forward else postorder(self.func)
        changed = True
        while changed:
            changed = False
            for block in order:
                facts = self.facts[block.label]
                if forward:
                    neighbors = block.preds
                    inputs = [self.facts[p.label].out for p in neighbors]
                    new_in = self._meet(inputs) if neighbors else self.boundary
                    new_out = self._transfer(facts, new_in)
                    if new_in != facts.in_ or new_out != facts.out:
                        facts.in_, facts.out = new_in, new_out
                        changed = True
                else:
                    neighbors = block.succs
                    inputs = [self.facts[s.label].in_ for s in neighbors]
                    new_out = self._meet(inputs) if neighbors else self.boundary
                    new_in = self._transfer(facts, new_out)
                    if new_in != facts.in_ or new_out != facts.out:
                        facts.in_, facts.out = new_in, new_out
                        changed = True


def bit_indices(bits: int) -> list[int]:
    """Indices of set bits, ascending.

    >>> bit_indices(0b1011)
    [0, 1, 3]
    """
    indices = []
    index = 0
    while bits:
        if bits & 1:
            indices.append(index)
        bits >>= 1
        index += 1
    return indices
