"""Natural loop detection and nesting depth.

Order determination (Section 2.2 of the paper) estimates block execution
frequency "from both the loop nesting level of B and the execution
frequency of B within its acyclic region"; this module supplies the loop
nesting level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.block import Block
from ..ir.function import Function
from .dominators import DominatorTree


@dataclass
class Loop:
    """One natural loop: a header plus the body reached by back edges."""

    header: Block
    body: set[str] = field(default_factory=set)  # labels, includes header
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: Block) -> bool:
        return block.label in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.label} |body|={len(self.body)}>"


class LoopForest:
    """All natural loops of a function, nested into a forest.

    Also writes ``block.loop_depth`` for downstream consumers.
    """

    def __init__(self, func: Function, domtree: DominatorTree | None = None) -> None:
        self.func = func
        self.domtree = domtree or DominatorTree(func)
        self.loops: list[Loop] = []
        self._loops_by_header: dict[str, Loop] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        func.build_cfg()
        # Find back edges: tail -> header where header dominates tail.
        back_edges: list[tuple[Block, Block]] = []
        for block in func.blocks:
            for succ in block.succs:
                if self.domtree.dominates(succ, block):
                    back_edges.append((block, succ))

        # One loop per header; merge bodies of back edges sharing a header.
        for tail, header in back_edges:
            loop = self._loops_by_header.get(header.label)
            if loop is None:
                loop = Loop(header, {header.label})
                self._loops_by_header[header.label] = loop
                self.loops.append(loop)
            self._collect_body(loop, tail)

        self._nest_loops()
        self._assign_depths()

    def _collect_body(self, loop: Loop, tail: Block) -> None:
        """Blocks that reach ``tail`` without passing through the header."""
        stack = [tail]
        while stack:
            block = stack.pop()
            if block.label in loop.body:
                continue
            loop.body.add(block.label)
            stack.extend(block.preds)

    def _nest_loops(self) -> None:
        # Smaller body strictly inside larger body => child.
        ordered = sorted(self.loops, key=lambda l: len(l.body))
        for index, inner in enumerate(ordered):
            for outer in ordered[index + 1:]:
                if inner.header.label in outer.body and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    def _assign_depths(self) -> None:
        depth: dict[str, int] = {b.label: 0 for b in self.func.blocks}
        for loop in self.loops:
            for label in loop.body:
                depth[label] = max(depth[label], loop.depth)
        for block in self.func.blocks:
            block.loop_depth = depth[block.label]

    def loop_of(self, block: Block) -> Loop | None:
        """The innermost loop containing ``block``, if any."""
        best: Loop | None = None
        for loop in self.loops:
            if loop.contains(block):
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def depth_of(self, block: Block) -> int:
        return block.loop_depth
