"""Reaching definitions.

Each definition site (an instruction with a destination, or a function
parameter, modelled as a pseudo-definition at entry) gets a global index;
the classic gen/kill bit-vector problem then yields, per block, the set
of definitions reaching its start.  UD/DU chains are derived in
:mod:`repro.analysis.ud_du`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.instruction import Instr, VReg
from .dataflow import DataflowProblem, Direction, Meet


@dataclass(frozen=True)
class Definition:
    """One definition of a virtual register.

    ``instr`` is ``None`` for parameter pseudo-definitions.
    """

    index: int
    reg: VReg
    instr: Instr | None
    block_label: str | None

    @property
    def is_param(self) -> bool:
        return self.instr is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.instr is None:
            return f"<param {self.reg}>"
        return f"<def#{self.index} {self.instr}>"


class ReachingDefinitions:
    """Solved reaching-definitions facts for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.definitions: list[Definition] = []
        self.def_of_instr: dict[int, Definition] = {}  # instr uid -> Definition
        self._defs_of_reg: dict[str, int] = {}  # reg name -> bitset of def idx
        self._collect()
        self._solve()

    # -- collection --------------------------------------------------------

    def _add_definition(self, reg: VReg, instr: Instr | None,
                        block_label: str | None) -> Definition:
        definition = Definition(len(self.definitions), reg, instr, block_label)
        self.definitions.append(definition)
        if instr is not None:
            self.def_of_instr[instr.uid] = definition
        self._defs_of_reg[reg.name] = (
            self._defs_of_reg.get(reg.name, 0) | (1 << definition.index)
        )
        return definition

    def _collect(self) -> None:
        for param in self.func.params:
            self._add_definition(param, None, None)
        for block in self.func.blocks:
            for instr in block.instrs:
                if instr.dest is not None:
                    self._add_definition(instr.dest, instr, block.label)

    # -- dataflow -------------------------------------------------------------

    def _solve(self) -> None:
        problem = DataflowProblem(
            self.func,
            Direction.FORWARD,
            Meet.UNION,
            len(self.definitions),
            boundary=self._param_bits(),
        )
        for block in self.func.blocks:
            facts = problem.facts_for(block)
            gen = 0
            kill = 0
            for instr in block.instrs:
                if instr.dest is None:
                    continue
                definition = self.def_of_instr[instr.uid]
                same_reg = self._defs_of_reg[instr.dest.name]
                gen = (gen & ~same_reg) | (1 << definition.index)
                kill |= same_reg & ~(1 << definition.index)
            facts.gen = gen
            facts.kill = kill & ~gen
        problem.solve()
        self._problem = problem

    def _param_bits(self) -> int:
        bits = 0
        for definition in self.definitions:
            if definition.is_param:
                bits |= 1 << definition.index
        return bits

    # -- queries ---------------------------------------------------------------

    def reaching_in(self, block_label: str) -> int:
        return self._problem.facts[block_label].in_

    def defs_of_reg_bits(self, reg: VReg) -> int:
        return self._defs_of_reg.get(reg.name, 0)
