"""Execution-frequency estimation for order determination (Section 2.2).

The paper estimates a block's frequency "from both the loop nesting
level of B and the execution frequency of B within its acyclic region
based on the probability of each conditional branch", refined by branch
profiles collected by the mixed-mode interpreter.

We reproduce that scheme: back edges are removed, frequencies propagate
through the acyclic remainder from the entry using per-edge
probabilities (0.5/0.5 by default, or profile-derived), and each block
is then scaled by ``loop_multiplier ** loop_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from .cfg import reverse_postorder
from .dominators import DominatorTree
from .loops import LoopForest

#: Assumed iteration count per loop level, the classic static heuristic.
DEFAULT_LOOP_MULTIPLIER = 10.0


@dataclass
class BranchProfile:
    """Edge execution counts gathered by the profiling interpreter.

    Maps ``(block_label, successor_label)`` to a taken count, per
    function.
    """

    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, block_label: str, succ_label: str, count: int = 1) -> None:
        key = (block_label, succ_label)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + count

    def probability(self, block_label: str, succ_labels: list[str],
                    index: int) -> float | None:
        """Profile-derived probability of taking edge ``index``; ``None``
        when the block was never observed."""
        counts = [self.edge_counts.get((block_label, s), 0) for s in succ_labels]
        total = sum(counts)
        if total == 0:
            return None
        return counts[index] / total

    def block_count(self, block_label: str) -> int:
        """Observed executions of a block (sum of incoming edge counts)."""
        return sum(
            count for (_, dst), count in self.edge_counts.items()
            if dst == block_label
        )


def estimate_frequencies(
    func: Function,
    profile: BranchProfile | None = None,
    loop_multiplier: float = DEFAULT_LOOP_MULTIPLIER,
) -> LoopForest:
    """Fill ``block.freq`` and ``block.loop_depth``; returns the forest."""
    func.build_cfg()
    domtree = DominatorTree(func)
    forest = LoopForest(func, domtree)

    if profile is not None and profile.edge_counts:
        # Profile-guided: every control transfer was recorded, so the
        # observed block execution counts are exact frequencies.
        for block in func.blocks:
            count = profile.block_count(block.label)
            if block is func.entry:
                count = max(count, 1)
            block.freq = max(float(count), 1e-9)
        return forest

    back_edges: set[tuple[str, str]] = set()
    for block in func.blocks:
        for succ in block.succs:
            if domtree.dominates(succ, block):
                back_edges.add((block.label, succ.label))

    order = reverse_postorder(func)
    acyclic: dict[str, float] = {label.label: 0.0 for label in func.blocks}
    acyclic[func.entry.label] = 1.0

    for block in order:
        freq = acyclic[block.label]
        if not block.succs:
            continue
        succ_labels = [s.label for s in block.succs]
        for index, succ in enumerate(block.succs):
            probability = None
            if profile is not None:
                probability = profile.probability(block.label, succ_labels, index)
            if probability is None:
                probability = 1.0 / len(block.succs)
            if (block.label, succ.label) in back_edges:
                continue
            acyclic[succ.label] += freq * probability

    for block in func.blocks:
        base = acyclic[block.label]
        if base == 0.0 and block.loop_depth == 0:
            base = 1e-9  # unreachable or loop-entry artifact: keep nonzero
        block.freq = max(base, 1e-9) * (loop_multiplier ** block.loop_depth)
    return forest
