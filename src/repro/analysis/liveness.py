"""Classic backward liveness of virtual registers."""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instruction import Instr
from .dataflow import DataflowProblem, Direction, Meet


class Liveness:
    """Live-register sets at block boundaries and instruction queries."""

    def __init__(self, func: Function) -> None:
        self.func = func
        names = {p.name for p in func.params}
        for _, instr in func.instructions():
            if instr.dest is not None:
                names.add(instr.dest.name)
            for src in instr.srcs:
                names.add(src.name)
        self.index_of: dict[str, int] = {
            name: i for i, name in enumerate(sorted(names))
        }
        self._solve()

    def _solve(self) -> None:
        problem = DataflowProblem(
            self.func, Direction.BACKWARD, Meet.UNION, len(self.index_of)
        )
        for block in self.func.blocks:
            facts = problem.facts_for(block)
            use = 0
            define = 0
            for instr in block.instrs:
                for src in instr.srcs:
                    bit = 1 << self.index_of[src.name]
                    if not define & bit:
                        use |= bit
                if instr.dest is not None:
                    define |= 1 << self.index_of[instr.dest.name]
            facts.gen = use
            facts.kill = define & ~use
        problem.solve()
        self._problem = problem

    def live_out(self, block_label: str) -> int:
        return self._problem.facts[block_label].out

    def live_in(self, block_label: str) -> int:
        return self._problem.facts[block_label].in_

    def is_live_out(self, block_label: str, reg_name: str) -> bool:
        bit = self.index_of.get(reg_name)
        if bit is None:
            return False
        return bool(self.live_out(block_label) & (1 << bit))

    def live_after(self, block_label: str, position: int) -> int:
        """Live set immediately after instruction ``position`` in block."""
        block = self.func.block(block_label)
        live = self.live_out(block_label)
        for instr in reversed(block.instrs[position + 1:]):
            live = self._step(instr, live)
        return live

    def _step(self, instr: Instr, live_after: int) -> int:
        if instr.dest is not None:
            live_after &= ~(1 << self.index_of[instr.dest.name])
        for src in instr.srcs:
            live_after |= 1 << self.index_of[src.name]
        return live_after
