"""UD/DU chains [Aho-Sethi-Ullman], the paper's workhorse structure.

``EliminateOneExtend`` walks DU chains ("all instructions that use the
destination operand of EXT") and UD chains ("all instructions that
define the source operand of EXT"); ``AnalyzeARRAY`` recurses over both.

The chains are built once from reaching definitions.  When the
eliminator removes a same-register extension ``r = extend(r)`` it calls
:meth:`Chains.bypass_and_remove`, which splices the extension out of the
chains *conservatively* (former users of the extension now see every
definition that reached the extension).  The splice may overapproximate
reaching definitions along paths that never passed through the removed
instruction; overapproximation only makes the analyses more
conservative, never unsound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.block import Block
from ..ir.function import Function
from ..ir.instruction import Instr, VReg
from .dataflow import bit_indices
from .reaching import Definition, ReachingDefinitions


@dataclass(frozen=True)
class Use:
    """One use site: operand ``index`` of ``instr``."""

    instr: Instr
    index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<use {self.instr}@{self.index}>"


class Chains:
    """UD and DU chains for one function."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.reaching = ReachingDefinitions(func)
        self.definitions = self.reaching.definitions
        #: use (instr uid, operand index) -> definitions reaching it
        self._ud: dict[tuple[int, int], list[Definition]] = {}
        #: definition index -> uses it reaches
        self._du: dict[int, list[Use]] = {
            d.index: [] for d in self.definitions
        }
        self._block_of_instr: dict[int, Block] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        reaching = self.reaching
        for block in self.func.blocks:
            live = reaching.reaching_in(block.label)
            for instr in block.instrs:
                self._block_of_instr[instr.uid] = block
                for operand_index, src in enumerate(instr.srcs):
                    mask = reaching.defs_of_reg_bits(src)
                    def_indices = bit_indices(live & mask)
                    defs = [self.definitions[i] for i in def_indices]
                    self._ud[(instr.uid, operand_index)] = defs
                    use = Use(instr, operand_index)
                    for definition in defs:
                        self._du[definition.index].append(use)
                if instr.dest is not None:
                    definition = reaching.def_of_instr[instr.uid]
                    same_reg = reaching.defs_of_reg_bits(instr.dest)
                    live = (live & ~same_reg) | (1 << definition.index)

    # -- queries ---------------------------------------------------------------

    def defs_for(self, instr: Instr, operand_index: int) -> list[Definition]:
        """UD chain: definitions reaching operand ``operand_index``."""
        return self._ud.get((instr.uid, operand_index), [])

    def uses_of(self, instr: Instr) -> list[Use]:
        """DU chain: uses reached by the definition made by ``instr``."""
        definition = self.reaching.def_of_instr.get(instr.uid)
        if definition is None:
            return []
        return self._du[definition.index]

    def uses_of_param(self, reg: VReg) -> list[Use]:
        for definition in self.definitions:
            if definition.is_param and definition.reg.name == reg.name:
                return self._du[definition.index]
        return []

    def definition_of(self, instr: Instr) -> Definition | None:
        return self.reaching.def_of_instr.get(instr.uid)

    def block_of(self, instr: Instr) -> Block:
        return self._block_of_instr[instr.uid]

    # -- incremental update ------------------------------------------------------

    def bypass_and_remove(self, instr: Instr) -> None:
        """Remove a same-register pass-through ``r = op(r)`` instruction
        (an ``extend`` or dummy marker) and splice the chains around it.

        Every use that saw this instruction's definition now also sees
        the definitions that reached the instruction's source operand,
        and vice versa.
        """
        if not (instr.dest is not None and len(instr.srcs) == 1
                and instr.dest.name == instr.srcs[0].name):
            raise ValueError(f"not a same-register pass-through: {instr}")

        definition = self.reaching.def_of_instr[instr.uid]
        upstream = list(self._ud.get((instr.uid, 0), []))
        # The definition may reach the instruction's own operand around
        # a loop back edge; that self-use vanishes with the instruction
        # and must not be re-attached to the upstream definitions.
        downstream = [
            use for use in self._du[definition.index]
            if use.instr is not instr
        ]

        for use in downstream:
            chain = self._ud[(use.instr.uid, use.index)]
            chain[:] = [d for d in chain if d is not definition]
            for up_def in upstream:
                if up_def not in chain:
                    chain.append(up_def)

        for up_def in upstream:
            du_chain = self._du[up_def.index]
            du_chain[:] = [u for u in du_chain if u.instr.uid != instr.uid]
            for use in downstream:
                if use not in du_chain:
                    du_chain.append(use)

        self._du[definition.index] = []
        self._ud.pop((instr.uid, 0), None)

        block = self._block_of_instr.pop(instr.uid)
        block.remove(instr)

    def remove_leaf(self, instr: Instr) -> None:
        """Remove an instruction whose definition has no remaining uses
        (used to drop dummy markers after elimination)."""
        definition = self.reaching.def_of_instr.get(instr.uid)
        if definition is not None:
            for operand_index in range(len(instr.srcs)):
                for up_def in self._ud.get((instr.uid, operand_index), []):
                    du_chain = self._du[up_def.index]
                    du_chain[:] = [
                        u for u in du_chain if u.instr.uid != instr.uid
                    ]
                self._ud.pop((instr.uid, operand_index), None)
            self._du[definition.index] = []
        block = self._block_of_instr.pop(instr.uid)
        block.remove(instr)
