"""CFG traversal orders."""

from __future__ import annotations

from ..ir.block import Block
from ..ir.function import Function


def depth_first_order(func: Function) -> list[Block]:
    """Blocks in depth-first (preorder) from the entry.

    Unreachable blocks are appended at the end in layout order so every
    block appears exactly once.
    """
    func.build_cfg()
    seen: set[str] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        if block.label in seen:
            return
        seen.add(block.label)
        order.append(block)
        for succ in block.succs:
            visit(succ)

    visit(func.entry)
    for block in func.blocks:
        if block.label not in seen:
            seen.add(block.label)
            order.append(block)
    return order


def postorder(func: Function) -> list[Block]:
    """Blocks in DFS postorder from the entry (unreachables appended)."""
    func.build_cfg()
    seen: set[str] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        if block.label in seen:
            return
        seen.add(block.label)
        for succ in block.succs:
            visit(succ)
        order.append(block)

    visit(func.entry)
    for block in func.blocks:
        if block.label not in seen:
            seen.add(block.label)
            order.append(block)
    return order


def reverse_postorder(func: Function) -> list[Block]:
    """Reverse postorder: the canonical order for forward dataflow."""
    return list(reversed(postorder(func)))


def reverse_depth_first_order(func: Function) -> list[Block]:
    """The paper's fallback elimination order when order determination is
    disabled: "the reverse depth first search order, the same order in
    which backward dataflow analysis is performed" — i.e. postorder.
    """
    return postorder(func)
