"""Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm."""

from __future__ import annotations

from ..ir.block import Block
from ..ir.function import Function
from .cfg import postorder


class DominatorTree:
    """Immediate dominators for every reachable block."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.idom: dict[str, Block] = {}
        self._rpo_number: dict[str, int] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        func.build_cfg()
        order = [b for b in reversed(postorder(func))]
        # Restrict to blocks reachable from the entry.
        reachable = _reachable_labels(func)
        order = [b for b in order if b.label in reachable]
        for number, block in enumerate(order):
            self._rpo_number[block.label] = number

        entry = func.entry
        idom: dict[str, Block] = {entry.label: entry}
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry:
                    continue
                processed = [
                    p for p in block.preds
                    if p.label in idom and p.label in reachable
                ]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = self._intersect(idom, pred, new_idom)
                if idom.get(block.label) is not new_idom:
                    idom[block.label] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom: dict[str, Block], a: Block, b: Block) -> Block:
        number = self._rpo_number
        while a is not b:
            while number[a.label] > number[b.label]:
                a = idom[a.label]
            while number[b.label] > number[a.label]:
                b = idom[b.label]
        return a

    def dominates(self, a: Block, b: Block) -> bool:
        """Does ``a`` dominate ``b``? (Reflexive.)"""
        if a.label not in self.idom or b.label not in self.idom:
            return False
        runner: Block = b
        while True:
            if runner is a:
                return True
            parent = self.idom[runner.label]
            if parent is runner:  # reached the entry
                return runner is a
            runner = parent

    def immediate_dominator(self, block: Block) -> Block | None:
        parent = self.idom.get(block.label)
        if parent is None or parent is block:
            return None
        return parent


def _reachable_labels(func: Function) -> set[str]:
    seen: set[str] = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block.label in seen:
            continue
        seen.add(block.label)
        stack.extend(block.succs)
    return seen
