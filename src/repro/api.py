"""The stable public facade of the reproduction.

Three verbs cover everything external callers do::

    import repro

    result = repro.compile("kernel.j32")          # -> CompileResult
    outcome = repro.run("kernel.j32")             # -> RunResult
    suite = repro.bench(["huffman", "compress"])  # -> SuiteResult

Each takes an optional :class:`~repro.core.config.CompileOptions`
(variant, machine, fuel, telemetry, ``jobs``/``cache`` driver knobs) so
call sites no longer thread loose keyword arguments around.  ``source``
may be a :class:`~repro.ir.function.Program`, a path to a ``.j32``
file, or J32 source text — whatever is most convenient.

Everything below this facade (``repro.core``, ``repro.harness``,
``repro.driver``) remains importable for IR-level work, but only the
names exported here are covered by the deprecation policy documented
in docs/API.md.  The pre-facade entry points ``compile_program`` and
``run_workload`` still exist as thin aliases that raise
:class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable

from .analysis.frequency import BranchProfile
from .core.config import CompileOptions, SignExtConfig
from .core.pipeline import CompileResult, compile_ir
from .driver import BatchCompiler, CompileCache, CompileJob, default_cache_dir
from .frontend import compile_source
from .fuzz import CampaignConfig, CampaignResult
from .fuzz import run_campaign as _run_campaign
from .harness import (
    SoundnessError,
    WorkloadResults,
    results_to_dict,
    run_suite,
)
from .interp import (
    default_codegen_cache,
    default_translation_cache,
    execute,
)
from .ir.function import Program
from .machine.costs import CycleReport, count_cycles
from .profile import ExecutionProfile, artifact_path, build_profile, write_profile
from .telemetry import Telemetry
from .workloads import Workload, get_workload

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CompileOptions",
    "CompileResult",
    "ProfileResult",
    "RunResult",
    "SuiteResult",
    "bench",
    "compile",
    "driver_from_options",
    "fuzz_campaign",
    "profile",
    "run",
]


def _coerce_program(source: Program | str | Path,
                    name: str = "program") -> Program:
    """Accept a Program, a ``.j32`` path, or J32 source text."""
    if isinstance(source, Program):
        return source
    if isinstance(source, Path):
        return compile_source(source.read_text(), source.stem)
    if isinstance(source, str):
        # A path if it plausibly is one and exists; source text otherwise.
        if "\n" not in source:
            candidate = Path(source)
            if candidate.exists():
                return compile_source(candidate.read_text(), candidate.stem)
            if source.endswith(".j32"):
                raise FileNotFoundError(source)
        return compile_source(source, name)
    raise TypeError(f"cannot compile {type(source).__name__}")


def driver_from_options(
    options: CompileOptions,
    *,
    telemetry: Telemetry | None = None,
) -> BatchCompiler:
    """The :class:`BatchCompiler` an options object describes."""
    cache = None
    if options.cache:
        cache_dir = (Path(options.cache_dir) if options.cache_dir
                     else default_cache_dir())
        cache = CompileCache(cache_dir, max_bytes=options.cache_max_bytes)
    return BatchCompiler(
        jobs=options.jobs,
        cache=cache,
        timeout=options.timeout,
        metrics=cache.metrics if cache is not None else None,
        telemetry=telemetry,
    )


def compile(
    source: Program | str | Path,
    options: CompileOptions | None = None,
    *,
    config: SignExtConfig | None = None,
    profiles: dict[str, BranchProfile] | None = None,
    driver: BatchCompiler | None = None,
    trace_id: str | None = None,
) -> CompileResult:
    """Compile ``source`` and return the optimized program + statistics.

    ``config`` overrides the variant/machine the options select (for
    ablation-style custom :class:`SignExtConfig` objects); ``profiles``
    supplies branch profiles for order determination.  ``driver``
    optionally routes the compilation through a caller-owned
    :class:`BatchCompiler` — long-lived services (``repro serve``)
    mount one driver so every request shares a single
    :class:`CompileCache` instead of re-opening it per call.
    ``trace_id`` is the request correlation token those services mint;
    it labels any telemetry this compilation produces and never affects
    the compilation itself.
    """
    options = options if options is not None else CompileOptions()
    program = _coerce_program(source)
    cfg = config if config is not None else options.config()

    if driver is not None:
        return driver.compile_one(CompileJob(
            label=program.name,
            program=program,
            config=cfg,
            profiles=profiles,
            collect_telemetry=options.telemetry,
            trace_id=trace_id,
        ))
    if options.cache or options.jobs > 1:
        with driver_from_options(options) as owned:
            return owned.compile_one(CompileJob(
                label=program.name,
                program=program,
                config=cfg,
                profiles=profiles,
                collect_telemetry=options.telemetry,
                trace_id=trace_id,
            ))
    telemetry = Telemetry(label=program.name) if options.telemetry else None
    return compile_ir(program, cfg, profiles, clone=options.clone,
                      telemetry=telemetry)


@dataclass
class RunResult:
    """One compile-and-execute, verified against the unoptimized run."""

    compile: CompileResult
    ret_value: int | float | None
    checksum: int
    steps: int
    extend_counts: dict[int, int]
    cycles: CycleReport
    gold_checksum: int
    #: soundness check passed (``run`` raises otherwise, so always True)
    verified: bool = True

    @property
    def telemetry(self) -> Telemetry | None:
        return self.compile.telemetry


def run(
    source: Program | str | Path,
    options: CompileOptions | None = None,
    *,
    config: SignExtConfig | None = None,
    driver: BatchCompiler | None = None,
    trace_id: str | None = None,
) -> RunResult:
    """Compile ``source``, execute it, and verify observable behaviour.

    Raises :class:`~repro.harness.SoundnessError` if the optimized
    program's observable behaviour diverges from the unoptimized gold
    run.  ``driver`` routes the compile through a caller-owned
    :class:`BatchCompiler`, and ``trace_id`` labels request-scoped
    telemetry (see :func:`compile`).
    """
    options = options if options is not None else CompileOptions()
    program = _coerce_program(source)
    traits = config.traits if config is not None else options.traits()

    gold = execute(program, engine=options.engine, mode="ideal",
                   fuel=options.fuel)
    compiled = compile(program, options, config=config, driver=driver,
                       trace_id=trace_id)
    metrics = (compiled.telemetry.metrics
               if compiled.telemetry is not None else None)
    run_kwargs: dict = {}
    if options.layout_profile:
        from .interp import load_layout_profiles

        run_kwargs["layout_profiles"] = load_layout_profiles(
            options.layout_profile
        )
    execution = execute(compiled.program, engine=options.engine,
                        traits=traits, fuel=options.fuel, metrics=metrics,
                        **run_kwargs)
    if execution.observable() != gold.observable():
        raise SoundnessError(
            f"{program.name}: observable behaviour changed "
            f"(gold {gold.observable()} vs {execution.observable()})"
        )
    return RunResult(
        compile=compiled,
        ret_value=execution.ret_value,
        checksum=execution.checksum,
        steps=execution.steps,
        extend_counts=dict(execution.extend_counts),
        cycles=count_cycles(compiled.program, execution, traits),
        gold_checksum=gold.checksum,
    )


@dataclass
class ProfileResult:
    """A profiled compile-and-execute (see :func:`profile`)."""

    compile: CompileResult
    profile: ExecutionProfile
    #: artifact location when ``options.profile_dir`` was set
    artifact: Path | None = None

    @property
    def telemetry(self) -> Telemetry | None:
        return self.compile.telemetry


def profile(
    source: Program | str | Path | Workload,
    options: CompileOptions | None = None,
    *,
    config: SignExtConfig | None = None,
    workload: str = "",
) -> ProfileResult:
    """Compile ``source``, execute it under profiling, and return the
    :class:`~repro.profile.ExecutionProfile`.

    Telemetry is always collected so the profile can inline the
    compile-time elimination verdicts at surviving extend sites.  When
    ``options.profile_dir`` is set the artifact is also written there
    (deterministic JSON, see docs/PROFILING.md) and its path returned.
    ``engine="both"`` keeps the parity check: both engines run, and the
    profile is built from the closure engine's result.
    """
    options = options if options is not None else CompileOptions()
    if isinstance(source, Workload):
        workload = workload or source.name
        source = source.program()
    program = _coerce_program(source)
    traits = config.traits if config is not None else options.traits()

    if not options.telemetry:
        options = replace(options, telemetry=True)
    compiled = compile(program, options, config=config)
    execution = execute(compiled.program, engine=options.engine,
                        traits=traits, fuel=options.fuel,
                        collect_profile=True)
    decisions = (compiled.telemetry.decisions
                 if compiled.telemetry is not None else None)
    built = build_profile(
        compiled.program, execution,
        traits=traits,
        engine=options.engine,
        variant=options.variant,
        machine=options.machine,
        workload=workload,
        decisions=decisions,
    )
    artifact = None
    if options.profile_dir:
        artifact = artifact_path(options.profile_dir, workload or program.name,
                                 options.variant, options.machine)
        write_profile(built, artifact)
    return ProfileResult(compile=compiled, profile=built, artifact=artifact)


@dataclass
class SuiteResult:
    """A benchmark sweep plus the driver statistics it accumulated."""

    results: list[WorkloadResults]
    driver_stats: dict[str, int] = field(default_factory=dict)

    def workload(self, name: str) -> WorkloadResults:
        for result in self.results:
            if result.workload.name == name:
                return result
        raise KeyError(name)

    @property
    def cache_hits(self) -> int:
        return self.driver_stats.get("hits", 0)

    @property
    def cache_misses(self) -> int:
        return self.driver_stats.get("misses", 0)

    def to_dict(self) -> dict[str, Any]:
        return results_to_dict(self.results)

    def write_json(self, path: str | Path) -> None:
        from .harness import export_json

        export_json(self.results, str(path))


def bench(
    workloads: Iterable[Workload | str] | None = None,
    variants: dict[str, SignExtConfig] | None = None,
    options: CompileOptions | None = None,
    *,
    driver: BatchCompiler | None = None,
) -> SuiteResult:
    """Sweep ``workloads`` × ``variants`` through the batch driver.

    ``workloads`` accepts :class:`Workload` objects or registry names
    (``None`` means the full 17-workload grid); ``variants`` defaults
    to the paper's twelve table rows.  ``options.jobs`` and
    ``options.cache`` turn on parallel compilation and the compile
    cache; every cell is still verified against its gold run.
    ``driver`` reuses a caller-owned :class:`BatchCompiler` instead of
    opening (and closing) one per sweep.
    """
    from .workloads import all_workloads

    options = options if options is not None else CompileOptions()
    if workloads is None:
        resolved = all_workloads()
    else:
        resolved = [
            w if isinstance(w, Workload) else get_workload(w)
            for w in workloads
        ]

    def _sweep(active: BatchCompiler) -> SuiteResult:
        results = run_suite(
            resolved,
            variants,
            traits=options.traits(),
            fuel=options.fuel,
            collect_telemetry=options.telemetry,
            driver=active,
            engine=options.engine,
            profile_dir=options.profile_dir,
        )
        stats = dict(active.stats())
        stats.update(default_translation_cache().stats())
        stats.update(default_codegen_cache().stats())
        return SuiteResult(results=results, driver_stats=stats)

    if driver is not None:
        return _sweep(driver)
    with driver_from_options(options) as owned:
        return _sweep(owned)


def fuzz_campaign(
    config: CampaignConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> CampaignResult:
    """Run one differential fuzzing campaign (see :mod:`repro.fuzz`).

    Generates seeded J32 programs, compiles every (variant, machine)
    cell through the batch driver, and checks each cell against the
    unoptimized gold run.  Divergences persist to the on-disk corpus
    and — unless ``config.reduce`` is off — are shrunk to minimal
    witnesses; known witnesses replay as regressions first.
    """
    return _run_campaign(config, telemetry=telemetry)
