"""Configuration of the sign-extension pipeline and the paper's variants.

Each row of Tables 1 and 2 is one :class:`SignExtConfig`; the
``VARIANTS`` registry lists them in the paper's order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..ir.types import JAVA_MAX_ARRAY_LENGTH
from ..machine.model import IA64, MachineTraits


class Placement(enum.Enum):
    """Where conversion generates sign extensions (Figure 6)."""

    GEN_DEF = "gen_def"  # after every definition (the paper's choice)
    GEN_USE = "gen_use"  # before every requiring use (the reference)


class Algorithm(enum.Enum):
    NONE = "none"  # Figure 5 step 3 disabled
    BWD_FLOW = "bwd_flow"  # the first algorithm: backward dataflow
    UD_DU = "ud_du"  # the new algorithm: UD/DU chains


@dataclass(frozen=True)
class SignExtConfig:
    """All knobs of the sign-extension machinery."""

    placement: Placement = Placement.GEN_DEF
    algorithm: Algorithm = Algorithm.UD_DU
    #: phase (3)-1 — insert extensions before requiring instructions
    insert: bool = False
    #: use the PDE-variant insertion instead of the simple algorithm
    insert_pde: bool = False
    #: phase (3)-2 — eliminate hottest regions first
    order: bool = False
    #: Section 3 — array-subscript elimination via Theorems 1-4
    array: bool = False
    #: run the general optimizations of Figure 5 step 2
    general_opts: bool = True
    #: maximum array length assumed by Theorem 4
    max_array_length: int = JAVA_MAX_ARRAY_LENGTH
    #: which of Section 3's theorems AnalyzeARRAY may use (for ablation)
    theorems: frozenset[int] = frozenset({1, 2, 3, 4})
    #: use interpreter-collected branch profiles for order determination
    use_profile: bool = True
    #: DEBUG ONLY — fault injection for the fuzz campaign: AnalyzeDEF
    #: unconditionally reports every reaching definition as canonical,
    #: which deliberately miscompiles most programs.  Never set outside
    #: ``repro fuzz --inject-bug`` and the reducer tests.
    debug_skip_def_check: bool = False
    traits: MachineTraits = field(default=IA64)

    def with_traits(self, traits: MachineTraits) -> "SignExtConfig":
        return replace(self, traits=traits)


def _variant(**kwargs) -> SignExtConfig:
    return SignExtConfig(**kwargs)


#: The rows of Tables 1 and 2, in the paper's order.
VARIANTS: dict[str, SignExtConfig] = {
    "baseline": _variant(algorithm=Algorithm.NONE),
    "gen use": _variant(placement=Placement.GEN_USE, algorithm=Algorithm.NONE),
    "first algorithm (bwd flow)": _variant(algorithm=Algorithm.BWD_FLOW),
    "basic ud/du": _variant(algorithm=Algorithm.UD_DU),
    "insert": _variant(algorithm=Algorithm.UD_DU, insert=True),
    "order": _variant(algorithm=Algorithm.UD_DU, order=True),
    "insert, order": _variant(algorithm=Algorithm.UD_DU, insert=True, order=True),
    "array": _variant(algorithm=Algorithm.UD_DU, array=True),
    "array, insert": _variant(algorithm=Algorithm.UD_DU, array=True, insert=True),
    "array, order": _variant(algorithm=Algorithm.UD_DU, array=True, order=True),
    "all, using PDE": _variant(
        algorithm=Algorithm.UD_DU, array=True, insert=True, insert_pde=True,
        order=True,
    ),
    "new algorithm (all)": _variant(
        algorithm=Algorithm.UD_DU, array=True, insert=True, order=True
    ),
}

#: Rows the paper marks as reference-only.
REFERENCE_VARIANTS = frozenset({"gen use", "all, using PDE"})

#: The paper's headline configuration; the default everywhere.
DEFAULT_VARIANT = "new algorithm (all)"


@dataclass(frozen=True)
class CompileOptions:
    """Every knob a driver-level entry point accepts, in one object.

    This replaces the keyword plumbing that used to be re-invented per
    call site (``profiles=``/``clone=``/``telemetry=`` on
    ``compile_program``, ``collect_telemetry=`` on the harness, and one
    argparse wiring per CLI subcommand).  :class:`SignExtConfig` stays
    the *pipeline* configuration — what code gets generated;
    ``CompileOptions`` is the *invocation* configuration — how the
    compilation is driven.
    """

    #: variant name from :data:`VARIANTS` (a Table 1/2 row)
    variant: str = DEFAULT_VARIANT
    #: target machine name from :data:`repro.machine.MACHINES`
    machine: str = "ia64"
    #: interpreter step budget for executions the entry point performs
    fuel: int = 100_000_000
    #: collect full telemetry (spans, metrics, decision log)
    telemetry: bool = False
    #: process-pool width for batch compilation (1 = in-process)
    jobs: int = 1
    #: consult/populate the content-addressed compile cache
    cache: bool = False
    #: on-disk cache tier location (``None`` = ``~/.cache/repro``)
    cache_dir: str | None = None
    #: byte budget for the on-disk cache tier; oldest-mtime entries are
    #: evicted beyond it (``None`` = ``$REPRO_CACHE_MAX_BYTES``, else
    #: unbounded)
    cache_max_bytes: int | None = None
    #: seconds before a pool job falls back to in-process compilation
    timeout: float | None = None
    #: clone the input program before compiling (disable only when the
    #: caller owns the program outright and wants it consumed in place)
    clone: bool = True
    #: execution engine for every interpreter run the entry point makes:
    #: ``"closure"`` (translated threaded code), ``"codegen"``
    #: (generated Python source with superinstruction fusion),
    #: ``"reference"`` (the per-step oracle loop), or ``"both"`` (run
    #: all three, assert parity).  The literal default tracks
    #: ``repro.interp.engine.DEFAULT_ENGINE`` (not imported here to
    #: keep ``repro.core`` import-light).
    engine: str = "closure"
    #: directory for execution-profile artifacts (``None`` = don't
    #: profile; the flag gates *all* per-run profile collection, so the
    #: hot loops stay untouched when it is off — see docs/PROFILING.md)
    profile_dir: str | None = None
    #: a PR-6 ``*.profile.json`` artifact (or a directory of them) whose
    #: edge counts drive profile-guided block layout in the translated
    #: engines; ``None`` = source-order emission
    layout_profile: str | None = None

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant: {self.variant!r}")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.engine not in ("closure", "reference", "codegen", "both"):
            raise ValueError(f"unknown engine: {self.engine!r}")

    @classmethod
    def from_cli_args(cls, args) -> "CompileOptions":
        """Build options from an ``argparse`` namespace.

        Subcommands share one flag vocabulary (``--variant``,
        ``--machine``, ``--fuel``, ``--telemetry``, ``--jobs``,
        ``--cache``, ``--cache-dir``, ``--timeout``); any flag a
        subcommand does not define simply keeps its default here.
        """
        defaults = cls()
        # --telemetry is a bool on some subcommands and an output path
        # on others; either way truthiness means "collect telemetry".
        return cls(
            variant=getattr(args, "variant", defaults.variant),
            machine=getattr(args, "machine", defaults.machine),
            fuel=getattr(args, "fuel", defaults.fuel),
            telemetry=bool(getattr(args, "telemetry", None)),
            jobs=getattr(args, "jobs", defaults.jobs),
            cache=bool(getattr(args, "cache", defaults.cache)),
            cache_dir=getattr(args, "cache_dir", defaults.cache_dir),
            cache_max_bytes=getattr(args, "cache_max_bytes",
                                    defaults.cache_max_bytes),
            timeout=getattr(args, "timeout", defaults.timeout),
            engine=getattr(args, "engine", None) or defaults.engine,
            profile_dir=getattr(args, "profile_dir", defaults.profile_dir),
            layout_profile=getattr(args, "layout_profile",
                                   defaults.layout_profile),
        )

    def traits(self) -> MachineTraits:
        from ..machine import MACHINES

        return MACHINES[self.machine]

    def config(self) -> SignExtConfig:
        """The :class:`SignExtConfig` these options select."""
        return VARIANTS[self.variant].with_traits(self.traits())
