"""Phase 3 driver: insertion, order determination, elimination.

Chains are built once (the paper's "UD/DU chain creation" budget line)
and spliced incrementally as extensions are removed.

With ``telemetry`` attached, each sub-phase ((3)-1 insertion, (3)-2
order determination, chain construction, (3)-3 elimination) becomes a
span, the phase's statistics land in the metrics registry, and every
candidate produces one decision record (see
:mod:`repro.telemetry.decisions`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.frequency import BranchProfile
from ..analysis.ud_du import Chains
from ..ir.function import Function
from ..opt.pass_manager import BUCKET_CHAINS, BUCKET_SIGN_EXT, Timing
from ..telemetry import Telemetry
from .analyze import Eliminator
from .config import SignExtConfig
from .insertion import (
    insert_before_requiring_uses,
    insert_dummy_markers,
    remove_dummy_markers,
)
from .ordering import order_candidates
from .pde_insertion import run_pde_insertion


@dataclass
class FunctionStats:
    """What phase 3 did to one function."""

    name: str = ""
    inserted: int = 0
    dummies: int = 0
    candidates: int = 0
    eliminated: int = 0
    eliminated_by_width: dict[int, int] = field(
        default_factory=lambda: {8: 0, 16: 0, 32: 0}
    )


def run_sign_extension_elimination(
    func: Function,
    config: SignExtConfig,
    profile: BranchProfile | None = None,
    timing: Timing | None = None,
    telemetry: Telemetry | None = None,
) -> FunctionStats:
    """Run phase 3 (the new algorithm) on one converted function."""
    stats = FunctionStats(name=func.name)
    timing = timing if timing is not None else Timing()

    if telemetry is None:
        return _run_phase3(func, config, profile, timing, stats, None)
    with telemetry.span("sign-ext", function=func.name):
        _run_phase3(func, config, profile, timing, stats, telemetry)
    _record_phase3_metrics(stats, config, telemetry)
    return stats


def _run_phase3(
    func: Function,
    config: SignExtConfig,
    profile: BranchProfile | None,
    timing: Timing,
    stats: FunctionStats,
    telemetry: Telemetry | None,
) -> FunctionStats:
    import contextlib

    def span(name: str):
        if telemetry is None:
            return contextlib.nullcontext()
        return telemetry.span(name, category="sign-ext")

    start = time.perf_counter()
    with span("insertion"):
        stats.dummies = insert_dummy_markers(func)
        if config.insert:
            if config.insert_pde:
                stats.inserted = run_pde_insertion(func, config.traits)
            else:
                stats.inserted = insert_before_requiring_uses(
                    func, config.traits
                )
    with span("ordering"):
        candidates = order_candidates(
            func,
            use_order=config.order,
            profile=profile if config.use_profile else None,
        )
    stats.candidates = len(candidates)
    timing.add(BUCKET_SIGN_EXT, time.perf_counter() - start)

    start = time.perf_counter()
    with span("chains"):
        chains = Chains(func)
    timing.add(BUCKET_CHAINS, time.perf_counter() - start)

    start = time.perf_counter()
    with span("elimination"):
        eliminator = Eliminator(func, chains, config, telemetry=telemetry)
        from ..ir.opcodes import EXTEND_BITS

        for ext in candidates:
            if eliminator.try_eliminate(ext):
                stats.eliminated += 1
                stats.eliminated_by_width[EXTEND_BITS[ext.opcode]] += 1
        remove_dummy_markers(func)
    timing.add(BUCKET_SIGN_EXT, time.perf_counter() - start)
    return stats


def _record_phase3_metrics(stats: FunctionStats, config: SignExtConfig,
                           telemetry: Telemetry) -> None:
    metrics = telemetry.metrics
    metrics.counter("signext.candidates").inc(stats.candidates)
    metrics.counter("signext.dummy_markers").inc(stats.dummies)
    if stats.inserted:
        mode = "pde" if config.insert_pde else "simple"
        metrics.counter("signext.inserted", mode=mode).inc(stats.inserted)
    for width, count in stats.eliminated_by_width.items():
        if count:
            metrics.counter("signext.eliminated", width=width).inc(count)
