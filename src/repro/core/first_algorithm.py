"""The paper's *first algorithm*: backward-dataflow elimination.

After gen-def conversion, a 32-bit sign extension ``r = extend32(r)``
can be removed when the upper 32 bits of ``r`` are not needed on any
path after it (before any redefinition).  NEED is a backward, union,
per-register demand analysis:

* a REQUIRES use (``i2d``, division, a call argument, ...) demands its
  operand;
* an array-index use demands its operand — the first algorithm cannot
  reason about effective addresses, which is its headline limitation;
* a Case-2 use (addition, ...) demands the operand iff the destination
  is demanded after the instruction;
* any definition of ``r`` cancels the demand below it.

The transfer function is demand-coupled (Case 2), so blocks are
processed with an exact backward walk inside a fixpoint over the CFG
rather than with gen/kill summaries.
"""

from __future__ import annotations

from ..analysis.cfg import postorder
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.semantics import UseKind, classify_use
from ..ir.types import ScalarType
from ..machine.model import MachineTraits


def is_removable_extend32(instr: Instr) -> bool:
    """A same-register 32-bit canonicalizing extension."""
    return (
        instr.opcode is Opcode.EXTEND32
        and instr.dest is not None
        and instr.dest.type is ScalarType.I32
        and len(instr.srcs) == 1
        and instr.dest.name == instr.srcs[0].name
    )


class _NeedAnalysis:
    def __init__(self, func: Function, traits: MachineTraits) -> None:
        self.func = func
        self.traits = traits
        names: set[str] = set()
        for _, instr in func.instructions():
            if instr.dest is not None and instr.dest.type is ScalarType.I32:
                names.add(instr.dest.name)
            for src in instr.srcs:
                if src.type is ScalarType.I32:
                    names.add(src.name)
        self.bit_of = {name: 1 << i for i, name in enumerate(sorted(names))}
        self.masked_uses = _find_masking_and_uses(func)
        self.need_out: dict[str, int] = {b.label: 0 for b in func.blocks}
        self.need_in: dict[str, int] = {b.label: 0 for b in func.blocks}
        self._solve()

    def step(self, instr: Instr, need_after: int) -> int:
        """Exact backward transfer of one instruction."""
        result = need_after
        dest_needed = False
        dest = instr.dest
        if dest is not None and dest.type is ScalarType.I32:
            bit = self.bit_of[dest.name]
            dest_needed = bool(result & bit)
            result &= ~bit
        for index, src in enumerate(instr.srcs):
            if src.type is not ScalarType.I32:
                continue
            kind = classify_use(instr, index, self.traits)
            if kind is UseKind.REQUIRES or kind is UseKind.ARRAY_INDEX:
                result |= self.bit_of[src.name]
            elif kind is UseKind.PROPAGATES and dest_needed:
                if (instr.uid, index) in self.masked_uses:
                    continue  # AND with a positive constant: Case 1
                result |= self.bit_of[src.name]
        return result

    def _block_in(self, label: str) -> int:
        block = self.func.block(label)
        need = self.need_out[label]
        for instr in reversed(block.instrs):
            need = self.step(instr, need)
        return need

    def _solve(self) -> None:
        self.func.build_cfg()
        order = postorder(self.func)
        changed = True
        while changed:
            changed = False
            for block in order:
                out = 0
                for succ in block.succs:
                    out |= self.need_in[succ.label]
                if out != self.need_out[block.label]:
                    self.need_out[block.label] = out
                new_in = self._block_in(block.label)
                if new_in != self.need_in[block.label]:
                    self.need_in[block.label] = new_in
                    changed = True


def _find_masking_and_uses(func: Function) -> set[tuple[int, int]]:
    """(instr uid, operand index) pairs where an AND32's other operand
    is a non-negative 32-bit constant: the mask discards the operand's
    upper bits, so the use never demands a canonical value (the paper's
    Figure 3, statement (6))."""
    from ..analysis.ud_du import Chains
    from ..ir.types import INT32_MAX

    masked: set[tuple[int, int]] = set()
    chains = Chains(func)
    for _, instr in func.instructions():
        if instr.opcode is not Opcode.AND32:
            continue
        for index in (0, 1):
            other_defs = chains.defs_for(instr, 1 - index)
            if not other_defs:
                continue
            values = set()
            for definition in other_defs:
                src = definition.instr
                if src is None or src.opcode is not Opcode.CONST \
                        or not isinstance(src.imm, int):
                    values = None
                    break
                values.add(src.imm)
            if values and len(values) == 1:
                value = values.pop()
                if 0 <= value <= INT32_MAX:
                    masked.add((instr.uid, index))
    return masked


def run_first_algorithm(func: Function, traits: MachineTraits) -> int:
    """Remove extends the backward analysis proves unneeded.

    Returns the number of extensions removed.
    """
    analysis = _NeedAnalysis(func, traits)
    removed = 0
    for block in func.blocks:
        need = analysis.need_out[block.label]
        keep: list[Instr] = []
        for instr in reversed(block.instrs):
            if is_removable_extend32(instr):
                bit = analysis.bit_of[instr.dest.name]
                if not need & bit:
                    removed += 1
                    need = analysis.step(instr, need)
                    continue
            need = analysis.step(instr, need)
            keep.append(instr)
        keep.reverse()
        block.instrs = keep
    if removed:
        func.invalidate_cfg()
    return removed
