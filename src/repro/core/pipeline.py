"""The full compilation pipeline of Figure 5.

(1) conversion for a 64-bit architecture →
(2) general optimizations (constant folding, copy propagation,
    simplification, the PRE-variant CSE/LICM, DCE) →
(3) elimination and movement of sign extension
    ((3)-1 insertion, (3)-2 order determination, (3)-3 elimination).

``compile_program`` clones the input (the same 32-bit-form source is
compiled under many variant configurations by the harness) and returns
the compiled program plus timing and per-function statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.frequency import BranchProfile
from ..ir.clone import clone_program
from ..ir.function import Function, Program
from ..opt import (
    BUCKET_OTHERS,
    BUCKET_SIGN_EXT,
    Timing,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    hoist_loop_invariants,
    inline_small_functions,
    propagate_copies,
    simplify,
)
from .config import Algorithm, SignExtConfig
from .convert64 import convert_function
from .elimination import FunctionStats, run_sign_extension_elimination
from .first_algorithm import run_first_algorithm


@dataclass
class CompileResult:
    program: Program
    config: SignExtConfig
    timing: Timing
    function_stats: dict[str, FunctionStats] = field(default_factory=dict)

    @property
    def total_eliminated(self) -> int:
        return sum(s.eliminated for s in self.function_stats.values())

    @property
    def static_extend_count(self) -> int:
        from ..ir.opcodes import EXTEND_OPS

        total = 0
        for func in self.program.functions.values():
            for _, instr in func.instructions():
                if instr.opcode in EXTEND_OPS:
                    total += 1
        return total


def compile_program(
    source: Program,
    config: SignExtConfig,
    profiles: dict[str, BranchProfile] | None = None,
    *,
    clone: bool = True,
) -> CompileResult:
    """Compile a 32-bit-form program to 64-bit machine form."""
    program = clone_program(source) if clone else source
    timing = Timing()

    if config.general_opts:
        # Method inlining runs whole-program, pre-conversion, and is
        # deterministic so the profiler's inlined copy has matching
        # block labels (see repro.opt.inline).
        start = time.perf_counter()
        inline_small_functions(program)
        timing.add(BUCKET_OTHERS, time.perf_counter() - start)

    stats: dict[str, FunctionStats] = {}
    for func in program.functions.values():
        profile = (profiles or {}).get(func.name)
        stats[func.name] = _compile_function(func, config, profile, timing)
    return CompileResult(program, config, timing, stats)


def _compile_function(
    func: Function,
    config: SignExtConfig,
    profile: BranchProfile | None,
    timing: Timing,
) -> FunctionStats:
    start = time.perf_counter()
    convert_function(func, config.traits, config.placement)
    if config.general_opts:
        _run_general_opts(func)
    timing.add(BUCKET_OTHERS, time.perf_counter() - start)

    if config.algorithm is Algorithm.NONE:
        return FunctionStats(name=func.name)
    if config.algorithm is Algorithm.BWD_FLOW:
        start = time.perf_counter()
        removed = run_first_algorithm(func, config.traits)
        timing.add(BUCKET_SIGN_EXT, time.perf_counter() - start)
        stats = FunctionStats(name=func.name, eliminated=removed)
        stats.eliminated_by_width[32] = removed
        return stats
    return run_sign_extension_elimination(func, config, profile, timing)


def _run_general_opts(func: Function) -> None:
    """Figure 5 step 2.  Two rounds are enough in practice."""
    for _ in range(2):
        changed = fold_constants(func)
        changed |= simplify(func)
        changed |= propagate_copies(func)
        changed |= eliminate_common_subexpressions(func)
        changed |= hoist_loop_invariants(func)
        changed |= propagate_copies(func)
        changed |= eliminate_dead_code(func)
        if not changed:
            break
