"""The full compilation pipeline of Figure 5.

(1) conversion for a 64-bit architecture →
(2) general optimizations (constant folding, copy propagation,
    simplification, the PRE-variant CSE/LICM, DCE) →
(3) elimination and movement of sign extension
    ((3)-1 insertion, (3)-2 order determination, (3)-3 elimination).

``compile_ir`` clones the input (the same 32-bit-form source is
compiled under many variant configurations by the harness) and returns
the compiled program plus timing and per-function statistics.  It is a
pure function of ``(source, config, profiles)`` — no global state, no
I/O — which is what lets :mod:`repro.driver` memoize it in a
content-addressed cache and fan it out over worker processes.  The
historical name ``compile_program`` remains as a deprecated alias; new
code should call :func:`repro.api.compile` or ``compile_ir``.

Pass ``telemetry=`` a :class:`~repro.telemetry.Telemetry` object to
additionally record a span per phase and per optimization pass, static
extension counters, and one decision record per elimination candidate.
Telemetry is opt-in; when absent no recording happens at all.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

from ..analysis.frequency import BranchProfile
from ..ir.clone import clone_program
from ..ir.function import Function, Program
from ..ir.opcodes import EXTEND_OPS
from ..opt import (
    BUCKET_OTHERS,
    BUCKET_SIGN_EXT,
    Pass,
    PassManager,
    Timing,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    hoist_loop_invariants,
    inline_small_functions,
    propagate_copies,
    simplify,
)
from ..telemetry import Telemetry
from .config import Algorithm, SignExtConfig
from .convert64 import convert_function
from .elimination import FunctionStats, run_sign_extension_elimination
from .first_algorithm import run_first_algorithm

#: Figure 5 step 2, as named passes (one span each when tracing).  The
#: second copy-propagation round cleans up after CSE/LICM, as before.
GENERAL_PASSES = [
    Pass("constant-fold", fold_constants, BUCKET_OTHERS),
    Pass("simplify", simplify, BUCKET_OTHERS),
    Pass("copy-prop", propagate_copies, BUCKET_OTHERS),
    Pass("gcse", eliminate_common_subexpressions, BUCKET_OTHERS),
    Pass("licm", hoist_loop_invariants, BUCKET_OTHERS),
    Pass("copy-prop-cleanup", propagate_copies, BUCKET_OTHERS),
    Pass("dce", eliminate_dead_code, BUCKET_OTHERS),
]


@dataclass
class CompileResult:
    program: Program
    config: SignExtConfig
    timing: Timing
    function_stats: dict[str, FunctionStats] = field(default_factory=dict)
    telemetry: Telemetry | None = None

    @property
    def total_eliminated(self) -> int:
        return sum(s.eliminated for s in self.function_stats.values())

    @property
    def static_extend_count(self) -> int:
        return _count_static_extends(self.program)


def _count_static_extends(program: Program) -> int:
    total = 0
    for func in program.functions.values():
        for _, instr in func.instructions():
            if instr.opcode in EXTEND_OPS:
                total += 1
    return total


def compile_ir(
    source: Program,
    config: SignExtConfig,
    profiles: dict[str, BranchProfile] | None = None,
    *,
    clone: bool = True,
    telemetry: Telemetry | None = None,
) -> CompileResult:
    """Compile a 32-bit-form program to 64-bit machine form."""
    program = clone_program(source) if clone else source
    timing = Timing()

    compile_span = (telemetry.span("compile", program=program.name)
                    if telemetry is not None else contextlib.nullcontext())
    with compile_span:
        if config.general_opts:
            # Method inlining runs whole-program, pre-conversion, and is
            # deterministic so the profiler's inlined copy has matching
            # block labels (see repro.opt.inline).
            start = time.perf_counter()
            if telemetry is not None:
                with telemetry.span("inline", category="pass"):
                    inline_small_functions(program)
            else:
                inline_small_functions(program)
            timing.add(BUCKET_OTHERS, time.perf_counter() - start)

        stats: dict[str, FunctionStats] = {}
        for func in program.functions.values():
            profile = (profiles or {}).get(func.name)
            if telemetry is not None:
                with telemetry.span(f"function:{func.name}"):
                    stats[func.name] = _compile_function(
                        func, config, profile, timing, telemetry
                    )
            else:
                stats[func.name] = _compile_function(
                    func, config, profile, timing, None
                )

    if telemetry is not None:
        telemetry.counter("compile.static_extends.after").inc(
            _count_static_extends(program)
        )
        telemetry.counter("compile.functions").inc(len(program.functions))
        telemetry.counter("compile.eliminated.total").inc(
            sum(s.eliminated for s in stats.values())
        )
    return CompileResult(program, config, timing, stats, telemetry)


def compile_program(
    source: Program,
    config: SignExtConfig,
    profiles: dict[str, BranchProfile] | None = None,
    *,
    clone: bool = True,
    telemetry: Telemetry | None = None,
) -> CompileResult:
    """Deprecated alias of :func:`compile_ir`.

    Prefer the :mod:`repro.api` facade (``repro.api.compile``) or, for
    IR-level work, :func:`compile_ir`.
    """
    import warnings

    warnings.warn(
        "compile_program() is deprecated; use repro.api.compile() or "
        "repro.core.compile_ir()",
        DeprecationWarning,
        stacklevel=2,
    )
    return compile_ir(source, config, profiles, clone=clone,
                      telemetry=telemetry)


def _compile_function(
    func: Function,
    config: SignExtConfig,
    profile: BranchProfile | None,
    timing: Timing,
    telemetry: Telemetry | None,
) -> FunctionStats:
    start = time.perf_counter()
    if telemetry is not None:
        with telemetry.span("convert64"):
            convert_function(func, config.traits, config.placement)
    else:
        convert_function(func, config.traits, config.placement)
    timing.add(BUCKET_OTHERS, time.perf_counter() - start)

    if telemetry is not None:
        # Static extension count as conversion produced it, before any
        # optimization touches the function (the "before" of the
        # before/after pair).
        count = sum(1 for _, i in func.instructions()
                    if i.opcode in EXTEND_OPS)
        telemetry.counter("compile.static_extends.before").inc(count)

    if config.general_opts:
        _run_general_opts(func, timing, telemetry)

    if config.algorithm is Algorithm.NONE:
        return FunctionStats(name=func.name)
    if config.algorithm is Algorithm.BWD_FLOW:
        start = time.perf_counter()
        if telemetry is not None:
            with telemetry.span("first-algorithm"):
                removed = run_first_algorithm(func, config.traits)
        else:
            removed = run_first_algorithm(func, config.traits)
        timing.add(BUCKET_SIGN_EXT, time.perf_counter() - start)
        stats = FunctionStats(name=func.name, eliminated=removed)
        stats.eliminated_by_width[32] = removed
        return stats
    return run_sign_extension_elimination(func, config, profile, timing,
                                          telemetry)


def _run_general_opts(func: Function, timing: Timing,
                      telemetry: Telemetry | None) -> None:
    """Figure 5 step 2.  Two rounds are enough in practice."""
    tracer = telemetry.tracer if telemetry is not None else None
    manager = PassManager(GENERAL_PASSES, timing, tracer=tracer)
    if tracer is not None:
        with tracer.span("general-opts", function=func.name):
            manager.run_to_fixpoint(func, max_rounds=2)
    else:
        manager.run_to_fixpoint(func, max_rounds=2)
