"""Phase (3)-2: order determination (Section 2.2).

"It is best to eliminate sign extensions starting from the most
frequently executed region" — blocks are sorted by estimated execution
frequency (loop nesting x branch probability, profile-refined when
available).  When order determination is disabled, elimination runs in
"the reverse depth first search order, the same order in which backward
dataflow analysis is performed".
"""

from __future__ import annotations

from ..analysis.cfg import reverse_depth_first_order
from ..analysis.frequency import BranchProfile, estimate_frequencies
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import EXTEND_OPS
from ..ir.types import ScalarType


def is_candidate_extend(instr: Instr) -> bool:
    """A same-register narrow extension, eligible for elimination."""
    return (
        instr.opcode in EXTEND_OPS
        and instr.dest is not None
        and instr.dest.type is ScalarType.I32
        and len(instr.srcs) == 1
        and instr.dest.name == instr.srcs[0].name
    )


def order_candidates(
    func: Function,
    *,
    use_order: bool,
    profile: BranchProfile | None = None,
) -> list[Instr]:
    """Candidate extensions in elimination order."""
    if use_order:
        estimate_frequencies(func, profile)
        blocks = sorted(
            enumerate(func.blocks),
            key=lambda pair: (-pair[1].freq, pair[0]),
        )
        ordered = [block for _, block in blocks]
        return [
            instr for block in ordered for instr in block.instrs
            if is_candidate_extend(instr)
        ]

    candidates: list[Instr] = []
    for block in reverse_depth_first_order(func):
        for instr in reversed(block.instrs):
            if is_candidate_extend(instr):
                candidates.append(instr)
    return candidates
