"""Phase (3)-1: sign-extension insertion (Section 2.1).

Two kinds of insertions:

* **Requiring-use insertion** (the simple algorithm): an
  ``r = extend32(r)`` immediately before every instruction that requires
  a canonical value, unless the operand is obviously extended.  Together
  with order determination this is what moves extensions out of loops:
  the in-loop extension becomes removable because the freshly inserted
  one downstream covers the requirement (Figures 7 and 8).  Following
  the paper, this runs only on functions that contain a loop.
* **Dummy markers**: ``i = just_extended(i)`` after every array access
  whose index register survives the access.  A bounds-checked index is
  guaranteed canonical (it is in ``[0, maxlen)``), and the marker
  definition lets UD-chain reasoning use that fact.  Markers are removed
  once elimination finishes.
"""

from __future__ import annotations

from ..analysis.dominators import DominatorTree
from ..analysis.ud_du import Chains
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode, Role
from ..ir.semantics import UseKind, canonical_bits, classify_use
from ..ir.types import ScalarType
from ..machine.model import MachineTraits


def function_has_loop(func: Function) -> bool:
    func.build_cfg()
    domtree = DominatorTree(func)
    for block in func.blocks:
        for succ in block.succs:
            if domtree.dominates(succ, block):
                return True
    return False


def insert_before_requiring_uses(func: Function, traits: MachineTraits) -> int:
    """The simple insertion algorithm; returns insertions made."""
    if not function_has_loop(func):
        return 0
    chains = Chains(func)
    inserted = 0
    for block in func.blocks:
        rewritten: list[Instr] = []
        for instr in block.instrs:
            placed_here: set[str] = set()
            for index, src in enumerate(instr.srcs):
                if src.type is not ScalarType.I32:
                    continue
                if classify_use(instr, index, traits) is not UseKind.REQUIRES:
                    continue
                if src.name in placed_here:
                    continue
                if _obviously_extended(chains, instr, index, traits):
                    continue
                if rewritten and _is_extend32_of(rewritten[-1], src.name):
                    continue
                rewritten.append(
                    Instr(Opcode.EXTEND32, src, (src,), comment="inserted")
                )
                placed_here.add(src.name)
                inserted += 1
            rewritten.append(instr)
        block.instrs = rewritten
    if inserted:
        func.invalidate_cfg()
    return inserted


def insert_dummy_markers(func: Function) -> int:
    """Insert ``just_extended`` markers after array accesses."""
    inserted = 0
    for block in func.blocks:
        rewritten: list[Instr] = []
        for instr in block.instrs:
            rewritten.append(instr)
            if instr.opcode not in (Opcode.ALOAD, Opcode.ASTORE):
                continue
            index_reg = None
            for operand_index, src in enumerate(instr.srcs):
                if instr.role_of(operand_index) is Role.ARRAY_INDEX:
                    index_reg = src
                    break
            if index_reg is None or index_reg.type is not ScalarType.I32:
                continue
            # "unless an array index is overwritten immediately, as in
            # the case of i = a[i]"
            if instr.dest is not None and instr.dest.name == index_reg.name:
                continue
            if instr.is_terminator:
                continue
            rewritten.append(
                Instr(Opcode.JUST_EXTENDED, index_reg, (index_reg,),
                      comment="dummy")
            )
            inserted += 1
        block.instrs = rewritten
    if inserted:
        func.invalidate_cfg()
    return inserted


def remove_dummy_markers(func: Function) -> int:
    """Drop all remaining ``just_extended`` markers (end of phase 3)."""
    removed = 0
    for block in func.blocks:
        kept = [i for i in block.instrs if i.opcode is not Opcode.JUST_EXTENDED]
        removed += len(block.instrs) - len(kept)
        block.instrs = kept
    if removed:
        func.invalidate_cfg()
    return removed


def _is_extend32_of(instr: Instr, reg_name: str) -> bool:
    return (instr.opcode is Opcode.EXTEND32 and instr.dest is not None
            and instr.dest.name == reg_name)


def _obviously_extended(chains: Chains, instr: Instr, index: int,
                        traits: MachineTraits) -> bool:
    """Conservative "obviously sign-extended" check.

    Definitions that are themselves ``extend`` instructions do NOT count:
    they are elimination candidates, and the whole point of insertion is
    to place a covering extension near the use so that a hotter upstream
    one can be removed (Figure 7 inserts (11) even though (9) exists).
    """
    defs = chains.defs_for(instr, index)
    if not defs:
        return False
    for definition in defs:
        if definition.is_param:
            if not traits.abi_canonical_args:
                return False
            continue
        if definition.instr.is_extend:
            return False
        guaranteed = canonical_bits(definition.instr, traits)
        if guaranteed is None or guaranteed > 32:
            return False
    return True
