"""The paper's contribution: sign-extension elimination.

Entry point: :func:`compile_ir` with a :class:`SignExtConfig` (pick
one from :data:`VARIANTS` to reproduce a table row), or the
:mod:`repro.api` facade one level up.  :func:`compile_program` is the
deprecated historical name.
"""

from .analyze import Eliminator
from .config import (
    Algorithm,
    CompileOptions,
    DEFAULT_VARIANT,
    Placement,
    REFERENCE_VARIANTS,
    SignExtConfig,
    VARIANTS,
)
from .convert64 import convert_function, convert_program
from .elimination import FunctionStats, run_sign_extension_elimination
from .first_algorithm import is_removable_extend32, run_first_algorithm
from .insertion import (
    function_has_loop,
    insert_before_requiring_uses,
    insert_dummy_markers,
    remove_dummy_markers,
)
from .ordering import is_candidate_extend, order_candidates
from .pde_insertion import run_pde_insertion
from .pipeline import CompileResult, compile_ir, compile_program

__all__ = [
    "Algorithm",
    "CompileOptions",
    "CompileResult",
    "Eliminator",
    "FunctionStats",
    "Placement",
    "REFERENCE_VARIANTS",
    "DEFAULT_VARIANT",
    "SignExtConfig",
    "VARIANTS",
    "compile_ir",
    "compile_program",
    "convert_function",
    "convert_program",
    "function_has_loop",
    "insert_before_requiring_uses",
    "insert_dummy_markers",
    "is_candidate_extend",
    "is_removable_extend32",
    "order_candidates",
    "remove_dummy_markers",
    "run_first_algorithm",
    "run_pde_insertion",
    "run_sign_extension_elimination",
]
