"""Step 1 of Figure 5: conversion for a 64-bit architecture.

The input IR is "32-bit form": every ``i32`` register conceptually
holds a true 32-bit value.  Conversion rewrites it to machine form,
where registers are physically 64 bits wide and explicit ``extend``
instructions maintain the invariants the machine needs:

* **gen-def** (the paper's choice, Figure 6(b)): after every definition
  of a narrow integer register, insert ``r = extendK(r)`` unless the
  defining instruction already guarantees a canonical value at width K.
  K is 32 for ordinary ``int`` computations and 8/16 for narrow loads
  whose machine load instruction does not sign-extend (the *semantic*
  extensions: a zero-extended byte load needs ``extend8`` to produce the
  Java ``byte`` value).
* **gen-use** (Figure 6(c), the reference): only the semantic sub-32-bit
  extensions are placed after definitions; 32-bit extensions are instead
  placed immediately before every use that requires a canonical value,
  unless every reaching definition is already guaranteed canonical.
"""

from __future__ import annotations

from ..analysis.ud_du import Chains
from ..ir.function import Function, Program
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.semantics import (
    UseKind,
    canonical_bits,
    classify_use,
    propagates_canonical,
)
from ..ir.types import ScalarType
from ..machine.model import MachineTraits
from .config import Placement


def convert_program(program: Program, traits: MachineTraits,
                    placement: Placement = Placement.GEN_DEF) -> None:
    for func in program.functions.values():
        convert_function(func, traits, placement)


def convert_function(func: Function, traits: MachineTraits,
                     placement: Placement = Placement.GEN_DEF) -> None:
    if placement is Placement.GEN_DEF:
        _insert_after_defs(func, traits, semantic_only=False)
    else:
        _insert_after_defs(func, traits, semantic_only=True)
        _insert_before_uses(func, traits)
    func.invalidate_cfg()


_EXTEND_FOR_WIDTH = {8: Opcode.EXTEND8, 16: Opcode.EXTEND16, 32: Opcode.EXTEND32}


def _semantic_def_width(instr: Instr) -> int:
    """Width of the value the destination semantically carries."""
    if instr.opcode in (Opcode.ALOAD, Opcode.GLOAD):
        elem = instr.elem
        if elem is not None and elem.is_narrow_int and elem.signed:
            return elem.bits
        # u16 (char) semantically zero-extends, which every machine's
        # narrow load already provides; treat as a 32-bit value.
        return 32
    return 32


def _insert_after_defs(func: Function, traits: MachineTraits,
                       semantic_only: bool) -> None:
    for block in func.blocks:
        rewritten: list[Instr] = []
        for instr in block.instrs:
            rewritten.append(instr)
            dest = instr.dest
            if dest is None or dest.type is not ScalarType.I32:
                continue
            if instr.opcode in (Opcode.EXTEND8, Opcode.EXTEND16,
                                Opcode.EXTEND32, Opcode.JUST_EXTENDED):
                continue
            width = _semantic_def_width(instr)
            if semantic_only and width >= 32:
                continue
            if not semantic_only and propagates_canonical(instr.opcode):
                # Inductive invariant of gen-def conversion: every value
                # is canonical after its (extended) definition, so copies
                # and bitwise ops of canonical values stay canonical.
                continue
            guaranteed = canonical_bits(instr, traits)
            if guaranteed is not None and guaranteed <= width:
                continue
            rewritten.append(
                Instr(_EXTEND_FOR_WIDTH[width], dest, (dest,),
                      comment="convert64")
            )
        block.instrs = rewritten


def _insert_before_uses(func: Function, traits: MachineTraits) -> None:
    """Gen-use placement: an ``extend32`` before each requiring use."""
    chains = Chains(func)
    for block in func.blocks:
        rewritten: list[Instr] = []
        for instr in block.instrs:
            extended_here: set[str] = set()
            for index, src in enumerate(instr.srcs):
                if src.type is not ScalarType.I32:
                    continue
                kind = classify_use(instr, index, traits)
                if kind not in (UseKind.REQUIRES, UseKind.ARRAY_INDEX):
                    continue
                if src.name in extended_here:
                    continue
                if _defs_all_canonical(chains, instr, index, traits):
                    continue
                rewritten.append(
                    Instr(Opcode.EXTEND32, src, (src,), comment="gen-use")
                )
                extended_here.add(src.name)
            rewritten.append(instr)
        block.instrs = rewritten


def _defs_all_canonical(chains: Chains, instr: Instr, index: int,
                        traits: MachineTraits) -> bool:
    defs = chains.defs_for(instr, index)
    if not defs:
        return False
    for definition in defs:
        if definition.is_param:
            if not traits.abi_canonical_args:
                return False
            continue
        guaranteed = canonical_bits(definition.instr, traits)
        if guaranteed is None or guaranteed > 32:
            return False
    return True
