"""The PDE-variant insertion algorithm (Section 2.1, evaluated as
"all, using PDE").

"This algorithm inserts a sign extension at the latest point on every
possible path where each sign extension can be reached when it is moved
forward in the control flow graph."

Implementation: a forward *delay* analysis per register.  An existing
``r = extend32(r)`` turns into a pending extension that flows forward;
it materializes immediately before a use that requires a canonical
value, dies at a redefinition of ``r`` (the partial-dead-code win), and
must materialize at the end of a block whose successor cannot assume it
(some other predecessor is not pending — the paper's Figure 15 drawback:
the sunk extension is re-executed on paths that would not have needed
it, or blocks sinking altogether).
"""

from __future__ import annotations

from ..analysis.dataflow import DataflowProblem, Direction, Meet
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.semantics import UseKind, classify_use
from ..ir.types import ScalarType
from ..machine.model import MachineTraits
from .first_algorithm import is_removable_extend32


def run_pde_insertion(func: Function, traits: MachineTraits) -> int:
    """Sink extensions forward; returns the net change in extend count."""
    func.build_cfg()
    regs: list[str] = []
    for _, instr in func.instructions():
        if is_removable_extend32(instr) and instr.dest.name not in regs:
            regs.append(instr.dest.name)
    if not regs:
        return 0
    bit_of = {name: 1 << i for i, name in enumerate(regs)}
    tracked = set(regs)

    problem = DataflowProblem(
        func, Direction.FORWARD, Meet.INTERSECT, len(regs), boundary=0
    )
    for block in func.blocks:
        facts = problem.facts_for(block)
        pending = 0  # generated locally
        transparent = (1 << len(regs)) - 1
        for instr in block.instrs:
            for name in _needing_uses(instr, traits, tracked):
                pending &= ~bit_of[name]
                transparent &= ~bit_of[name]
            if is_removable_extend32(instr) and instr.dest.name in tracked:
                pending |= bit_of[instr.dest.name]
                transparent &= ~bit_of[instr.dest.name]
            elif instr.dest is not None and instr.dest.name in tracked:
                pending &= ~bit_of[instr.dest.name]
                transparent &= ~bit_of[instr.dest.name]
        facts.gen = pending
        facts.kill = ((1 << len(regs)) - 1) & ~transparent
    problem.solve()

    removed = 0
    inserted = 0
    for block in func.blocks:
        pending = problem.facts_for(block).in_
        rewritten: list[Instr] = []
        for instr in block.instrs:
            for name in _needing_uses(instr, traits, tracked):
                if pending & bit_of[name]:
                    reg = _operand_named(instr, name)
                    rewritten.append(
                        Instr(Opcode.EXTEND32, reg, (reg,), comment="pde")
                    )
                    inserted += 1
                    pending &= ~bit_of[name]
            if is_removable_extend32(instr) and instr.dest.name in tracked:
                pending |= bit_of[instr.dest.name]
                removed += 1
                continue  # the original extension is subsumed by pending
            if instr.dest is not None and instr.dest.name in tracked:
                pending &= ~bit_of[instr.dest.name]
            rewritten.append(instr)
        # Materialize pendings that a successor cannot assume.
        must_place = 0
        for succ in block.succs:
            must_place |= pending & ~problem.facts_for(succ).in_
        if not block.succs:
            must_place = 0  # function exit: the value's upper bits are dead
        terminator = rewritten.pop() if rewritten and rewritten[-1].is_terminator else None
        for name, bit in bit_of.items():
            if must_place & bit:
                reg = _find_reg(func, name)
                rewritten.append(
                    Instr(Opcode.EXTEND32, reg, (reg,), comment="pde edge")
                )
                inserted += 1
        if terminator is not None:
            rewritten.append(terminator)
        block.instrs = rewritten

    func.invalidate_cfg()
    return inserted - removed


def _needing_uses(instr: Instr, traits: MachineTraits,
                  tracked: set[str]) -> list[str]:
    """Uses a pending extension cannot sink past.

    REQUIRES and ARRAY_INDEX uses read the upper bits outright.  A
    PROPAGATES use (copy, addition, ...) transfers the operand's upper
    bits into another register, so sinking past it would change that
    register; the pending extension materializes before it.  Only
    upper-bit-ignoring uses are transparent.
    """
    names: list[str] = []
    for index, src in enumerate(instr.srcs):
        if src.type is not ScalarType.I32 or src.name not in tracked:
            continue
        kind = classify_use(instr, index, traits)
        if kind in (UseKind.REQUIRES, UseKind.ARRAY_INDEX,
                    UseKind.PROPAGATES):
            if src.name not in names:
                names.append(src.name)
    return names


def _operand_named(instr: Instr, name: str):
    for src in instr.srcs:
        if src.name == name:
            return src
    raise ValueError(f"{name} not an operand of {instr}")


def _find_reg(func: Function, name: str):
    for param in func.params:
        if param.name == name:
            return param
    for _, instr in func.instructions():
        if instr.dest is not None and instr.dest.name == name:
            return instr.dest
        for src in instr.srcs:
            if src.name == name:
                return src
    raise ValueError(f"unknown register {name}")