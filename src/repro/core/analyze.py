"""Phase (3)-3: ``EliminateOneExtend`` over UD/DU chains (Sections 2.3
and 3).

A sign extension can be eliminated if

* (USE side) the upper bits of its destination do not affect the correct
  execution of any transitive use — walked over DU chains with Case 1
  (the use ignores the bits), Case 2 (the use's result's low bits depend
  only on the operand's low bits, so recurse into the result's uses),
  and the array-index case handled by ``AnalyzeARRAY``; or
* (DEF side) every definition reaching its source already produces a
  suitably canonical value — walked over UD chains with Case 1 (known
  canonical definitions) and Case 2 (copies and bitwise operations
  propagate canonicality).

``AnalyzeARRAY`` implements Theorems 1-4: the language forbids negative
array indices and bounds checks are 32-bit compares, so an index
expression built from +/-/copies of suitably-ranged, canonical values
needs no explicit extension for the effective address.  The analysis
must reason about the index *as it will be after the extension is
removed*, so definitions that are the candidate extension itself are
bypassed (its raw source definitions are consulted instead).

Traversal flags (the paper's USE/DEF/ARRAY flags) are per-candidate.
USE flags break cycles optimistically (a revisited use contributes no
new requirement — plain reachability).  DEF flags are optimistic too,
which is sound because Case-2 recursion only passes through copies and
bitwise operations, which preserve canonicality.  ARRAY theorem cycles
resolve *pessimistically*, because canonicality is not invariant through
wrap-around +/-: the ``just_extended`` dummy markers after array
accesses are what make loop-carried index reasoning succeed, exactly as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.ud_du import Chains
from ..analysis.value_range import Interval, ValueRanges
from ..ir.instruction import Instr
from ..ir.opcodes import EXTEND_BITS, Opcode
from ..ir.semantics import (
    ARRAY_TRANSPARENT_OPS,
    UseKind,
    canonical_bits,
    classify_use,
    propagates_canonical,
    upper32_zero,
    use_read_bits,
)
from ..ir.types import INT32_MAX, ScalarType
from ..machine.model import MachineTraits
from ..telemetry import (
    CAUSE_ARRAY,
    CAUSE_DEF,
    CAUSE_REQUIRED,
    CAUSE_USE,
    DecisionRecord,
    Telemetry,
    VERDICT_ELIMINATED,
    VERDICT_KEPT,
)
from .config import SignExtConfig


#: Arithmetic covered by the no-overflow canonicality rule.
_RANGE_CANONICAL_OPS = frozenset(
    {Opcode.ADD32, Opcode.SUB32, Opcode.MUL32, Opcode.NEG32}
)


@dataclass
class EliminationStats:
    candidates: int = 0
    eliminated: int = 0
    eliminated_by_width: dict[int, int] = None

    def __post_init__(self) -> None:
        if self.eliminated_by_width is None:
            self.eliminated_by_width = {8: 0, 16: 0, 32: 0}


class Eliminator:
    """Analyzes and eliminates sign extensions one at a time."""

    def __init__(self, func, chains: Chains, config: SignExtConfig,
                 telemetry: Telemetry | None = None) -> None:
        self.func = func
        self.chains = chains
        self.config = config
        self.traits: MachineTraits = config.traits
        self.ranges = ValueRanges(chains, config.traits,
                                  config.max_array_length)
        # Per-candidate traversal flags.
        self._use_flags: set[tuple[int, int]] = set()
        self._canon_memo: dict[tuple[int, int], bool] = {}
        self._canon_in_progress: set[tuple[int, int]] = set()
        self._zero_flags: set[int] = set()
        self._array_flags: set[int] = set()
        # Optional decision recording.  ``_trail`` is non-None only
        # while a candidate is being analyzed with telemetry attached;
        # every recording site is guarded on it, so the disabled path
        # costs one ``is not None`` test at most.
        self.telemetry = telemetry
        self._trail: list[str] | None = None
        self._trail_theorems: list[int] | None = None
        self._trail_dummy = False
        self._block_of: dict[int, str] = {}
        if telemetry is not None:
            for block in func.blocks:
                for instr in block.instrs:
                    self._block_of[instr.uid] = block.label

    # -- the paper's EliminateOneExtend -------------------------------------

    def try_eliminate(self, ext: Instr) -> bool:
        """Analyze one extension; remove it (and splice chains) if legal."""
        self._use_flags = set()
        self._canon_memo = {}
        self._canon_in_progress = set()
        self._zero_flags = set()
        self._array_flags = set()
        width = EXTEND_BITS[ext.opcode]
        recording = self.telemetry is not None
        if recording:
            self._trail = []
            self._trail_theorems = []
            self._trail_dummy = False

        required = False
        for use in self.chains.uses_of(ext):
            if self.analyze_use(ext, use.instr, use.index, width,
                                analyze_array=self.config.array):
                required = True
                break

        use_side_ok = not required
        if required:
            required = False
            for definition in self.chains.defs_for(ext, 0):
                if self.analyze_def(definition, width):
                    required = True
                    break
            if not required and self._trail is not None:
                self._trail.append(
                    "AnalyzeDEF: every definition reaching the source is "
                    "already canonical"
                )

        if recording:
            self._record_decision(ext, width, removed=not required,
                                  use_side_ok=use_side_ok)
            self._trail = None
            self._trail_theorems = None

        if required:
            return False
        self.chains.bypass_and_remove(ext)
        return True

    # -- decision recording (telemetry only) --------------------------------

    def _note(self, reason: str) -> None:
        if self._trail is not None:
            self._trail.append(reason)

    def _theorem_hit(self, theorem: int) -> None:
        if self._trail_theorems is not None:
            self._trail_theorems.append(theorem)

    def _record_decision(self, ext: Instr, width: int, *, removed: bool,
                         use_side_ok: bool) -> None:
        theorems = sorted(set(self._trail_theorems or ()))
        if removed:
            verdict = VERDICT_ELIMINATED
            if use_side_ok:
                cause = CAUSE_ARRAY if theorems else CAUSE_USE
            else:
                cause = CAUSE_DEF
        else:
            verdict = VERDICT_KEPT
            cause = CAUSE_REQUIRED
        self.telemetry.decisions.add(DecisionRecord(
            function=self.func.name,
            block=self._block_of.get(ext.uid, "?"),
            instr_uid=ext.uid,
            instr=str(ext),
            width=width,
            verdict=verdict,
            cause=cause,
            reasons=list(self._trail or ()),
            theorems=theorems,
        ))
        metrics = self.telemetry.metrics
        metrics.counter("signext.decisions", verdict=verdict).inc()
        if removed:
            metrics.counter("signext.eliminated_by_cause", cause=cause).inc()
            if self._trail_dummy:
                metrics.counter("signext.dummy_marker_assists").inc()
        for theorem in theorems:
            metrics.counter("signext.theorem_hits", theorem=theorem).inc()

    # -- AnalyzeUSE -------------------------------------------------------------

    def analyze_use(self, ext: Instr, instr: Instr, index: int, width: int,
                    analyze_array: bool) -> bool:
        """True when the use (transitively) requires the extension."""
        flag = (instr.uid, index)
        if flag in self._use_flags:
            return False
        self._use_flags.add(flag)

        kind = classify_use(instr, index, self.traits)
        if kind is UseKind.IRRELEVANT:
            return False
        if kind is UseKind.IGNORES_HIGH:
            # Case 1 — but a narrower extension is still needed by a use
            # that reads bits at or above its width.
            if use_read_bits(instr, index) > width:
                if self._trail is not None:
                    self._trail.append(
                        f"AnalyzeUSE: use #{instr.uid} ({instr}) reads "
                        f"bits above width {width}"
                    )
                return True
            return False
        if kind is UseKind.ARRAY_INDEX:
            if width < 32:
                if self._trail is not None:
                    self._trail.append(
                        f"AnalyzeUSE: array index at #{instr.uid} feeds a "
                        f"32-bit bounds check; {width}-bit extension required"
                    )
                return True  # bits below 32 feed the bounds check
            if analyze_array:
                result = self.analyze_array(ext, instr, index)
                if self._trail is not None:
                    self._trail.append(
                        f"AnalyzeARRAY: subscript at #{instr.uid} ({instr}) "
                        + ("requires the extension" if result
                           else "is safe without the extension")
                    )
                return result
            if self._trail is not None:
                self._trail.append(
                    f"AnalyzeUSE: array index at #{instr.uid} with array "
                    "analysis disabled; extension required"
                )
            return True
        if kind is UseKind.PROPAGATES:
            # Refinement of Case 1 (the paper's Figure 3, statement (6)):
            # AND with a non-negative constant mask reads only the mask's
            # bits, so the extension is unneeded when the mask fits below
            # the extension width — regardless of downstream uses.
            if instr.opcode is Opcode.AND32:
                other = self.ranges.const_of_use(instr, 1 - index)
                if (isinstance(other, int) and 0 <= other <= INT32_MAX
                        and other.bit_length() <= width):
                    return False
            # Case 2 — the operand's upper bits matter only if the
            # destination's do.
            if instr.opcode not in ARRAY_TRANSPARENT_OPS:
                analyze_array = False
            for use in self.chains.uses_of(instr):
                if self.analyze_use(ext, use.instr, use.index, width,
                                    analyze_array):
                    return True
            return False
        if self._trail is not None:
            self._trail.append(
                f"AnalyzeUSE: use #{instr.uid} ({instr}) requires a "
                "canonical full-width value"
            )
        return True  # REQUIRES

    # -- AnalyzeDEF -------------------------------------------------------------

    def analyze_def(self, definition, width: int) -> bool:
        """True when the definition fails to guarantee canonicality.

        Cycles through Case-2 operations resolve optimistically, which
        is sound because copies and bitwise operations preserve
        canonicality (so the induction is valid as long as every entry
        into the cycle is canonical).  Results are memoized so repeated
        queries within one candidate stay consistent.
        """
        if definition.is_param:
            if definition.reg.type is ScalarType.I32:
                required = not (self.traits.abi_canonical_args
                                and width >= 32)
                if required and self._trail is not None:
                    self._trail.append(
                        f"AnalyzeDEF: parameter %{definition.reg.name} is "
                        "not ABI-canonical at this width"
                    )
                return required
            if self._trail is not None:
                self._trail.append(
                    f"AnalyzeDEF: parameter %{definition.reg.name} has a "
                    "non-i32 type; canonicality unknown"
                )
            return True
        instr = definition.instr
        key = (instr.uid, width)
        cached = self._canon_memo.get(key)
        if cached is not None:
            return cached
        if key in self._canon_in_progress:
            return False  # optimistic on Case-2 cycles
        self._canon_in_progress.add(key)
        try:
            result = self._analyze_def_uncached(instr, width)
        finally:
            self._canon_in_progress.discard(key)
        self._canon_memo[key] = result
        return result

    def _analyze_def_uncached(self, instr: Instr, width: int) -> bool:
        if self.config.debug_skip_def_check:
            # Fault injection (see SignExtConfig.debug_skip_def_check):
            # pretend every definition already produces a canonical
            # value.  The fuzz campaign's oracle must catch the
            # resulting miscompiles.
            return False
        guaranteed = canonical_bits(instr, self.traits,
                                    self.ranges.const_of_use)
        if guaranteed is not None and guaranteed <= width:
            if (self._trail is not None
                    and instr.opcode is Opcode.JUST_EXTENDED):
                self._trail_dummy = True
                self._trail.append(
                    f"AnalyzeDEF: dummy marker #{instr.uid} guarantees the "
                    "bounds-checked index is canonical"
                )
            return False  # Case 1
        if instr.opcode is Opcode.AND32 and width >= 32 \
                and self._and_operand_positive(instr):
            return False  # Case 1, range-refined
        if width >= 32 and instr.opcode in _RANGE_CANONICAL_OPS \
                and self._canonical_via_range(instr):
            return False  # no-overflow arithmetic on canonical inputs
        if propagates_canonical(instr.opcode):
            # Case 2 — canonical iff every narrow source is canonical.
            for index, src in enumerate(instr.srcs):
                if not src.type.is_narrow_int:
                    continue
                for up_def in self.chains.defs_for(instr, index):
                    if self.analyze_def(up_def, width):
                        return True
            return False
        if self._trail is not None:
            self._trail.append(
                f"AnalyzeDEF: definition #{instr.uid} ({instr}) does not "
                f"guarantee canonical bits <= {width}"
            )
        return True

    def _canonical_via_range(self, instr: Instr) -> bool:
        """No-overflow rule: +/-/*/neg of canonical operands whose result
        interval provably fits in 32 bits computes the true value
        full-width, so the destination register is canonical.

        Combined with the guarded-induction-variable ranges in
        :mod:`repro.analysis.value_range`, this is what proves loop
        counters (and products like ``k * 64 + m``) canonical — the
        role the paper delegates to its cited range analyses.  The
        optimistic cycle resolution in :meth:`analyze_def` is sound
        here because each node on the cycle re-checks its own
        no-overflow interval: if every entry value is canonical and no
        step can wrap, canonicality is preserved inductively.
        """
        definition = self.chains.definition_of(instr)
        if definition is None:
            return False
        interval = self.ranges.range_of_def(definition)
        if interval.is_top:
            return False
        for index, src in enumerate(instr.srcs):
            if not src.type.is_narrow_int:
                continue
            for up_def in self.chains.defs_for(instr, index):
                if self.analyze_def(up_def, 32):
                    return False
        return True

    def _and_operand_positive(self, instr: Instr) -> bool:
        """The paper's AND example: if either operand register is known
        zero in its upper 32 bits with a non-negative 32-bit value, the
        bitwise AND result is canonical (indeed upper-zero)."""
        for index in (0, 1):
            interval = self.ranges.range_of_use(instr, index)
            if interval.lo >= 0 and interval.hi <= INT32_MAX \
                    and self._operand_upper_zero(instr, index):
                return True
        return False

    # -- upper-32-zero reasoning (Theorems 1 and 3) -------------------------------

    def _operand_upper_zero(self, instr: Instr, index: int,
                            bypass: Instr | None = None) -> bool:
        defs = self.chains.defs_for(instr, index)
        if not defs:
            return False
        return all(self._def_upper_zero(d, bypass) for d in defs)

    def _def_upper_zero(self, definition, bypass: Instr | None) -> bool:
        if definition.is_param:
            return False
        instr = definition.instr
        if bypass is not None and instr is bypass:
            # The candidate extension is about to be removed: consult its
            # raw source definitions instead.
            return self._operand_upper_zero(instr, 0, None)
        if instr.uid in self._zero_flags:
            return False  # pessimistic on cycles
        self._zero_flags.add(instr.uid)
        try:
            if upper32_zero(instr, self.traits, self.ranges.const_of_use):
                return True
            if instr.opcode is Opcode.MOV:
                return self._operand_upper_zero(instr, 0, bypass)
            if instr.opcode is Opcode.AND32:
                return any(
                    self._operand_upper_zero(instr, i, bypass) for i in (0, 1)
                )
            if instr.opcode in (Opcode.OR32, Opcode.XOR32):
                return all(
                    self._operand_upper_zero(instr, i, bypass) for i in (0, 1)
                )
            if instr.is_extend:
                # A canonical value with a known non-negative range has
                # zero upper bits.
                interval = self.ranges.range_of_use(instr, 0)
                return interval.lo >= 0 and interval.hi <= INT32_MAX
            if instr.opcode in _RANGE_CANONICAL_OPS:
                # No-overflow arithmetic on canonical inputs holds the
                # true value; if that value is non-negative the upper
                # 32 bits are zero (Theorem 1's hypothesis).
                definition = self.chains.definition_of(instr)
                if definition is not None:
                    interval = self.ranges.range_of_def(definition)
                    if (not interval.is_top and interval.lo >= 0
                            and self._canonical_via_range(instr)):
                        return True
            return False
        finally:
            self._zero_flags.discard(instr.uid)

    # -- AnalyzeARRAY (Theorems 1-4) ---------------------------------------------

    def analyze_array(self, ext: Instr, array_instr: Instr,
                      index: int) -> bool:
        """True when the array access still requires the extension.

        Checks that every definition of the index operand that is
        affected by removing ``ext`` satisfies one of the theorems.
        """
        tainted = {uid for uid, _ in self._use_flags}
        tainted.add(ext.uid)
        for definition in self.chains.defs_for(array_instr, index):
            if definition.is_param:
                continue  # untainted path: unaffected by the removal
            instr = definition.instr
            if instr.uid not in tainted and instr is not ext:
                continue
            if not self._theorem_def_ok(instr, ext):
                return True
        return False

    def _theorem_def_ok(self, instr: Instr, ext: Instr) -> bool:
        if instr.uid in self._array_flags:
            return False  # pessimistic: rely on dummy markers, not cycles
        self._array_flags.add(instr.uid)
        try:
            if instr is ext:
                # Direct case a[i] where i's definition is the candidate:
                # the raw source definitions must each be safe.
                for definition in self.chains.defs_for(ext, 0):
                    if not self._theorem_value_ok(definition, ext):
                        return False
                return True
            return self._theorem_value_instr_ok(instr, ext)
        finally:
            self._array_flags.discard(instr.uid)

    def _theorem_value_ok(self, definition, ext: Instr) -> bool:
        """Is one reaching definition safe as an array index source?"""
        if definition.is_param:
            # Canonical by ABI: canonical + LS(e) implies a correct
            # effective address (generalized Theorem 1).
            return (self.traits.abi_canonical_args
                    and definition.reg.type is ScalarType.I32)
        return self._theorem_value_instr_ok(definition.instr, ext)

    def _theorem_value_instr_ok(self, instr: Instr, ext: Instr) -> bool:
        theorems = self.config.theorems
        # Canonical value + LS: a canonical index that passes the 32-bit
        # bounds check is non-negative, hence zero-extended (Theorem 1's
        # generalization); upper-32-zero + LS is Theorem 1 itself.
        if 1 in theorems and self._def_canonical_quick(instr, ext):
            self._theorem_hit(1)
            return True
        if 1 in theorems and self._def_upper_zero_wrapper(instr, ext):
            self._theorem_hit(1)
            return True
        if instr.opcode is Opcode.MOV:
            return self._theorem_operand_ok(instr, 0, ext)
        if instr.opcode is Opcode.ADD32 and (theorems & {2, 4}):
            return self._theorem_add_ok(instr, ext)
        if instr.opcode is Opcode.SUB32 and (theorems & {2, 3, 4}):
            return self._theorem_sub_ok(instr, ext)
        return False

    def _theorem_operand_ok(self, instr: Instr, index: int, ext: Instr) -> bool:
        for definition in self.chains.defs_for(instr, index):
            if definition.instr is ext:
                for up_def in self.chains.defs_for(ext, 0):
                    if not self._theorem_value_ok(up_def, ext):
                        return False
                continue
            if not self._theorem_value_ok(definition, ext):
                return False
        return True

    def _theorem_bound(self) -> int:
        """Lower bound on the non-negative-ish operand: Theorem 2 needs
        0; Theorem 4 relaxes it to (maxlen-1) - 0x7fffffff."""
        if 4 in self.config.theorems:
            return (self.config.max_array_length - 1) - INT32_MAX
        return 0

    def _theorem_add_ok(self, instr: Instr, ext: Instr) -> bool:
        """Theorems 2 and 4 for ``i + j``."""
        if not (self._operand_canonical(instr, 0, ext)
                and self._operand_canonical(instr, 1, ext)):
            return False
        bound = self._theorem_bound()
        for index in (0, 1):
            interval = self.ranges.range_of_use(instr, index)
            if interval.lo >= bound and interval.hi <= INT32_MAX:
                self._theorem_hit(
                    2 if interval.lo >= 0 and 2 in self.config.theorems
                    else 4
                )
                return True
        return False

    def _theorem_sub_ok(self, instr: Instr, ext: Instr) -> bool:
        """Theorem 3 for ``i - j``, plus Theorems 2/4 with ``-j``."""
        theorems = self.config.theorems
        j_range = self.ranges.range_of_use(instr, 1)
        # Theorem 3: upper 32 bits of i are zero, 0 <= j <= INT32_MAX.
        if (3 in theorems
                and self._operand_upper_zero(instr, 0, bypass=ext)
                and j_range.lo >= 0 and j_range.hi <= INT32_MAX):
            self._theorem_hit(3)
            return True
        # Theorems 2/4 with j := -j (the paper's closing remark).
        if not theorems & {2, 4}:
            return False
        if not (self._operand_canonical(instr, 0, ext)
                and self._operand_canonical(instr, 1, ext)):
            return False
        bound = self._theorem_bound()
        i_range = self.ranges.range_of_use(instr, 0)
        if i_range.lo >= bound and i_range.hi <= INT32_MAX:
            self._theorem_hit(
                2 if i_range.lo >= 0 and 2 in theorems else 4
            )
            return True
        if j_range.lo > -(INT32_MAX + 1):  # -j must not overflow
            negated = Interval(-j_range.hi, -j_range.lo)
            if negated.lo >= bound and negated.hi <= INT32_MAX:
                self._theorem_hit(
                    2 if negated.lo >= 0 and 2 in theorems else 4
                )
                return True
        return False

    # -- canonicality helpers for the theorems --------------------------------------

    def _operand_canonical(self, instr: Instr, index: int, ext: Instr) -> bool:
        defs = self.chains.defs_for(instr, index)
        if not defs:
            return False
        for definition in defs:
            if definition.instr is ext:
                # Bypass the candidate: its source must be canonical.
                for up_def in self.chains.defs_for(ext, 0):
                    if self.analyze_def(up_def, 32):
                        return False
                continue
            if self.analyze_def(definition, 32):
                return False
        return True

    def _def_canonical_quick(self, instr: Instr, ext: Instr) -> bool:
        if instr is ext:
            return False
        definition = self.chains.definition_of(instr)
        if definition is None:
            return False
        return not self.analyze_def(definition, 32)

    def _def_upper_zero_wrapper(self, instr: Instr, ext: Instr) -> bool:
        definition = self.chains.definition_of(instr)
        if definition is None:
            return False
        return self._def_upper_zero(definition, bypass=ext)
