"""Engine benchmark: reference interpreter vs. closure engine.

Times the *execution phase* of one workload's full variant grid — the
gold ideal-mode run plus every compiled (variant, machine) cell — under
both engines and writes the comparison to a JSON document
(``BENCH_interp.json`` in CI).  Compilation is done once up front and
excluded from the timings; translation time for the closure engine is
reported separately (it is paid once per program content and then
served from the shared :class:`TranslationCache`).

Methodology:

* every timing is the minimum over ``--repeat`` runs (least-noise
  estimator for a deterministic workload);
* each timed run constructs a fresh interpreter and calls ``run()``;
  for the closure engine the translation cache is pre-warmed, so
  construction cost is slot binding only — the steady state of the
  harness, which shares one cache process-wide;
* both engines execute identical programs with identical fuel and
  machine traits, and every cell's ``ExecResult`` is asserted equal
  across engines before its timing is recorded.

Run as::

    python -m repro.interp.benchmark --out BENCH_interp.json --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from ..core import VARIANTS, compile_ir
from ..machine.model import IA64, PPC64
from ..workloads import get_workload
from .engine import create_interpreter
from .profiler import collect_branch_profiles
from .translate import TranslationCache

_MACHINES = {"ia64": IA64, "ppc64": PPC64}


def _time_run(program, engine, repeat, *, cache, **kwargs):
    """(per-repeat seconds, ExecResult) for ``repeat`` fresh runs."""
    times = []
    result = None
    for _ in range(repeat):
        interp = create_interpreter(program, engine=engine,
                                    translation_cache=cache, **kwargs)
        start = time.perf_counter()
        result = interp.run()
        times.append(time.perf_counter() - start)
    return times, result


def _record_cell(recorder, *, workload, variant, engine, machine, fuel,
                 times, result, config=None, extra_phases=None):
    """Emit one perf record per repeat through the ``perf.recorder``
    hook (min-of-repeats is applied later, by the compare engine)."""
    if recorder is None:
        return
    from ..driver.fingerprint import fingerprint_config

    fingerprint = fingerprint_config(config) if config is not None else ""
    for index, seconds in enumerate(times):
        phases = {"execute": seconds}
        if extra_phases and index == 0:
            phases.update(extra_phases)
        recorder.record_cell(
            workload=workload,
            variant=variant,
            engine=engine,
            machine=machine,
            fuel=fuel,
            repeat=index,
            phases=phases,
            measures={
                "dyn_extend32": result.extend_counts.get(32, 0),
                "dyn_extend16": result.extend_counts.get(16, 0),
                "dyn_extend8": result.extend_counts.get(8, 0),
                "steps": result.steps,
            },
            config_fingerprint=fingerprint,
        )


def run_benchmark(workload_name: str = "huffman", *,
                  machine: str = "ia64",
                  fuel: int = 100_000_000,
                  repeat: int = 3,
                  recorder=None) -> dict:
    """Benchmark both engines over one workload's variant grid.

    ``recorder`` (a :class:`repro.perf.PerfRecorder`) lands every
    timed cell in the perf history — one record per repeat, plus the
    cold translation time as a ``translate`` phase on the closure
    engine's gold cell.
    """
    traits = _MACHINES[machine]
    workload = get_workload(workload_name)
    program = workload.program()
    profiles = collect_branch_profiles(program, fuel=fuel)

    compiled = {
        name: compile_ir(program, config.with_traits(traits), profiles)
        for name, config in VARIANTS.items()
    }

    cache = TranslationCache()
    # Pre-warm: translate every program once so the timed closure runs
    # measure steady-state execution, as the harness sees it.
    translate_start = time.perf_counter()
    create_interpreter(program, engine="closure", translation_cache=cache,
                       mode="ideal", fuel=fuel)
    for cell in compiled.values():
        create_interpreter(cell.program, engine="closure",
                           translation_cache=cache, traits=traits, fuel=fuel)
    translate_seconds = time.perf_counter() - translate_start

    engines: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for engine in ("reference", "closure"):
        gold_times, gold = _time_run(program, engine, repeat, cache=cache,
                                     mode="ideal", fuel=fuel)
        _record_cell(recorder, workload=workload_name, variant="gold",
                     engine=engine, machine=machine, fuel=fuel,
                     times=gold_times, result=gold,
                     extra_phases=({"translate": translate_seconds}
                                   if engine == "closure" else None))
        cells = {}
        cell_results = {}
        for name, cell in compiled.items():
            times, result = _time_run(cell.program, engine, repeat,
                                      cache=cache, traits=traits,
                                      fuel=fuel)
            _record_cell(recorder, workload=workload_name, variant=name,
                         engine=engine, machine=machine, fuel=fuel,
                         times=times, result=result,
                         config=VARIANTS[name].with_traits(traits))
            cells[name] = min(times)
            cell_results[name] = result
        engines[engine] = {
            "gold_seconds": min(gold_times),
            "cell_seconds": cells,
            "total_seconds": min(gold_times) + sum(cells.values()),
        }
        results[engine] = {"gold": gold, **cell_results}

    for key, reference_result in results["reference"].items():
        closure_result = results["closure"][key]
        assert closure_result == reference_result, (
            f"engine parity violated in cell {key!r}"
        )

    reference_total = engines["reference"]["total_seconds"]
    closure_total = engines["closure"]["total_seconds"]
    return {
        "benchmark": "interpreter-engine-comparison",
        "workload": workload_name,
        "machine": machine,
        "variants": len(compiled),
        "fuel": fuel,
        "repeat": repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "steps": {key: result.steps
                  for key, result in results["reference"].items()},
        "engines": engines,
        "translate_seconds_cold": translate_seconds,
        "speedup": reference_total / closure_total,
        "parity": "all cells bit-identical across engines",
        "methodology": [
            "execution phase only: compilation excluded, one gold "
            "ideal-mode run plus every compiled machine-mode variant "
            "cell",
            f"each timing is the minimum of {repeat} fresh "
            "interpreter runs (min-of-repeats)",
            "closure-engine translation pre-warmed through the shared "
            "TranslationCache and reported separately as "
            "translate_seconds_cold",
            "ExecResult equality asserted across engines for every "
            "timed cell before recording",
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.interp.benchmark",
        description="Compare the reference interpreter and closure engine.",
    )
    parser.add_argument("--workload", default="huffman")
    parser.add_argument("--machine", default="ia64",
                        choices=sorted(_MACHINES))
    parser.add_argument("--fuel", type=int, default=100_000_000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="write the JSON document here (default stdout)")
    parser.add_argument("--perf-dir", default=None, metavar="DIR",
                        help="also append every timed cell to the perf "
                             "history at DIR (default: $REPRO_PERF_DIR "
                             "if set)")
    args = parser.parse_args(argv)

    from ..perf import PerfRecorder, recorder_from_env

    if args.perf_dir:
        recorder = PerfRecorder(args.perf_dir, source="engine-bench")
    else:
        recorder = recorder_from_env("engine-bench")
    document = run_benchmark(args.workload, machine=args.machine,
                             fuel=args.fuel, repeat=args.repeat,
                             recorder=recorder)
    if recorder is not None:
        print(f"[{recorder.recorded} perf records appended to "
              f"{recorder.store.path}]")
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        reference = document["engines"]["reference"]["total_seconds"]
        closure = document["engines"]["closure"]["total_seconds"]
        print(f"{args.workload}/{args.machine}: reference "
              f"{reference:.3f}s, closure {closure:.3f}s, "
              f"speedup {document['speedup']:.2f}x -> {args.out}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
