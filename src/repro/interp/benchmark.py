"""Engine benchmark: reference vs. closure vs. codegen.

Times the *execution phase* of one workload's full variant grid — the
gold ideal-mode run plus every compiled (variant, machine) cell — under
all three engines and writes the comparison to a JSON document
(``BENCH_interp.json`` in CI).  Compilation is done once up front and
excluded from the timings; translation time for the closure engine and
code-generation time for the codegen engine are reported separately
(each is paid once per program content and then served from its shared
cache — :class:`TranslationCache` / :class:`CodegenCache`).

Methodology:

* every timing is the minimum over ``--repeat`` runs (least-noise
  estimator for a deterministic workload);
* each timed run constructs a fresh interpreter and calls ``run()``;
  for the translated engines the translation and codegen caches are
  pre-warmed, so construction cost is slot binding only — the steady
  state of the harness, which shares both caches process-wide;
* all engines execute identical programs with identical fuel and
  machine traits, and every cell's ``ExecResult`` is asserted equal
  across all three engines before its timing is recorded.

Run as::

    python -m repro.interp.benchmark --out BENCH_interp.json --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from ..core import VARIANTS, compile_ir
from ..machine.model import IA64, PPC64
from ..workloads import get_workload
from .codegen import CodegenCache
from .engine import create_interpreter
from .profiler import collect_branch_profiles
from .translate import TranslationCache

_MACHINES = {"ia64": IA64, "ppc64": PPC64}

#: Engines measured, in reporting order.  ``reference`` first: it is
#: the baseline every speedup is computed against.
_BENCH_ENGINES = ("reference", "closure", "codegen")


def _time_run(program, engine, repeat, *, cache, codegen_cache, **kwargs):
    """(per-repeat seconds, ExecResult) for ``repeat`` fresh runs."""
    times = []
    result = None
    for _ in range(repeat):
        interp = create_interpreter(program, engine=engine,
                                    translation_cache=cache,
                                    codegen_cache=codegen_cache, **kwargs)
        start = time.perf_counter()
        result = interp.run()
        times.append(time.perf_counter() - start)
    return times, result


def _record_cell(recorder, *, workload, variant, engine, machine, fuel,
                 times, result, config=None, extra_phases=None):
    """Emit one perf record per repeat through the ``perf.recorder``
    hook (min-of-repeats is applied later, by the compare engine)."""
    if recorder is None:
        return
    from ..driver.fingerprint import fingerprint_config

    fingerprint = fingerprint_config(config) if config is not None else ""
    for index, seconds in enumerate(times):
        phases = {"execute": seconds}
        if extra_phases and index == 0:
            phases.update(extra_phases)
        recorder.record_cell(
            workload=workload,
            variant=variant,
            engine=engine,
            machine=machine,
            fuel=fuel,
            repeat=index,
            phases=phases,
            measures={
                "dyn_extend32": result.extend_counts.get(32, 0),
                "dyn_extend16": result.extend_counts.get(16, 0),
                "dyn_extend8": result.extend_counts.get(8, 0),
                "steps": result.steps,
            },
            config_fingerprint=fingerprint,
        )


def run_benchmark(workload_name: str = "huffman", *,
                  machine: str = "ia64",
                  fuel: int = 100_000_000,
                  repeat: int = 3,
                  recorder=None) -> dict:
    """Benchmark all three engines over one workload's variant grid.

    ``recorder`` (a :class:`repro.perf.PerfRecorder`) lands every
    timed cell in the perf history — one record per repeat, plus the
    cold translation/codegen time as a ``translate`` phase on each
    translated engine's gold cell.
    """
    traits = _MACHINES[machine]
    workload = get_workload(workload_name)
    program = workload.program()
    profiles = collect_branch_profiles(program, fuel=fuel)

    compiled = {
        name: compile_ir(program, config.with_traits(traits), profiles)
        for name, config in VARIANTS.items()
    }

    cache = TranslationCache()
    codegen_cache = CodegenCache()
    # Pre-warm: translate every program once so the timed closure runs
    # measure steady-state execution, as the harness sees it.
    translate_start = time.perf_counter()
    create_interpreter(program, engine="closure", translation_cache=cache,
                       mode="ideal", fuel=fuel)
    for cell in compiled.values():
        create_interpreter(cell.program, engine="closure",
                           translation_cache=cache, traits=traits, fuel=fuel)
    translate_seconds = time.perf_counter() - translate_start
    # Same for the codegen tier (reuses the warm translation cache, so
    # this isolates emission + compile() cost).
    codegen_start = time.perf_counter()
    create_interpreter(program, engine="codegen", translation_cache=cache,
                       codegen_cache=codegen_cache, mode="ideal", fuel=fuel)
    for cell in compiled.values():
        create_interpreter(cell.program, engine="codegen",
                           translation_cache=cache,
                           codegen_cache=codegen_cache, traits=traits,
                           fuel=fuel)
    codegen_seconds = time.perf_counter() - codegen_start

    cold_phase = {
        "closure": {"translate": translate_seconds},
        "codegen": {"translate": codegen_seconds},
    }
    engines: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for engine in _BENCH_ENGINES:
        gold_times, gold = _time_run(program, engine, repeat, cache=cache,
                                     codegen_cache=codegen_cache,
                                     mode="ideal", fuel=fuel)
        _record_cell(recorder, workload=workload_name, variant="gold",
                     engine=engine, machine=machine, fuel=fuel,
                     times=gold_times, result=gold,
                     extra_phases=cold_phase.get(engine))
        cells = {}
        cell_results = {}
        for name, cell in compiled.items():
            times, result = _time_run(cell.program, engine, repeat,
                                      cache=cache,
                                      codegen_cache=codegen_cache,
                                      traits=traits, fuel=fuel)
            _record_cell(recorder, workload=workload_name, variant=name,
                         engine=engine, machine=machine, fuel=fuel,
                         times=times, result=result,
                         config=VARIANTS[name].with_traits(traits))
            cells[name] = min(times)
            cell_results[name] = result
        engines[engine] = {
            "gold_seconds": min(gold_times),
            "cell_seconds": cells,
            "total_seconds": min(gold_times) + sum(cells.values()),
        }
        results[engine] = {"gold": gold, **cell_results}

    for key, reference_result in results["reference"].items():
        for engine in _BENCH_ENGINES[1:]:
            assert results[engine][key] == reference_result, (
                f"engine parity violated in cell {key!r} ({engine})"
            )

    reference_total = engines["reference"]["total_seconds"]
    closure_total = engines["closure"]["total_seconds"]
    codegen_total = engines["codegen"]["total_seconds"]
    return {
        "benchmark": "interpreter-engine-comparison",
        "workload": workload_name,
        "machine": machine,
        "variants": len(compiled),
        "fuel": fuel,
        "repeat": repeat,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "steps": {key: result.steps
                  for key, result in results["reference"].items()},
        "engines": engines,
        "translate_seconds_cold": translate_seconds,
        "codegen_seconds_cold": codegen_seconds,
        "speedup": reference_total / closure_total,
        "speedup_codegen": reference_total / codegen_total,
        "speedup_codegen_over_closure": closure_total / codegen_total,
        "parity": "all cells bit-identical across all three engines",
        "methodology": [
            "execution phase only: compilation excluded, one gold "
            "ideal-mode run plus every compiled machine-mode variant "
            "cell",
            f"each timing is the minimum of {repeat} fresh "
            "interpreter runs (min-of-repeats)",
            "closure translation and codegen emission pre-warmed "
            "through the shared caches and reported separately as "
            "translate_seconds_cold / codegen_seconds_cold",
            "ExecResult equality asserted across all three engines "
            "for every timed cell before recording",
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.interp.benchmark",
        description="Compare the reference, closure, and codegen engines.",
    )
    parser.add_argument("--workload", default="huffman")
    parser.add_argument("--machine", default="ia64",
                        choices=sorted(_MACHINES))
    parser.add_argument("--fuel", type=int, default=100_000_000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="write the JSON document here (default stdout)")
    parser.add_argument("--perf-dir", default=None, metavar="DIR",
                        help="also append every timed cell to the perf "
                             "history at DIR (default: $REPRO_PERF_DIR "
                             "if set)")
    args = parser.parse_args(argv)

    from ..perf import PerfRecorder, recorder_from_env

    if args.perf_dir:
        recorder = PerfRecorder(args.perf_dir, source="engine-bench")
    else:
        recorder = recorder_from_env("engine-bench")
    document = run_benchmark(args.workload, machine=args.machine,
                             fuel=args.fuel, repeat=args.repeat,
                             recorder=recorder)
    if recorder is not None:
        print(f"[{recorder.recorded} perf records appended to "
              f"{recorder.store.path}]")
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        reference = document["engines"]["reference"]["total_seconds"]
        closure = document["engines"]["closure"]["total_seconds"]
        codegen = document["engines"]["codegen"]["total_seconds"]
        print(f"{args.workload}/{args.machine}: reference "
              f"{reference:.3f}s, closure {closure:.3f}s, codegen "
              f"{codegen:.3f}s — closure {document['speedup']:.2f}x, "
              f"codegen {document['speedup_codegen']:.2f}x "
              f"({document['speedup_codegen_over_closure']:.2f}x over "
              f"closure) -> {args.out}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
