"""Execution engines: the reference interpreter and the closure engine.

Two interchangeable ways to run a program:

* ``reference`` — :class:`~repro.interp.interpreter.Interpreter`, the
  simple per-step dispatch loop.  It is the semantic oracle; it stays
  deliberately boring.
* ``closure`` — :class:`ClosureInterpreter`, which pre-translates each
  function once (see :mod:`repro.interp.translate`) and then runs
  zero-lookup closures over a flat register list.  Functions the
  translator rejects fall back to the reference loop *per function*;
  the two loops interleave freely across calls.

Both produce bit-identical :class:`ExecResult` values — same checksum,
return value, step count, site/opcode/extend counts, and branch
profiles — and raise the same ``SimError`` subtypes with the same
messages.  ``engine="both"`` in :func:`execute` runs the two engines
and raises :class:`EngineParityError` on any disagreement, which the
fuzz oracle uses as an internal-consistency check.

Known, documented divergences (both unobservable in practice):

* A read of a never-written register raises ``KeyError`` in the
  reference engine but yields 0 in the closure engine; the verifier
  rejects such programs before they reach an interpreter.
* On a *failed* run the closure engine's ``steps`` is only
  block-granular (counts are folded on success only); no failed run
  ever builds an ``ExecResult``, and the fuzz oracle never compares
  step counts.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from ..ir.function import Function, Program
from .interpreter import (
    ExecResult,
    Interpreter,
    stack_overflow_trap,
)
from .memory import FuelExhausted, SimError, Trap
from .translate import (
    TERM_CHECKED,
    TERM_NONE,
    TranslatedFunction,
    TranslationCache,
    default_translation_cache,
    uid_layout,
)

_U64 = 0xFFFF_FFFF_FFFF_FFFF

#: Engine used when nothing is specified anywhere in the stack.
DEFAULT_ENGINE = "closure"


@runtime_checkable
class ExecutionEngine(Protocol):
    """What the harness, oracle, and API require of an engine."""

    program: Program
    steps: int

    def run(self, func_name: str = "main",
            args: tuple[int | float, ...] = ()) -> ExecResult:
        ...


class EngineParityError(AssertionError):
    """The closure engine disagreed with the reference interpreter."""


class ClosureInterpreter(Interpreter):
    """Runs pre-translated threaded code; reference-identical results.

    Construction translates (or fetches from the shared
    :class:`TranslationCache`) every function in the program.  Each
    translated call frame is a flat list indexed by pre-resolved slots;
    each instruction is a closure with its behaviour burned in.  The
    reference implementations of ``run``/``_call`` remain reachable as
    the per-function fallback path.
    """

    def __init__(self, program: Program, *,
                 translation_cache: TranslationCache | None = None,
                 **kwargs) -> None:
        super().__init__(program, **kwargs)
        self.translation_cache = (
            translation_cache if translation_cache is not None
            else default_translation_cache()
        )
        self.translate_seconds = 0.0
        self.translated_functions = 0
        self.fallback_functions = 0
        self.fallback_calls = 0
        self.closures_executed = 0
        self.translate_cache_hits = 0
        self.translate_cache_misses = 0
        self._translated: dict[str, TranslatedFunction] = {}
        self._layouts: dict[str, dict[str, tuple[int, ...]]] = {}
        #: per-function block-entry counters, folded into the result
        self._entries: dict[str, list[int]] = {}
        #: per-function {(block idx, succ idx): count} when profiling
        self._edge_profiles: dict[str, dict[tuple[int, int], int]] = {}
        self._translate_all()

    # -- translation ----------------------------------------------------

    def _translate_all(self) -> None:
        cache = self.translation_cache
        start = time.perf_counter()
        hits0, misses0 = cache.hits, cache.misses
        for func in self.program.functions.values():
            translated = cache.get_or_translate(
                func, ideal=self.ideal, traits=self.traits,
                check_dummies=self.check_dummies,
            )
            if translated is None or not self._bind(func, translated):
                self.fallback_functions += 1
                continue
            self._translated[func.name] = translated
            self.translated_functions += 1
        self.translate_cache_hits = cache.hits - hits0
        self.translate_cache_misses = cache.misses - misses0
        self.translate_seconds = time.perf_counter() - start

    def _bind(self, func: Function, translated: TranslatedFunction) -> bool:
        """Attach this Function's uids to the (content-shared) translation.

        The layout must agree with the translation's static step counts
        block for block; a mismatch means the cached translation does
        not describe this object and the function falls back.
        """
        layout = uid_layout(func)
        for block in translated.blocks:
            uids = layout.get(block.label)
            if uids is None or len(uids) != block.n_counted:
                return False
        self._layouts[func.name] = layout
        return True

    # -- execution ------------------------------------------------------

    def run(self, func_name: str = "main",
            args: tuple[int | float, ...] = ()) -> ExecResult:
        func = self.program.function(func_name)
        ret = self._call(func, args)
        self._fold_counts()
        result = self._build_result(ret)
        if self.metrics is not None:
            self._flush_metrics(result)
            self._flush_engine_metrics()
        return result

    def _call(self, func: Function,
              args: tuple[int | float, ...]) -> int | float | None:
        translated = self._translated.get(func.name)
        if translated is None:
            self.fallback_calls += 1
            return super()._call(func, args)
        if len(args) != translated.n_params:
            raise Trap(
                f"arity mismatch calling {func.name}: got {len(args)} args"
            )
        depth = self.call_depth + 1
        if depth > self.max_call_depth:
            raise stack_overflow_trap(self.max_call_depth)
        regs: list[int | float] = [0] * translated.n_slots
        for (slot, is_float), value in zip(translated.param_plan, args):
            regs[slot] = float(value) if is_float else int(value) & _U64
        self.call_depth = depth
        try:
            if self.collect_profile:
                return self._run_frame_profiled(translated, regs)
            return self._run_frame(translated, regs)
        finally:
            self.call_depth = depth - 1

    def _run_frame(self, translated: TranslatedFunction,
                   regs: list[int | float]):
        blocks = translated.blocks
        entries = self._entries.get(translated.name)
        if entries is None:
            entries = self._entries[translated.name] = [0] * len(blocks)
        fuel = self.fuel
        functions = self.program.functions
        bidx = 0
        while True:
            block = blocks[bidx]
            entries[bidx] += 1
            for ops, n, call in block.segments:
                steps = self.steps + n
                if steps > fuel:
                    self._fuel_out(ops, regs)
                self.steps = steps
                for op in ops:
                    op(regs, self)
                if call is not None:
                    result = self._call(
                        functions[call.callee],
                        [regs[i] for i in call.arg_slots],
                    )
                    dest = call.dest_slot
                    if dest >= 0:
                        if result is None:
                            raise Trap(call.void_msg)
                        regs[dest] = result
            term_mode = block.term_mode
            if term_mode == TERM_NONE:
                raise Trap(
                    f"fell off block {block.label} in {translated.name}"
                )
            if term_mode == TERM_CHECKED:
                if self.steps >= fuel:
                    self._fuel_out((), regs)
                self.steps += 1
            nxt = block.terminator(regs, self)
            if type(nxt) is int:
                bidx = nxt
                continue
            return nxt[0]

    def _run_frame_profiled(self, translated: TranslatedFunction,
                            regs: list[int | float]):
        blocks = translated.blocks
        entries = self._entries.get(translated.name)
        if entries is None:
            entries = self._entries[translated.name] = [0] * len(blocks)
        profile = self._edge_profiles.setdefault(translated.name, {})
        fuel = self.fuel
        functions = self.program.functions
        bidx = 0
        while True:
            block = blocks[bidx]
            entries[bidx] += 1
            for ops, n, call in block.segments:
                steps = self.steps + n
                if steps > fuel:
                    self._fuel_out(ops, regs)
                self.steps = steps
                for op in ops:
                    op(regs, self)
                if call is not None:
                    result = self._call(
                        functions[call.callee],
                        [regs[i] for i in call.arg_slots],
                    )
                    dest = call.dest_slot
                    if dest >= 0:
                        if result is None:
                            raise Trap(call.void_msg)
                        regs[dest] = result
            term_mode = block.term_mode
            if term_mode == TERM_NONE:
                raise Trap(
                    f"fell off block {block.label} in {translated.name}"
                )
            if term_mode == TERM_CHECKED:
                if self.steps >= fuel:
                    self._fuel_out((), regs)
                self.steps += 1
            nxt = block.terminator(regs, self)
            if type(nxt) is int:
                key = (bidx, nxt)
                profile[key] = profile.get(key, 0) + 1
                bidx = nxt
                continue
            return nxt[0]

    def _fuel_out(self, ops, regs) -> None:
        """A segment pre-check tripped: replay the reference's tail.

        The reference executes instructions while ``steps <= fuel``, so
        exactly ``fuel - steps`` more run before the exhausting one —
        and any of them may trap first, which must win over fuel.
        """
        remaining = self.fuel - self.steps
        if remaining > 0:
            for op in ops[:remaining]:
                op(regs, self)
        self.steps = self.fuel + 1
        raise FuelExhausted(f"exceeded {self.fuel} steps")

    # -- result folding -------------------------------------------------

    def _fold_counts(self) -> None:
        """Expand block-entry counters into the reference's counters.

        Only called on success, where every entered block completed;
        the static per-block instruction mix times the entry count is
        then exactly the reference's per-instruction tally.
        """
        site_counts = self.site_counts
        opcode_counts = self.opcode_counts
        extend_counts = self.extend_counts
        expose_entries = self.collect_profile
        for name, entries in self._entries.items():
            translated = self._translated[name]
            layout = self._layouts[name]
            blocks = translated.blocks
            folded = (self.block_entries.setdefault(name, {})
                      if expose_entries else None)
            for bidx, count in enumerate(entries):
                if not count:
                    continue
                block = blocks[bidx]
                if folded is not None:
                    folded[block.label] = (
                        folded.get(block.label, 0) + count
                    )
                for uid in layout[block.label]:
                    site_counts[uid] = site_counts.get(uid, 0) + count
                for opcode, k in block.op_counts:
                    opcode_counts[opcode] = (
                        opcode_counts.get(opcode, 0) + k * count
                    )
                for width, k in block.ext_counts:
                    extend_counts[width] += k * count
                self.closures_executed += block.n_counted * count
        for name, edges in self._edge_profiles.items():
            blocks = self._translated[name].blocks
            profile = self.profiles.setdefault(name, {})
            for (src, dst), count in edges.items():
                key = (blocks[src].label, blocks[dst].label)
                profile[key] = profile.get(key, 0) + count
        self._entries = {}
        self._edge_profiles = {}

    def _flush_engine_metrics(self) -> None:
        metrics = self.metrics
        metrics.counter("runtime.engine.translated_functions").inc(
            self.translated_functions
        )
        if self.fallback_functions:
            metrics.counter("runtime.engine.fallback_functions").inc(
                self.fallback_functions
            )
        if self.fallback_calls:
            metrics.counter("runtime.engine.fallback_calls").inc(
                self.fallback_calls
            )
        metrics.counter("runtime.engine.closures_executed").inc(
            self.closures_executed
        )
        metrics.counter("runtime.engine.translate_cache_hits").inc(
            self.translate_cache_hits
        )
        metrics.counter("runtime.engine.translate_cache_misses").inc(
            self.translate_cache_misses
        )
        metrics.gauge("runtime.engine.translate_seconds").set(
            self.translate_seconds
        )


#: Engine name -> interpreter class.  ``"both"`` is not an engine but a
#: cross-check mode understood by :func:`execute` and the fuzz oracle.
ENGINES: dict[str, type[Interpreter]] = {
    "reference": Interpreter,
    "closure": ClosureInterpreter,
}

#: Every value accepted by ``--engine`` / ``CompileOptions.engine``.
ENGINE_CHOICES = ("closure", "reference", "both")


def create_interpreter(program: Program, *, engine: str = DEFAULT_ENGINE,
                       **kwargs) -> Interpreter:
    """Instantiate the named engine (``"reference"`` or ``"closure"``)."""
    cls = ENGINES.get(engine)
    if cls is None:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {sorted(ENGINES)})"
        )
    if cls is Interpreter:
        kwargs.pop("translation_cache", None)
    return cls(program, **kwargs)


def _outcome(interp: Interpreter, func_name: str, args):
    try:
        return ("ok", interp.run(func_name, args))
    except SimError as exc:
        return (type(exc).__name__, exc)


def execute(program: Program, func_name: str = "main",
            args: tuple[int | float, ...] = (), *,
            engine: str = DEFAULT_ENGINE, **kwargs) -> ExecResult:
    """Run ``program`` on the selected engine and return its result.

    ``engine="both"`` runs the closure engine and the reference
    interpreter back to back and raises :class:`EngineParityError`
    unless they produce the same outcome — identical ``ExecResult`` on
    success, identical exception type and message on failure.  The
    closure engine's result (or exception) is then propagated.
    """
    if engine != "both":
        return create_interpreter(program, engine=engine, **kwargs).run(
            func_name, args
        )

    closure_kind, closure_out = _outcome(
        create_interpreter(program, engine="closure", **kwargs),
        func_name, args,
    )
    ref_kwargs = dict(kwargs)
    ref_kwargs["metrics"] = None  # don't double-count one logical run
    reference_kind, reference_out = _outcome(
        create_interpreter(program, engine="reference", **ref_kwargs),
        func_name, args,
    )

    if closure_kind != reference_kind:
        raise EngineParityError(
            f"engines disagree on outcome for {func_name}: "
            f"closure={closure_kind}({closure_out}) "
            f"reference={reference_kind}({reference_out})"
        )
    if closure_kind == "ok":
        if closure_out != reference_out:
            raise EngineParityError(
                f"engines disagree on result for {func_name}: "
                f"closure={closure_out!r} reference={reference_out!r}"
            )
        return closure_out
    if str(closure_out) != str(reference_out):
        raise EngineParityError(
            f"engines disagree on {closure_kind} message for {func_name}: "
            f"closure={closure_out} reference={reference_out}"
        )
    raise closure_out
