"""Execution engines: reference, closure-threaded, and generated code.

Three interchangeable ways to run a program:

* ``reference`` — :class:`~repro.interp.interpreter.Interpreter`, the
  simple per-step dispatch loop.  It is the semantic oracle; it stays
  deliberately boring.
* ``closure`` — :class:`ClosureInterpreter`, which pre-translates each
  function once (see :mod:`repro.interp.translate`) and then runs
  zero-lookup closures over a flat register list.  Functions the
  translator rejects fall back to the reference loop *per function*;
  the two loops interleave freely across calls.
* ``codegen`` — :class:`CodegenInterpreter`, which additionally compiles
  each translated function into one generated Python ``def`` (see
  :mod:`repro.interp.codegen`): registers become local variables,
  opcode semantics are inlined, and adjacent pairs fuse into
  superinstructions.  Functions the emitter rejects keep the closure
  tier (and below that the reference loop) *per function*.

All engines produce bit-identical :class:`ExecResult` values — same
checksum, return value, step count, site/opcode/extend counts, and
branch profiles — and raise the same ``SimError`` subtypes with the
same messages.  ``engine="both"`` in :func:`execute` runs all three
back to back and raises :class:`EngineParityError` on any
disagreement, which the fuzz oracle uses as an internal-consistency
check.

When an edge profile is supplied (``layout_profiles=``, shaped
``{function: {(src label, dst label): count}}``), the translated
engines emit blocks in profile-guided order — hot successors laid out
fall-through (see :mod:`repro.interp.layout`).  Layout never changes
semantics, only emission order.

Known, documented divergences (both unobservable in practice):

* A read of a never-written register raises ``KeyError`` in the
  reference engine but yields 0 in the closure engine; the verifier
  rejects such programs before they reach an interpreter.
* On a *failed* run the closure engine's ``steps`` is only
  block-granular (counts are folded on success only); no failed run
  ever builds an ``ExecResult``, and the fuzz oracle never compares
  step counts.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from ..ir.function import Function, Program
from .codegen import CodegenCache, default_codegen_cache
from .interpreter import (
    ExecResult,
    Interpreter,
    stack_overflow_trap,
)
from .layout import order_blocks
from .memory import FuelExhausted, SimError, Trap
from .translate import (
    TERM_CHECKED,
    TERM_NONE,
    TranslatedFunction,
    TranslationCache,
    default_translation_cache,
    uid_layout,
)

_U64 = 0xFFFF_FFFF_FFFF_FFFF

#: Engine used when nothing is specified anywhere in the stack.
DEFAULT_ENGINE = "closure"


@runtime_checkable
class ExecutionEngine(Protocol):
    """What the harness, oracle, and API require of an engine."""

    program: Program
    steps: int

    def run(self, func_name: str = "main",
            args: tuple[int | float, ...] = ()) -> ExecResult:
        ...


class EngineParityError(AssertionError):
    """The closure engine disagreed with the reference interpreter."""


class ClosureInterpreter(Interpreter):
    """Runs pre-translated threaded code; reference-identical results.

    Construction translates (or fetches from the shared
    :class:`TranslationCache`) every function in the program.  Each
    translated call frame is a flat list indexed by pre-resolved slots;
    each instruction is a closure with its behaviour burned in.  The
    reference implementations of ``run``/``_call`` remain reachable as
    the per-function fallback path.
    """

    def __init__(self, program: Program, *,
                 translation_cache: TranslationCache | None = None,
                 layout_profiles: dict[str, dict[tuple[str, str], int]]
                 | None = None,
                 **kwargs) -> None:
        super().__init__(program, **kwargs)
        self.translation_cache = (
            translation_cache if translation_cache is not None
            else default_translation_cache()
        )
        #: {function: {(src label, dst label): count}} — drives
        #: profile-guided block layout; empty means source order
        self._layout_profiles = layout_profiles or {}
        self.translate_seconds = 0.0
        self.translated_functions = 0
        self.fallback_functions = 0
        self.fallback_calls = 0
        self.closures_executed = 0
        self.translate_cache_hits = 0
        self.translate_cache_misses = 0
        self._translated: dict[str, TranslatedFunction] = {}
        self._layouts: dict[str, dict[str, tuple[int, ...]]] = {}
        #: per-function block-entry counters, folded into the result
        self._entries: dict[str, list[int]] = {}
        #: per-function {(block idx, succ idx): count} when profiling
        self._edge_profiles: dict[str, dict[tuple[int, int], int]] = {}
        self._translate_all()

    # -- translation ----------------------------------------------------

    def _layout_for(self, func: Function) -> tuple[str, ...] | None:
        """Profile-guided emission order for ``func`` (None = source)."""
        counts = self._layout_profiles.get(func.name)
        if not counts:
            return None
        return order_blocks(func, counts)

    def _translate_all(self) -> None:
        cache = self.translation_cache
        start = time.perf_counter()
        hits0, misses0 = cache.hits, cache.misses
        for func in self.program.functions.values():
            translated = cache.get_or_translate(
                func, ideal=self.ideal, traits=self.traits,
                check_dummies=self.check_dummies,
                layout=self._layout_for(func),
            )
            if translated is None or not self._bind(func, translated):
                self.fallback_functions += 1
                continue
            self._translated[func.name] = translated
            self.translated_functions += 1
        self.translate_cache_hits = cache.hits - hits0
        self.translate_cache_misses = cache.misses - misses0
        self.translate_seconds = time.perf_counter() - start

    def _bind(self, func: Function, translated: TranslatedFunction) -> bool:
        """Attach this Function's uids to the (content-shared) translation.

        The layout must agree with the translation's static step counts
        block for block; a mismatch means the cached translation does
        not describe this object and the function falls back.
        """
        layout = uid_layout(func)
        for block in translated.blocks:
            uids = layout.get(block.label)
            if uids is None or len(uids) != block.n_counted:
                return False
        self._layouts[func.name] = layout
        return True

    # -- execution ------------------------------------------------------

    def run(self, func_name: str = "main",
            args: tuple[int | float, ...] = ()) -> ExecResult:
        func = self.program.function(func_name)
        ret = self._call(func, args)
        self._fold_counts()
        result = self._build_result(ret)
        if self.metrics is not None:
            self._flush_metrics(result)
            self._flush_engine_metrics()
        return result

    def _call(self, func: Function,
              args: tuple[int | float, ...]) -> int | float | None:
        translated = self._translated.get(func.name)
        if translated is None:
            self.fallback_calls += 1
            return super()._call(func, args)
        if len(args) != translated.n_params:
            raise Trap(
                f"arity mismatch calling {func.name}: got {len(args)} args"
            )
        depth = self.call_depth + 1
        if depth > self.max_call_depth:
            raise stack_overflow_trap(self.max_call_depth)
        regs: list[int | float] = [0] * translated.n_slots
        for (slot, is_float), value in zip(translated.param_plan, args):
            regs[slot] = float(value) if is_float else int(value) & _U64
        self.call_depth = depth
        try:
            if self.collect_profile:
                return self._run_frame_profiled(translated, regs)
            return self._run_frame(translated, regs)
        finally:
            self.call_depth = depth - 1

    def _run_frame(self, translated: TranslatedFunction,
                   regs: list[int | float]):
        blocks = translated.blocks
        entries = self._entries.get(translated.name)
        if entries is None:
            entries = self._entries[translated.name] = [0] * len(blocks)
        fuel = self.fuel
        functions = self.program.functions
        bidx = 0
        while True:
            block = blocks[bidx]
            entries[bidx] += 1
            for ops, n, call in block.segments:
                steps = self.steps + n
                if steps > fuel:
                    self._fuel_out(ops, regs)
                self.steps = steps
                for op in ops:
                    op(regs, self)
                if call is not None:
                    result = self._call(
                        functions[call.callee],
                        [regs[i] for i in call.arg_slots],
                    )
                    dest = call.dest_slot
                    if dest >= 0:
                        if result is None:
                            raise Trap(call.void_msg)
                        regs[dest] = result
            term_mode = block.term_mode
            if term_mode == TERM_NONE:
                raise Trap(
                    f"fell off block {block.label} in {translated.name}"
                )
            if term_mode == TERM_CHECKED:
                if self.steps >= fuel:
                    self._fuel_out((), regs)
                self.steps += 1
            nxt = block.terminator(regs, self)
            if type(nxt) is int:
                bidx = nxt
                continue
            return nxt[0]

    def _run_frame_profiled(self, translated: TranslatedFunction,
                            regs: list[int | float]):
        blocks = translated.blocks
        entries = self._entries.get(translated.name)
        if entries is None:
            entries = self._entries[translated.name] = [0] * len(blocks)
        profile = self._edge_profiles.setdefault(translated.name, {})
        fuel = self.fuel
        functions = self.program.functions
        bidx = 0
        while True:
            block = blocks[bidx]
            entries[bidx] += 1
            for ops, n, call in block.segments:
                steps = self.steps + n
                if steps > fuel:
                    self._fuel_out(ops, regs)
                self.steps = steps
                for op in ops:
                    op(regs, self)
                if call is not None:
                    result = self._call(
                        functions[call.callee],
                        [regs[i] for i in call.arg_slots],
                    )
                    dest = call.dest_slot
                    if dest >= 0:
                        if result is None:
                            raise Trap(call.void_msg)
                        regs[dest] = result
            term_mode = block.term_mode
            if term_mode == TERM_NONE:
                raise Trap(
                    f"fell off block {block.label} in {translated.name}"
                )
            if term_mode == TERM_CHECKED:
                if self.steps >= fuel:
                    self._fuel_out((), regs)
                self.steps += 1
            nxt = block.terminator(regs, self)
            if type(nxt) is int:
                key = (bidx, nxt)
                profile[key] = profile.get(key, 0) + 1
                bidx = nxt
                continue
            return nxt[0]

    def _fuel_out(self, ops, regs) -> None:
        """A segment pre-check tripped: replay the reference's tail.

        The reference executes instructions while ``steps <= fuel``, so
        exactly ``fuel - steps`` more run before the exhausting one —
        and any of them may trap first, which must win over fuel.
        """
        remaining = self.fuel - self.steps
        if remaining > 0:
            for op in ops[:remaining]:
                op(regs, self)
        self.steps = self.fuel + 1
        raise FuelExhausted(f"exceeded {self.fuel} steps")

    # -- result folding -------------------------------------------------

    def _fold_counts(self) -> None:
        """Expand block-entry counters into the reference's counters.

        Only called on success, where every entered block completed;
        the static per-block instruction mix times the entry count is
        then exactly the reference's per-instruction tally.
        """
        site_counts = self.site_counts
        opcode_counts = self.opcode_counts
        extend_counts = self.extend_counts
        expose_entries = self.collect_profile
        for name, entries in self._entries.items():
            translated = self._translated[name]
            layout = self._layouts[name]
            blocks = translated.blocks
            folded = (self.block_entries.setdefault(name, {})
                      if expose_entries else None)
            for bidx, count in enumerate(entries):
                if not count:
                    continue
                block = blocks[bidx]
                if folded is not None:
                    folded[block.label] = (
                        folded.get(block.label, 0) + count
                    )
                for uid in layout[block.label]:
                    site_counts[uid] = site_counts.get(uid, 0) + count
                for opcode, k in block.op_counts:
                    opcode_counts[opcode] = (
                        opcode_counts.get(opcode, 0) + k * count
                    )
                for width, k in block.ext_counts:
                    extend_counts[width] += k * count
                self.closures_executed += block.n_counted * count
        for name, edges in self._edge_profiles.items():
            blocks = self._translated[name].blocks
            profile = self.profiles.setdefault(name, {})
            for (src, dst), count in edges.items():
                key = (blocks[src].label, blocks[dst].label)
                profile[key] = profile.get(key, 0) + count
        self._entries = {}
        self._edge_profiles = {}

    def _flush_engine_metrics(self) -> None:
        metrics = self.metrics
        metrics.counter("runtime.engine.translated_functions").inc(
            self.translated_functions
        )
        if self.fallback_functions:
            metrics.counter("runtime.engine.fallback_functions").inc(
                self.fallback_functions
            )
        if self.fallback_calls:
            metrics.counter("runtime.engine.fallback_calls").inc(
                self.fallback_calls
            )
        metrics.counter("runtime.engine.closures_executed").inc(
            self.closures_executed
        )
        metrics.counter("runtime.engine.translate_cache_hits").inc(
            self.translate_cache_hits
        )
        metrics.counter("runtime.engine.translate_cache_misses").inc(
            self.translate_cache_misses
        )
        metrics.gauge("runtime.engine.translate_seconds").set(
            self.translate_seconds
        )


class CodegenInterpreter(ClosureInterpreter):
    """Runs generated Python code; reference-identical results.

    Construction first translates everything through the closure tier
    (the superclass), then compiles each translated function into one
    generated ``def`` via the shared :class:`CodegenCache`.  Calls
    route to the generated function when one exists; otherwise the
    closure frame loop (and below it the reference loop) handles the
    call — all three tiers interleave freely across the call graph.

    The generated frames reuse this class's block-entry counters and
    fuel-out replay (via :meth:`_frame_entries` and
    :meth:`_replay_fuel_out`), so folding, counting, and fuel
    exhaustion are byte-for-byte the closure engine's.
    """

    def __init__(self, program: Program, *,
                 codegen_cache: CodegenCache | None = None,
                 **kwargs) -> None:
        self.codegen_cache = (
            codegen_cache if codegen_cache is not None
            else default_codegen_cache()
        )
        self.codegen_seconds = 0.0
        self.generated_functions = 0
        self.codegen_fallback_functions = 0
        self.codegen_cache_hits = 0
        self.codegen_cache_misses = 0
        self._generated: dict[str, object] = {}
        super().__init__(program, **kwargs)
        self._generate_all()

    # -- code generation ------------------------------------------------

    def _generate_all(self) -> None:
        cache = self.codegen_cache
        start = time.perf_counter()
        hits0, misses0 = cache.hits, cache.misses
        functions = self.program.functions
        for name, translated in self._translated.items():
            func = functions[name]
            generated = cache.get_or_generate(
                func, translated, ideal=self.ideal, traits=self.traits,
                check_dummies=self.check_dummies,
                layout=self._layout_for(func),
                profiled=self.collect_profile,
            )
            if generated is None:
                self.codegen_fallback_functions += 1
                continue
            self._generated[name] = generated.fn
            self.generated_functions += 1
        self.codegen_cache_hits = cache.hits - hits0
        self.codegen_cache_misses = cache.misses - misses0
        self.codegen_seconds = time.perf_counter() - start

    # -- hooks called from generated code -------------------------------

    def _frame_entries(self, name: str, n_blocks: int) -> list[int]:
        """The fold-on-success entry counters for one generated frame."""
        entries = self._entries.get(name)
        if entries is None:
            entries = self._entries[name] = [0] * n_blocks
        return entries

    def _replay_fuel_out(self, name: str, bidx: int, sidx: int,
                         regs: list[int | float]) -> None:
        """A generated segment pre-check tripped.

        Replays the closure translation's op list for the same segment
        (``sidx == -1`` is a TERM_CHECKED pre-terminator check, which
        replays nothing) over a positionally identical register list —
        exactly :meth:`_fuel_out`'s contract.  The lookup keeps the
        generated code free of binding-specific state, so compiled
        function objects stay shareable across interpreters.
        """
        if sidx < 0:
            ops: tuple = ()
        else:
            ops = self._translated[name].blocks[bidx].segments[sidx][0]
        self._fuel_out(ops, regs)

    # -- execution ------------------------------------------------------

    def _call(self, func: Function,
              args: tuple[int | float, ...]) -> int | float | None:
        generated = self._generated.get(func.name)
        if generated is None:
            return super()._call(func, args)
        return generated(self, args)

    def _flush_engine_metrics(self) -> None:
        super()._flush_engine_metrics()
        metrics = self.metrics
        metrics.counter("runtime.engine.generated_functions").inc(
            self.generated_functions
        )
        if self.codegen_fallback_functions:
            metrics.counter("runtime.engine.codegen_fallback_functions").inc(
                self.codegen_fallback_functions
            )
        metrics.counter("runtime.engine.codegen_cache_hits").inc(
            self.codegen_cache_hits
        )
        metrics.counter("runtime.engine.codegen_cache_misses").inc(
            self.codegen_cache_misses
        )
        metrics.gauge("runtime.engine.codegen_seconds").set(
            self.codegen_seconds
        )


#: Engine name -> interpreter class.  ``"both"`` is not an engine but a
#: cross-check mode understood by :func:`execute` and the fuzz oracle.
ENGINES: dict[str, type[Interpreter]] = {
    "reference": Interpreter,
    "closure": ClosureInterpreter,
    "codegen": CodegenInterpreter,
}

#: Every value accepted by ``--engine`` / ``CompileOptions.engine``.
ENGINE_CHOICES = ("closure", "reference", "codegen", "both")


def create_interpreter(program: Program, *, engine: str = DEFAULT_ENGINE,
                       **kwargs) -> Interpreter:
    """Instantiate the named engine.

    Engine-specific keyword arguments (``translation_cache``,
    ``layout_profiles``, ``codegen_cache``) are dropped when the
    selected engine does not take them, so callers can thread one
    kwargs dict through any engine choice.
    """
    cls = ENGINES.get(engine)
    if cls is None:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {sorted(ENGINES)})"
        )
    if cls is Interpreter:
        kwargs.pop("translation_cache", None)
        kwargs.pop("layout_profiles", None)
    if cls is not CodegenInterpreter:
        kwargs.pop("codegen_cache", None)
    return cls(program, **kwargs)


def _outcome(interp: Interpreter, func_name: str, args):
    try:
        return ("ok", interp.run(func_name, args))
    except SimError as exc:
        return (type(exc).__name__, exc)


def execute(program: Program, func_name: str = "main",
            args: tuple[int | float, ...] = (), *,
            engine: str = DEFAULT_ENGINE, **kwargs) -> ExecResult:
    """Run ``program`` on the selected engine and return its result.

    ``engine="both"`` runs the closure engine, the reference
    interpreter, and the codegen engine back to back and raises
    :class:`EngineParityError` unless all three produce the same
    outcome — identical ``ExecResult`` on success, identical exception
    type and message on failure.  The closure engine's result (or
    exception) is then propagated.
    """
    if engine != "both":
        return create_interpreter(program, engine=engine, **kwargs).run(
            func_name, args
        )

    closure_kind, closure_out = _outcome(
        create_interpreter(program, engine="closure", **dict(kwargs)),
        func_name, args,
    )
    for other in ("reference", "codegen"):
        other_kwargs = dict(kwargs)
        other_kwargs["metrics"] = None  # don't double-count one logical run
        other_kind, other_out = _outcome(
            create_interpreter(program, engine=other, **other_kwargs),
            func_name, args,
        )
        if closure_kind != other_kind:
            raise EngineParityError(
                f"engines disagree on outcome for {func_name}: "
                f"closure={closure_kind}({closure_out}) "
                f"{other}={other_kind}({other_out})"
            )
        if closure_kind == "ok":
            if closure_out != other_out:
                raise EngineParityError(
                    f"engines disagree on result for {func_name}: "
                    f"closure={closure_out!r} {other}={other_out!r}"
                )
        elif str(closure_out) != str(other_out):
            raise EngineParityError(
                f"engines disagree on {closure_kind} message for "
                f"{func_name}: closure={closure_out} {other}={other_out}"
            )
    if closure_kind == "ok":
        return closure_out
    raise closure_out
