"""Closure translation: one-time compilation of IR into threaded code.

The reference interpreter pays, on every step, for an ``if opcode is
...`` dispatch chain and for dict-keyed register access.  This module
removes both costs *once per function* instead of once per step, in the
threaded-code tradition of OCAMLJIT2: each instruction becomes a Python
closure with

* register names resolved to indices into a flat per-frame list,
* the opcode's behaviour burned in (no dispatch at run time),
* immediates, branch targets, machine traits, and the ideal/machine
  mode pre-bound as locals.

The translation is *content-pure*: closures embed only slot indices,
constants, labels, and trap-message text — never instruction uids — so
one ``TranslatedFunction`` is shared by every structurally identical
``Function`` (clones across a bench grid, cache-restored programs).
Per-binding data (the uid layout used to reconstruct ``site_counts``)
is recomputed cheaply by :func:`uid_layout`.

Counting strategy
-----------------

The reference counts sites/opcodes/extends per executed instruction.
An ``ExecResult`` is only ever built for a *successful* run, and a
block either executes completely or raises — so the closure engine
counts **block entries** in a preallocated array and multiplies by the
block's static instruction mix on success.  Partially executed blocks
only happen on the exception paths, where the counts are unobservable.

Fuel is the one live counter: each block is split into *segments* at
``CALL`` boundaries and a single pre-check per segment
(``steps + n > fuel``) replaces n per-instruction checks.  When the
pre-check trips, :meth:`ClosureInterpreter._fuel_out` replays exactly
the instructions the reference would still have executed (an earlier
trap wins over fuel exhaustion) before raising ``FuelExhausted``.

Anything the translator does not understand raises
:class:`Untranslatable`; the engine then falls back to the reference
interpreter for that function only.
"""

from __future__ import annotations

import hashlib
import operator
import struct
import threading
from collections import Counter, OrderedDict

from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Cond, Opcode
from ..ir.printer import format_function
from ..ir.types import ScalarType, sign_extend, wrap_u64
from ..machine.model import LoadExt, MachineTraits
from .interpreter import (
    _FLOAT_OPS,
    _INT32_BINOPS,
    _INT64_BINOPS,
    _java_d2i,
    _java_d2l,
)
from .memory import MemoryFault, Trap

_U64 = 0xFFFF_FFFF_FFFF_FFFF
_U32 = 0xFFFF_FFFF
_HIGH32 = 0x8000_0000
_HIGH64 = 0x8000_0000_0000_0000
#: OR-mask that completes a 32->64 sign extension of a masked low word.
_FILL32 = 0xFFFF_FFFF_0000_0000
_FNV_PRIME = 1099511628211

_TERMINATORS = frozenset({Opcode.BR, Opcode.JMP, Opcode.RET})

_EXTEND_WIDTH = {Opcode.EXTEND8: 8, Opcode.EXTEND16: 16, Opcode.EXTEND32: 32}
_ZEXT_WIDTH = {Opcode.ZEXT8: 8, Opcode.ZEXT16: 16, Opcode.ZEXT32: 32}

#: Sentinel return value of a void ``ret`` terminator closure.
_RET_VOID = (None,)

_COND_OPS = {
    Cond.EQ: operator.eq,
    Cond.NE: operator.ne,
    Cond.LT: operator.lt,
    Cond.ULT: operator.lt,
    Cond.LE: operator.le,
    Cond.ULE: operator.le,
    Cond.GT: operator.gt,
    Cond.UGT: operator.gt,
    Cond.GE: operator.ge,
    Cond.UGE: operator.ge,
}


class Untranslatable(Exception):
    """The function contains a construct the translator cannot compile.

    Never fatal: the engine keeps the reference interpreter for this
    function and counts it in ``runtime.engine.fallback_functions``.
    """


class CallSite:
    """A pre-resolved ``CALL``: argument slots, destination, message."""

    __slots__ = ("callee", "arg_slots", "dest_slot", "void_msg")

    def __init__(self, callee: str, arg_slots: tuple[int, ...],
                 dest_slot: int, void_msg: str | None) -> None:
        self.callee = callee
        self.arg_slots = arg_slots
        self.dest_slot = dest_slot
        self.void_msg = void_msg


#: How a translated block's terminator participates in fuel accounting.
TERM_NONE = 0      # no terminator: falls off the block (always traps)
TERM_INLINE = 1    # terminator's step pre-approved with the last segment
TERM_CHECKED = 2   # last segment ends in a CALL: terminator needs its
#                    own fuel check because the callee consumed fuel


class TranslatedBlock:
    """One basic block compiled to closure segments."""

    __slots__ = ("label", "segments", "terminator", "term_mode",
                 "op_counts", "ext_counts", "n_counted")

    def __init__(self, label, segments, terminator, term_mode,
                 op_counts, ext_counts, n_counted) -> None:
        self.label = label
        #: tuple of (ops, n_steps, CallSite | None); ``n_steps`` is the
        #: fuel cost of the whole segment (ops + call or terminator).
        self.segments = segments
        self.terminator = terminator
        self.term_mode = term_mode
        #: static per-execution opcode mix: tuple[(Opcode, count)]
        self.op_counts = op_counts
        #: static per-execution extend mix: tuple[(width, count)]
        self.ext_counts = ext_counts
        #: counted steps per complete execution == len(uid layout)
        self.n_counted = n_counted


class TranslatedFunction:
    """A whole function compiled to threaded code."""

    __slots__ = ("name", "n_params", "param_plan", "n_slots",
                 "blocks", "labels", "slot_names")

    def __init__(self, name, n_params, param_plan, n_slots,
                 blocks, labels, slot_names=()) -> None:
        self.name = name
        self.n_params = n_params
        #: tuple of (slot, is_float) in parameter order
        self.param_plan = param_plan
        self.n_slots = n_slots
        self.blocks = blocks
        #: label -> block index (in *emission* order, which follows the
        #: requested layout — not necessarily source order)
        self.labels = labels
        #: register name per slot index; the codegen tier names its
        #: Python locals off this so fuel-out replay can rebuild the
        #: closure engine's flat register list positionally
        self.slot_names = slot_names


def normalize_layout(func: Function,
                     layout: tuple[str, ...] | None) -> tuple[str, ...] | None:
    """Make an advisory block layout safe for ``func``.

    Profiles are hints, possibly stale (recorded against a different
    program revision): unknown labels are dropped, missing labels are
    appended in source order, and the entry block is forced first.
    Returns ``None`` when the result is just source order, so cache
    keys stay identical for the un-laid-out common case.
    """
    source_order = tuple(block.label for block in func.blocks)
    if not layout:
        return None
    known = set(source_order)
    ordered = [label for label in layout if label in known]
    seen = set(ordered)
    ordered.extend(label for label in source_order if label not in seen)
    entry = source_order[0]
    ordered.remove(entry)
    ordered.insert(0, entry)
    result = tuple(ordered)
    return None if result == source_order else result


def _cut_block(instrs: list[Instr]) -> list[Instr]:
    """Instructions up to and including the first terminator.

    The reference leaves a block at its first BR/JMP/RET, so any tail
    is unreachable and must not contribute to the static counts.
    """
    cut = []
    for instr in instrs:
        cut.append(instr)
        if instr.opcode in _TERMINATORS:
            break
    return cut


def uid_layout(func: Function) -> dict[str, tuple[int, ...]]:
    """Per-block executed-instruction uids, in step order.

    Binding-specific companion to a (content-shared)
    ``TranslatedFunction``: ``len(layout[label]) == block.n_counted``
    for every block, which the engine verifies before trusting a cached
    translation for this particular ``Function`` object.
    """
    return {
        block.label: tuple(i.uid for i in _cut_block(block.instrs))
        for block in func.blocks
    }


# -- closure factories --------------------------------------------------------
#
# Each factory binds everything an instruction needs as defaults-free
# closure cells and returns ``op(regs, st)`` where ``regs`` is the flat
# per-frame register list and ``st`` the running ClosureInterpreter
# (used only for heap/globals/checksum state).  The defensive ``int()``
# / ``float()`` conversions mirror the reference interpreter exactly —
# type-confused IR must misbehave identically in both engines.

def _mk_const(dst, value):
    def op(regs, st):
        regs[dst] = value
    return op


def _mk_mov(dst, src):
    def op(regs, st):
        regs[dst] = regs[src]
    return op


def _mk_extend(dst, src, mask, high, fill):
    def op(regs, st):
        v = int(regs[src]) & mask
        regs[dst] = (v | fill) if v & high else v
    return op


def _mk_zext(dst, src, mask):
    def op(regs, st):
        regs[dst] = int(regs[src]) & mask
    return op


def _mk_just_extended(dst, src, check):
    if not check:
        def op(regs, st):
            regs[dst] = int(regs[src])
        return op

    def op(regs, st):
        value = int(regs[src])
        v = value & _U32
        if ((v | _FILL32) if v & _HIGH32 else v) != value:
            raise MemoryFault(
                f"just_extended marker saw a non-canonical value "
                f"0x{value:016x} — unsound elimination"
            )
        regs[dst] = value
    return op


def _mk_trunc32(dst, src, ideal):
    if ideal:
        def op(regs, st):
            v = int(regs[src]) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = int(regs[src])
    return op


def _mk_add32(dst, a, b, ideal):
    if ideal:
        def op(regs, st):
            v = (int(regs[a]) + int(regs[b])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = (int(regs[a]) + int(regs[b])) & _U64
    return op


def _mk_sub32(dst, a, b, ideal):
    if ideal:
        def op(regs, st):
            v = (int(regs[a]) - int(regs[b])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = (int(regs[a]) - int(regs[b])) & _U64
    return op


def _mk_mul32(dst, a, b, ideal):
    if ideal:
        def op(regs, st):
            v = (int(regs[a]) * int(regs[b])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = (int(regs[a]) * int(regs[b])) & _U64
    return op


_INLINE_BINOP32 = {Opcode.ADD32: _mk_add32, Opcode.SUB32: _mk_sub32,
                   Opcode.MUL32: _mk_mul32}


def _mk_binop32(dst, a, b, handler, ideal):
    if ideal:
        def op(regs, st):
            v = handler(int(regs[a]), int(regs[b])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = handler(int(regs[a]), int(regs[b]))
    return op


def _mk_binop64(dst, a, b, handler):
    def op(regs, st):
        regs[dst] = handler(int(regs[a]), int(regs[b]))
    return op


def _mk_neg32(dst, src, ideal):
    if ideal:
        def op(regs, st):
            v = (-int(regs[src])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = (-int(regs[src])) & _U64
    return op


def _mk_not32(dst, src, ideal):
    if ideal:
        def op(regs, st):
            v = (~int(regs[src])) & _U32
            regs[dst] = (v | _FILL32) if v & _HIGH32 else v
        return op

    def op(regs, st):
        regs[dst] = (~int(regs[src])) & _U64
    return op


def _mk_neg64(dst, src):
    def op(regs, st):
        regs[dst] = (-int(regs[src])) & _U64
    return op


def _mk_not64(dst, src):
    def op(regs, st):
        regs[dst] = (~int(regs[src])) & _U64
    return op


def _mk_cmp32(dst, a, b, cond):
    cmp = _COND_OPS[cond]
    if cond.is_unsigned:
        def op(regs, st):
            regs[dst] = int(cmp(int(regs[a]) & _U32, int(regs[b]) & _U32))
        return op

    def op(regs, st):
        va = int(regs[a]) & _U32
        vb = int(regs[b]) & _U32
        if va & _HIGH32:
            va -= 0x1_0000_0000
        if vb & _HIGH32:
            vb -= 0x1_0000_0000
        regs[dst] = int(cmp(va, vb))
    return op


def _mk_cmp64(dst, a, b, cond):
    cmp = _COND_OPS[cond]
    if cond.is_unsigned:
        def op(regs, st):
            regs[dst] = int(cmp(int(regs[a]), int(regs[b])))
        return op

    def op(regs, st):
        va = int(regs[a])
        vb = int(regs[b])
        if va & _HIGH64:
            va -= 0x1_0000_0000_0000_0000
        if vb & _HIGH64:
            vb -= 0x1_0000_0000_0000_0000
        regs[dst] = int(cmp(va, vb))
    return op


def _mk_cmpf(dst, a, b, cond):
    cmp = _COND_OPS[cond]

    def op(regs, st):
        regs[dst] = int(cmp(float(regs[a]), float(regs[b])))
    return op


def _mk_float1(dst, a, handler, text):
    def op(regs, st):
        try:
            regs[dst] = handler(float(regs[a]))
        except (ValueError, OverflowError) as exc:
            raise Trap(f"floating point error in {text}: {exc}") from exc
    return op


def _mk_float2(dst, a, b, handler, text):
    def op(regs, st):
        try:
            regs[dst] = handler(float(regs[a]), float(regs[b]))
        except (ValueError, OverflowError) as exc:
            raise Trap(f"floating point error in {text}: {exc}") from exc
    return op


def _mk_i2d(dst, src):
    def op(regs, st):
        regs[dst] = float(sign_extend(int(regs[src]), 64))
    return op


def _mk_d2i(dst, src):
    def op(regs, st):
        regs[dst] = wrap_u64(sign_extend(_java_d2i(float(regs[src])), 32))
    return op


def _mk_d2l(dst, src):
    def op(regs, st):
        regs[dst] = _java_d2l(float(regs[src])) & _U64
    return op


def _mk_newarray(dst, src, elem):
    def op(regs, st):
        regs[dst] = st.heap.allocate(elem, sign_extend(int(regs[src]), 64))
    return op


def _load_ext_params(elem: ScalarType, ideal: bool,
                     traits: MachineTraits) -> tuple[str, int]:
    """How a loaded raw value of ``elem`` widens into a register.

    Mirrors ``Interpreter._extend_loaded`` with the mode and machine
    traits resolved at translate time.
    """
    if elem is ScalarType.F64:
        return ("float", 0)
    if elem is ScalarType.REF or elem is ScalarType.I64:
        return ("wide", 64)
    if ideal:
        return ("sign" if elem.signed else "zero", elem.bits)
    if traits.load_extension(elem) is LoadExt.SIGN:
        return ("sign", elem.bits)
    return ("zero", elem.bits)


def _mk_aload(dst, aref, aidx, kind, bits):
    if kind == "float":
        def op(regs, st):
            heap = st.heap
            array = heap.deref(int(regs[aref]))
            index = heap.checked_index(array, int(regs[aidx]))
            regs[dst] = float(array.cells[index])
        return op
    if kind == "wide":
        def op(regs, st):
            heap = st.heap
            array = heap.deref(int(regs[aref]))
            index = heap.checked_index(array, int(regs[aidx]))
            regs[dst] = int(array.cells[index]) & _U64
        return op
    mask = (1 << bits) - 1
    if kind == "sign":
        high = 1 << (bits - 1)
        fill = _U64 ^ mask

        def op(regs, st):
            heap = st.heap
            array = heap.deref(int(regs[aref]))
            index = heap.checked_index(array, int(regs[aidx]))
            v = int(array.cells[index]) & mask
            regs[dst] = (v | fill) if v & high else v
        return op

    def op(regs, st):
        heap = st.heap
        array = heap.deref(int(regs[aref]))
        index = heap.checked_index(array, int(regs[aidx]))
        regs[dst] = int(array.cells[index]) & mask
    return op


def _mk_astore(aref, aidx, val):
    def op(regs, st):
        heap = st.heap
        array = heap.deref(int(regs[aref]))
        index = heap.checked_index(array, int(regs[aidx]))
        heap.store(array, index, regs[val])
    return op


def _mk_arraylen(dst, src):
    def op(regs, st):
        regs[dst] = st.heap.deref(int(regs[src])).length
    return op


def _mk_gload(dst, gname, kind, bits):
    if kind == "float":
        def op(regs, st):
            regs[dst] = float(st.globals[gname])
        return op
    if kind == "wide":
        def op(regs, st):
            regs[dst] = int(st.globals[gname]) & _U64
        return op
    mask = (1 << bits) - 1
    if kind == "sign":
        high = 1 << (bits - 1)
        fill = _U64 ^ mask

        def op(regs, st):
            v = int(st.globals[gname]) & mask
            regs[dst] = (v | fill) if v & high else v
        return op

    def op(regs, st):
        regs[dst] = int(st.globals[gname]) & mask
    return op


def _mk_gstore(src, gname, elem):
    if elem is ScalarType.F64:
        def op(regs, st):
            st.globals[gname] = float(regs[src])
        return op
    mask = (1 << elem.bits) - 1

    def op(regs, st):
        st.globals[gname] = int(regs[src]) & mask
    return op


def _mk_sink(src, type_):
    if type_ is ScalarType.F64:
        pack = struct.pack
        unpack = struct.unpack

        def op(regs, st):
            bits = unpack("<Q", pack("<d", float(regs[src])))[0]
            st.checksum = ((st.checksum ^ bits) * _FNV_PRIME) & _U64
        return op

    def op(regs, st):
        st.checksum = (
            (st.checksum ^ (int(regs[src]) & _U64)) * _FNV_PRIME
        ) & _U64
    return op


def _mk_nop():
    # Kept in the ops list on purpose: omitting it would desync the
    # segment step count from the reference's per-instruction fuel.
    def op(regs, st):
        pass
    return op


# -- terminator factories -----------------------------------------------------
#
# A terminator closure returns the next block *index* (int) for BR/JMP
# or a 1-tuple holding the return value for RET; the frame loop
# discriminates on ``type(x) is int``.

def _mk_br(cond_slot, then_idx, else_idx):
    def term(regs, st):
        return then_idx if int(regs[cond_slot]) & _U32 else else_idx
    return term


def _mk_jmp(target_idx):
    def term(regs, st):
        return target_idx
    return term


def _mk_ret(src):
    if src is None:
        def term(regs, st):
            return _RET_VOID
        return term

    def term(regs, st):
        return (regs[src],)
    return term


# -- the translator -----------------------------------------------------------

class _Translator:
    def __init__(self, func: Function, ideal: bool, traits: MachineTraits,
                 check_dummies: bool,
                 layout: tuple[str, ...] | None = None) -> None:
        self.func = func
        self.ideal = ideal
        self.traits = traits
        self.check_dummies = check_dummies
        self.layout = layout
        self.slots: dict[str, int] = {}

    def slot(self, name: str) -> int:
        index = self.slots.get(name)
        if index is None:
            index = self.slots[name] = len(self.slots)
        return index

    def translate(self) -> TranslatedFunction:
        func = self.func
        param_plan = tuple(
            (self.slot(p.name), p.type is ScalarType.F64)
            for p in func.params
        )
        if len({block.label for block in func.blocks}) != len(func.blocks):
            raise Untranslatable(f"{func.name}: duplicate block labels")
        ordered = func.blocks
        layout = normalize_layout(func, self.layout)
        if layout is not None:
            by_label = {block.label: block for block in func.blocks}
            ordered = [by_label[label] for label in layout]
        labels = {block.label: i for i, block in enumerate(ordered)}
        blocks = tuple(
            self._translate_block(block, labels) for block in ordered
        )
        return TranslatedFunction(
            name=func.name,
            n_params=len(func.params),
            param_plan=param_plan,
            n_slots=len(self.slots),
            blocks=blocks,
            labels=labels,
            slot_names=tuple(sorted(self.slots, key=self.slots.get)),
        )

    def _translate_block(self, block, labels) -> TranslatedBlock:
        cut = _cut_block(block.instrs)
        term_instr = cut.pop() if cut and cut[-1].opcode in _TERMINATORS \
            else None

        segments = []
        ops: list = []
        for instr in cut:
            if instr.opcode is Opcode.CALL:
                segments.append((tuple(ops), len(ops) + 1,
                                 self._call_site(instr)))
                ops = []
            else:
                ops.append(self._translate_op(instr))

        terminator = None
        if term_instr is not None:
            # The terminator's fuel step rides on the final segment's
            # pre-check unless a CALL immediately precedes it — then the
            # callee burns unknown fuel and the step needs its own check.
            if ops or not segments:
                segments.append((tuple(ops), len(ops) + 1, None))
                term_mode = TERM_INLINE
            else:
                term_mode = TERM_CHECKED
            terminator = self._translate_term(term_instr, labels)
        else:
            if ops:
                segments.append((tuple(ops), len(ops), None))
            term_mode = TERM_NONE

        counted = cut + ([term_instr] if term_instr is not None else [])
        op_counts = tuple(Counter(i.opcode for i in counted).items())
        ext_counts = tuple(Counter(
            _EXTEND_WIDTH[i.opcode] for i in counted
            if i.opcode in _EXTEND_WIDTH
        ).items())
        return TranslatedBlock(
            label=block.label,
            segments=tuple(segments),
            terminator=terminator,
            term_mode=term_mode,
            op_counts=op_counts,
            ext_counts=ext_counts,
            n_counted=len(counted),
        )

    def _call_site(self, instr: Instr) -> CallSite:
        if instr.callee is None:
            raise Untranslatable(f"call without callee: {instr}")
        arg_slots = tuple(self.slot(s.name) for s in instr.srcs)
        if instr.dest is not None:
            return CallSite(instr.callee, arg_slots,
                            self.slot(instr.dest.name),
                            f"void call assigned: {instr}")
        return CallSite(instr.callee, arg_slots, -1, None)

    def _translate_term(self, instr: Instr, labels):
        opcode = instr.opcode
        try:
            if opcode is Opcode.BR:
                return _mk_br(self.slot(instr.srcs[0].name),
                              labels[instr.targets[0]],
                              labels[instr.targets[1]])
            if opcode is Opcode.JMP:
                return _mk_jmp(labels[instr.targets[0]])
        except (KeyError, IndexError) as exc:
            raise Untranslatable(f"bad branch target in {instr}") from exc
        # RET
        if instr.srcs:
            return _mk_ret(self.slot(instr.srcs[0].name))
        return _mk_ret(None)

    def _translate_op(self, instr: Instr):
        opcode = instr.opcode
        s = instr.srcs
        dst = self.slot(instr.dest.name) if instr.dest is not None else None

        if opcode is Opcode.CONST:
            if instr.elem is ScalarType.F64:
                value: int | float = float(instr.imm)
            elif instr.elem is ScalarType.I64 or instr.elem is ScalarType.REF:
                value = wrap_u64(int(instr.imm))
            else:
                value = wrap_u64(sign_extend(int(instr.imm), 32))
            return _mk_const(dst, value)

        if opcode is Opcode.MOV:
            return _mk_mov(dst, self.slot(s[0].name))

        if opcode in _EXTEND_WIDTH:
            width = _EXTEND_WIDTH[opcode]
            mask = (1 << width) - 1
            return _mk_extend(dst, self.slot(s[0].name), mask,
                              1 << (width - 1), _U64 ^ mask)

        if opcode in _ZEXT_WIDTH:
            return _mk_zext(dst, self.slot(s[0].name),
                            (1 << _ZEXT_WIDTH[opcode]) - 1)

        if opcode is Opcode.JUST_EXTENDED:
            return _mk_just_extended(dst, self.slot(s[0].name),
                                     self.check_dummies)

        if opcode is Opcode.TRUNC32:
            return _mk_trunc32(dst, self.slot(s[0].name), self.ideal)

        inline = _INLINE_BINOP32.get(opcode)
        if inline is not None:
            return inline(dst, self.slot(s[0].name), self.slot(s[1].name),
                          self.ideal)

        handler = _INT32_BINOPS.get(opcode)
        if handler is not None:
            return _mk_binop32(dst, self.slot(s[0].name),
                               self.slot(s[1].name), handler, self.ideal)

        handler = _INT64_BINOPS.get(opcode)
        if handler is not None:
            return _mk_binop64(dst, self.slot(s[0].name),
                               self.slot(s[1].name), handler)

        if opcode is Opcode.NEG32:
            return _mk_neg32(dst, self.slot(s[0].name), self.ideal)
        if opcode is Opcode.NOT32:
            return _mk_not32(dst, self.slot(s[0].name), self.ideal)
        if opcode is Opcode.NEG64:
            return _mk_neg64(dst, self.slot(s[0].name))
        if opcode is Opcode.NOT64:
            return _mk_not64(dst, self.slot(s[0].name))

        if opcode is Opcode.CMP32:
            return _mk_cmp32(dst, self.slot(s[0].name), self.slot(s[1].name),
                             instr.cond)
        if opcode is Opcode.CMP64:
            return _mk_cmp64(dst, self.slot(s[0].name), self.slot(s[1].name),
                             instr.cond)
        if opcode is Opcode.CMPF:
            return _mk_cmpf(dst, self.slot(s[0].name), self.slot(s[1].name),
                            instr.cond)

        handler = _FLOAT_OPS.get(opcode)
        if handler is not None:
            text = str(instr)
            if len(s) == 1:
                return _mk_float1(dst, self.slot(s[0].name), handler, text)
            return _mk_float2(dst, self.slot(s[0].name), self.slot(s[1].name),
                              handler, text)

        if opcode is Opcode.I2D or opcode is Opcode.L2D:
            return _mk_i2d(dst, self.slot(s[0].name))
        if opcode is Opcode.D2I:
            return _mk_d2i(dst, self.slot(s[0].name))
        if opcode is Opcode.D2L:
            return _mk_d2l(dst, self.slot(s[0].name))

        if opcode is Opcode.NEWARRAY:
            return _mk_newarray(dst, self.slot(s[0].name), instr.elem)
        if opcode is Opcode.ALOAD:
            kind, bits = _load_ext_params(instr.elem, self.ideal, self.traits)
            return _mk_aload(dst, self.slot(s[0].name), self.slot(s[1].name),
                             kind, bits)
        if opcode is Opcode.ASTORE:
            return _mk_astore(self.slot(s[0].name), self.slot(s[1].name),
                              self.slot(s[2].name))
        if opcode is Opcode.ARRAYLEN:
            return _mk_arraylen(dst, self.slot(s[0].name))

        if opcode is Opcode.GLOAD:
            kind, bits = _load_ext_params(instr.elem, self.ideal, self.traits)
            return _mk_gload(dst, instr.gname, kind, bits)
        if opcode is Opcode.GSTORE:
            return _mk_gstore(self.slot(s[0].name), instr.gname, instr.elem)

        if opcode is Opcode.SINK:
            return _mk_sink(self.slot(s[0].name), s[0].type)
        if opcode is Opcode.NOP:
            return _mk_nop()

        raise Untranslatable(f"unsupported opcode {opcode} in {instr}")


def translate_function(func: Function, *, ideal: bool,
                       traits: MachineTraits,
                       check_dummies: bool = True,
                       layout: tuple[str, ...] | None = None,
                       ) -> TranslatedFunction:
    """Compile one function to threaded code.

    ``layout`` optionally reorders block emission (profile-guided: hot
    successors adjacent — see :mod:`repro.interp.layout`); semantics are
    unaffected because branch targets are index-resolved against the
    same order.  Raises :class:`Untranslatable` for anything the
    translator cannot prove it compiles faithfully; all unexpected
    errors are wrapped so a translator bug degrades to the reference
    engine, never to a crash.
    """
    try:
        return _Translator(func, ideal, traits, check_dummies,
                           layout).translate()
    except Untranslatable:
        raise
    except Exception as exc:
        raise Untranslatable(f"{func.name}: {exc!r}") from exc


# -- translation cache --------------------------------------------------------

def _traits_key(traits: MachineTraits):
    return (traits.name, tuple(sorted(
        (t.value, e.value) for t, e in traits.load_ext.items()
    )))


def function_digest(func: Function) -> str:
    """Content address of one function: SHA-256 over its printed IR.

    Shared by the closure :class:`TranslationCache` and the codegen
    tier's generated-source cache so both key on the same identity.
    """
    return hashlib.sha256(
        format_function(func).encode("utf-8")
    ).hexdigest()


class TranslationCache:
    """Content-addressed LRU cache of translated functions.

    Keyed by the SHA-256 of the function's printed IR plus the
    translation mode — never by object identity — so the 12 variant
    clones of a bench grid or a driver-cache-restored program all share
    one translation.  Failed translations are negative-cached as
    ``None`` so fallback functions do not retry on every run.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, TranslatedFunction | None] = \
            OrderedDict()
        # The default cache is shared process-wide; `repro serve` runs
        # executions on a thread pool, so lookups/inserts must not race.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def _key(self, func: Function, ideal: bool, traits: MachineTraits,
             check_dummies: bool,
             layout: tuple[str, ...] | None = None) -> tuple:
        return (function_digest(func), ideal, _traits_key(traits),
                check_dummies, layout)

    def get_or_translate(self, func: Function, *, ideal: bool,
                         traits: MachineTraits,
                         check_dummies: bool = True,
                         layout: tuple[str, ...] | None = None
                         ) -> TranslatedFunction | None:
        # Normalising first keeps the key stable: a stale or
        # source-order layout collapses to ``None`` and shares the
        # unprofiled entry instead of duplicating it.
        layout = normalize_layout(func, layout)
        key = self._key(func, ideal, traits, check_dummies, layout)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        # Translation itself runs outside the lock: two threads may
        # translate the same function concurrently (last insert wins),
        # but neither ever observes a half-built entry.
        try:
            translated = translate_function(
                func, ideal=ideal, traits=traits,
                check_dummies=check_dummies, layout=layout,
            )
        except Untranslatable:
            translated = None
        with self._lock:
            self._entries[key] = translated
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return translated

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "translate.hits": self.hits,
            "translate.misses": self.misses,
            "translate.entries": len(self._entries),
        }


_DEFAULT_CACHE = TranslationCache()


def default_translation_cache() -> TranslationCache:
    """The process-wide cache shared by every ClosureInterpreter."""
    return _DEFAULT_CACHE
