"""Profile-guided block layout for the translated engines.

Both the closure translator and the codegen tier emit a function's
blocks in an *emission order* that defaults to source order.  Given an
edge profile — ``{(src label, dst label): taken count}`` from a live
:class:`~repro.analysis.frequency.BranchProfile` or a PR-6
``*.profile.json`` artifact — :func:`order_blocks` computes an order
that chains each block's hottest successor immediately after it, so

* the codegen dispatch loop takes its fall-through path (no rescan of
  the ``if _b == k`` chain) on the hot edge, and
* hot blocks sit early in the chain, keeping the rescan after a
  backward branch short.

The layout is *advisory*: :func:`~repro.interp.translate.normalize_layout`
drops stale labels and forces the entry block first, so a profile
recorded against a different program revision degrades to source order
instead of breaking translation.  Semantics never depend on the order —
branch targets are index-resolved against whatever order was emitted.
"""

from __future__ import annotations

from pathlib import Path

from ..ir.function import Function, Program
from .translate import normalize_layout

__all__ = [
    "layout_from_branch_profiles",
    "load_layout_profiles",
    "order_blocks",
    "program_layouts",
]

#: ``{function name: {(src label, dst label): taken count}}`` — the
#: engine-facing shape of an edge profile, however it was collected.
EdgeProfiles = "dict[str, dict[tuple[str, str], int]]"


def order_blocks(func: Function,
                 edge_counts: dict[tuple[str, str], int] | None,
                 ) -> tuple[str, ...] | None:
    """Greedy hot-path chaining of ``func``'s blocks.

    Starting from the entry, repeatedly append the hottest not-yet-placed
    successor of the last placed block; when the chain dies (no unplaced
    successor was ever taken), restart it at the hottest unplaced block.
    Ties and unobserved blocks break deterministically by source order.
    Returns ``None`` when there is no profile or the result is source
    order (the no-op case keeps translation-cache keys stable).
    """
    if not edge_counts:
        return None
    source_order = [block.label for block in func.blocks]
    known = set(source_order)
    position = {label: i for i, label in enumerate(source_order)}
    successors: dict[str, dict[str, int]] = {}
    incoming: dict[str, int] = {}
    for (src, dst), count in edge_counts.items():
        if src not in known or dst not in known or count <= 0:
            continue
        successors.setdefault(src, {})[dst] = (
            successors.setdefault(src, {}).get(dst, 0) + count
        )
        incoming[dst] = incoming.get(dst, 0) + count

    placed: list[str] = []
    placed_set: set[str] = set()

    def place(label: str) -> None:
        placed.append(label)
        placed_set.add(label)

    def hottest_successor(label: str) -> str | None:
        candidates = [
            (count, position[dst], dst)
            for dst, count in successors.get(label, {}).items()
            if dst not in placed_set
        ]
        if not candidates:
            return None
        # hottest first; source order breaks count ties
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return candidates[0][2]

    place(source_order[0])
    while len(placed) < len(source_order):
        nxt = hottest_successor(placed[-1])
        if nxt is None:
            # chain died: restart at the hottest unplaced block
            remaining = [label for label in source_order
                         if label not in placed_set]
            remaining.sort(
                key=lambda label: (-incoming.get(label, 0), position[label])
            )
            nxt = remaining[0]
        place(nxt)
    return normalize_layout(func, tuple(placed))


def program_layouts(program: Program,
                    edge_profiles: dict[str, dict[tuple[str, str], int]],
                    ) -> dict[str, tuple[str, ...]]:
    """Per-function layouts for every profiled function of ``program``."""
    layouts: dict[str, tuple[str, ...]] = {}
    for name, func in program.functions.items():
        layout = order_blocks(func, edge_profiles.get(name))
        if layout is not None:
            layouts[name] = layout
    return layouts


def layout_from_branch_profiles(profiles) -> dict[str, dict[tuple[str, str], int]]:
    """Edge profiles from live :class:`BranchProfile` objects.

    Accepts the ``{function name: BranchProfile}`` shape produced by
    :func:`repro.interp.profiler.collect_branch_profiles` (and by
    ``ExecutionProfile.branch_profiles()``).
    """
    return {
        name: dict(profile.edge_counts)
        for name, profile in profiles.items()
        if profile.edge_counts
    }


def load_layout_profiles(path: str | Path) -> dict[str, dict[tuple[str, str], int]]:
    """Edge profiles from PR-6 ``*.profile.json`` artifacts.

    ``path`` may be one artifact or a directory of them; a directory's
    artifacts are merged edge by edge (summing counts), which lets a
    bench sweep's per-cell artifacts feed one layout.
    """
    from ..profile import load_profile

    path = Path(path)
    files = (sorted(path.glob("*.profile.json")) if path.is_dir()
             else [path])
    merged: dict[str, dict[tuple[str, str], int]] = {}
    for file in files:
        profile = load_profile(file)
        for func in profile.functions:
            if not func.edges:
                continue
            edges = merged.setdefault(func.name, {})
            for key, count in func.edges.items():
                edges[key] = edges.get(key, 0) + count
    return merged
