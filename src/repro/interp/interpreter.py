"""An interpreter with machine-faithful 64-bit register semantics.

Two modes:

* ``machine`` (default) — executes converted IR the way the target CPU
  would: every register is 64 bits wide, 32-bit arithmetic is performed
  full-width (upper bits flow through uncorrected), ``extend``
  materializes the sign extension, conversions and effective addresses
  consume full registers.  Running optimized and unoptimized code in
  this mode and comparing observable behaviour (the SINK checksum,
  return values, traps) is the soundness oracle for the whole repo.
* ``ideal`` — canonicalizes every narrow result automatically.  This is
  the semantics of *pre-conversion* IR (where each ``i32`` register
  conceptually holds a true 32-bit value); used to produce gold outputs
  and to test the frontend independently of conversion.

The interpreter also collects the paper's measurements: dynamic counts
of remaining sign extensions (Tables 1 and 2), per-site execution counts
for the cycle cost model (Figures 13 and 14), and branch profiles for
order determination (Section 2.2).
"""

from __future__ import annotations

import math
import struct
import sys
from dataclasses import dataclass, field

from ..ir.function import Function, Program
from ..ir.instruction import Instr
from ..ir.opcodes import Cond, Opcode
from ..ir.types import ScalarType, low32, sign_extend, wrap_u64
from ..machine.model import IA64, LoadExt, MachineTraits
from .memory import ArrayObject, FuelExhausted, Heap, MemoryFault, Trap

U64 = 0xFFFF_FFFF_FFFF_FFFF
_FNV_PRIME = 1099511628211

#: Maximum interpreted call depth before ``StackOverflowError``.  Both
#: engines enforce the same limit with the same trap message.
DEFAULT_MAX_CALL_DEPTH = 512


def stack_overflow_trap(limit: int) -> Trap:
    """The trap a too-deep interpreted call raises, in both engines."""
    return Trap(f"StackOverflowError: call depth exceeded {limit} frames")


def _ensure_recursion_headroom(max_call_depth: int) -> None:
    """Raise CPython's recursion limit so the interpreter's own depth
    limit trips first.

    Each interpreted frame costs a handful of Python frames (``_call``
    plus ``_execute`` in the reference engine, one frame-loop call in
    the closure engine); without headroom a deep interpreted recursion
    would surface as ``RecursionError`` before reaching
    ``max_call_depth``.  The limit is only ever raised, never lowered.
    """
    needed = max_call_depth * 6 + 256
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)

_EXTEND_WIDTH = {Opcode.EXTEND8: 8, Opcode.EXTEND16: 16, Opcode.EXTEND32: 32}
_ZEXT_WIDTH = {Opcode.ZEXT8: 8, Opcode.ZEXT16: 16, Opcode.ZEXT32: 32}


@dataclass
class ExecResult:
    """Everything observed during one execution."""

    checksum: int
    ret_value: int | float | None
    steps: int
    #: dynamic executions of explicit sign extensions, by source width
    extend_counts: dict[int, int]
    #: instruction uid -> dynamic execution count (for the cost model)
    site_counts: dict[int, int]
    #: opcode -> dynamic execution count
    opcode_counts: dict[Opcode, int]
    #: per-function branch profiles: func name -> {(block, succ): count}
    profiles: dict[str, dict[tuple[str, str], int]]

    @property
    def extends32(self) -> int:
        return self.extend_counts.get(32, 0)

    @property
    def total_extends(self) -> int:
        return sum(self.extend_counts.values())

    def observable(self) -> tuple[int, int | float | None]:
        """The behaviour that must be preserved by optimization."""
        return (self.checksum, self.ret_value)


@dataclass
class _Frame:
    func: Function
    regs: dict[str, int | float]
    block_label: str
    position: int
    ret_dest: str | None  # register name in the caller


class Interpreter:
    """Executes one program.  Create a fresh instance per run."""

    def __init__(
        self,
        program: Program,
        *,
        traits: MachineTraits = IA64,
        mode: str = "machine",
        fuel: int = 50_000_000,
        collect_profile: bool = False,
        check_dummies: bool = True,
        metrics=None,
        max_call_depth: int = DEFAULT_MAX_CALL_DEPTH,
    ) -> None:
        if mode not in ("machine", "ideal"):
            raise ValueError(f"unknown mode: {mode}")
        self.program = program
        self.traits = traits
        self.ideal = mode == "ideal"
        self.fuel = fuel
        self.collect_profile = collect_profile
        self.check_dummies = check_dummies
        self.max_call_depth = max_call_depth
        self.call_depth = 0
        _ensure_recursion_headroom(max_call_depth)
        #: optional repro.telemetry.MetricsRegistry; runtime counters
        #: are flushed into it once at the end of run() (zero per-step
        #: overhead, the hot loop never consults it)
        self.metrics = metrics

        self.heap = Heap()
        self.globals: dict[str, int | float] = {
            g.name: (float(g.initial) if g.type is ScalarType.F64
                     else int(g.initial))
            for g in program.globals.values()
        }
        self.checksum = 0
        self.steps = 0
        self.extend_counts: dict[int, int] = {8: 0, 16: 0, 32: 0}
        self.site_counts: dict[int, int] = {}
        self.opcode_counts: dict[Opcode, int] = {}
        self.profiles: dict[str, dict[tuple[str, str], int]] = {}
        #: func name -> {block label: dynamic entry count}.  Mirrors the
        #: closure engine's fold-on-success counters; only maintained
        #: when ``collect_profile`` is on (the per-step loop is
        #: untouched otherwise — see docs/PROFILING.md on overhead).
        self.block_entries: dict[str, dict[str, int]] = {}

    # -- public API ---------------------------------------------------------

    def run(self, func_name: str = "main",
            args: tuple[int | float, ...] = ()) -> ExecResult:
        func = self.program.function(func_name)
        ret = self._call(func, args)
        result = self._build_result(ret)
        if self.metrics is not None:
            self._flush_metrics(result)
        return result

    def _build_result(self, ret: int | float | None) -> ExecResult:
        """An immutable snapshot of this run's counters.

        Every dict is copied (profiles one level deep): a result must
        not alias live interpreter state, or a later run — or a caller
        mutating the result — silently corrupts it.
        """
        return ExecResult(
            checksum=self.checksum,
            ret_value=ret,
            steps=self.steps,
            extend_counts=dict(self.extend_counts),
            site_counts=dict(self.site_counts),
            opcode_counts=dict(self.opcode_counts),
            profiles={name: dict(edges)
                      for name, edges in self.profiles.items()},
        )

    def _flush_metrics(self, result: ExecResult) -> None:
        """Dump one run's dynamic counters into the metrics sink."""
        metrics = self.metrics
        for width, count in result.extend_counts.items():
            if count:
                metrics.counter("runtime.extends", width=width).inc(count)
        for opcode, count in result.opcode_counts.items():
            metrics.counter("runtime.opcodes", op=opcode.value).inc(count)
        metrics.counter("runtime.steps").inc(result.steps)
        metrics.gauge("runtime.fuel_remaining").set(
            max(0, self.fuel - result.steps)
        )
        metrics.histogram("runtime.site_exec_counts").merge(
            _site_histogram(result.site_counts)
        )

    # -- execution core ---------------------------------------------------------

    def _call(self, func: Function, args: tuple[int | float, ...]) -> int | float | None:
        if len(args) != len(func.params):
            raise Trap(
                f"arity mismatch calling {func.name}: got {len(args)} args"
            )
        depth = self.call_depth + 1
        if depth > self.max_call_depth:
            raise stack_overflow_trap(self.max_call_depth)
        regs: dict[str, int | float] = {}
        for param, value in zip(func.params, args):
            if param.type is ScalarType.F64:
                regs[param.name] = float(value)
            else:
                regs[param.name] = wrap_u64(int(value))
        self.call_depth = depth
        try:
            return self._execute(func, regs)
        finally:
            self.call_depth = depth - 1

    def _execute(self, func: Function, regs: dict[str, int | float]):
        block = func.entry
        position = 0
        instrs = block.instrs
        profile = None
        entries = None
        if self.collect_profile:
            profile = self.profiles.setdefault(func.name, {})
            entries = self.block_entries.setdefault(func.name, {})
            entries[block.label] = entries.get(block.label, 0) + 1

        while True:
            if position >= len(instrs):
                raise Trap(f"fell off block {block.label} in {func.name}")
            instr = instrs[position]
            self.steps += 1
            if self.steps > self.fuel:
                raise FuelExhausted(f"exceeded {self.fuel} steps")
            self.site_counts[instr.uid] = self.site_counts.get(instr.uid, 0) + 1
            self.opcode_counts[instr.opcode] = (
                self.opcode_counts.get(instr.opcode, 0) + 1
            )

            opcode = instr.opcode
            # -- control flow first ------------------------------------
            if opcode is Opcode.BR:
                taken = low32(int(regs[instr.srcs[0].name])) != 0
                target = instr.targets[0] if taken else instr.targets[1]
                if profile is not None:
                    key = (block.label, target)
                    profile[key] = profile.get(key, 0) + 1
                    entries[target] = entries.get(target, 0) + 1
                block = func.block(target)
                instrs = block.instrs
                position = 0
                continue
            if opcode is Opcode.JMP:
                target = instr.targets[0]
                if profile is not None:
                    key = (block.label, target)
                    profile[key] = profile.get(key, 0) + 1
                    entries[target] = entries.get(target, 0) + 1
                block = func.block(target)
                instrs = block.instrs
                position = 0
                continue
            if opcode is Opcode.RET:
                if instr.srcs:
                    return regs[instr.srcs[0].name]
                return None
            if opcode is Opcode.CALL:
                callee = self.program.function(instr.callee)
                call_args = tuple(regs[s.name] for s in instr.srcs)
                result = self._call(callee, call_args)
                if instr.dest is not None:
                    if result is None:
                        raise Trap(f"void call assigned: {instr}")
                    regs[instr.dest.name] = result
                position += 1
                continue

            self._step(instr, regs)
            position += 1

    # -- single instruction ---------------------------------------------------

    def _step(self, instr: Instr, regs: dict[str, int | float]) -> None:
        opcode = instr.opcode
        s = instr.srcs

        if opcode is Opcode.CONST:
            if instr.elem is ScalarType.F64:
                value: int | float = float(instr.imm)
            elif instr.elem is ScalarType.I64 or instr.elem is ScalarType.REF:
                value = wrap_u64(int(instr.imm))
            else:
                value = wrap_u64(sign_extend(int(instr.imm), 32))
            regs[instr.dest.name] = value
            return

        if opcode is Opcode.MOV:
            regs[instr.dest.name] = regs[s[0].name]
            return

        if opcode in _EXTEND_WIDTH:
            width = _EXTEND_WIDTH[opcode]
            self.extend_counts[width] += 1
            regs[instr.dest.name] = wrap_u64(
                sign_extend(int(regs[s[0].name]), width)
            )
            return

        if opcode in _ZEXT_WIDTH:
            width = _ZEXT_WIDTH[opcode]
            regs[instr.dest.name] = int(regs[s[0].name]) & ((1 << width) - 1)
            return

        if opcode is Opcode.JUST_EXTENDED:
            value = int(regs[s[0].name])
            if self.check_dummies and wrap_u64(sign_extend(value, 32)) != value:
                raise MemoryFault(
                    f"just_extended marker saw a non-canonical value "
                    f"0x{value:016x} — unsound elimination"
                )
            regs[instr.dest.name] = value
            return

        if opcode is Opcode.TRUNC32:
            regs[instr.dest.name] = int(regs[s[0].name])
            if self.ideal:
                regs[instr.dest.name] = wrap_u64(
                    sign_extend(int(regs[instr.dest.name]), 32)
                )
            return

        handler = _INT32_BINOPS.get(opcode)
        if handler is not None:
            a = int(regs[s[0].name])
            b = int(regs[s[1].name])
            result = handler(a, b)
            if self.ideal:
                result = wrap_u64(sign_extend(result, 32))
            regs[instr.dest.name] = result
            return

        handler = _INT64_BINOPS.get(opcode)
        if handler is not None:
            a = int(regs[s[0].name])
            b = int(regs[s[1].name])
            regs[instr.dest.name] = handler(a, b)
            return

        if opcode is Opcode.NEG32:
            result = wrap_u64(-int(regs[s[0].name]))
            if self.ideal:
                result = wrap_u64(sign_extend(result, 32))
            regs[instr.dest.name] = result
            return
        if opcode is Opcode.NOT32:
            result = wrap_u64(~int(regs[s[0].name]))
            if self.ideal:
                result = wrap_u64(sign_extend(result, 32))
            regs[instr.dest.name] = result
            return
        if opcode is Opcode.NEG64:
            regs[instr.dest.name] = wrap_u64(-int(regs[s[0].name]))
            return
        if opcode is Opcode.NOT64:
            regs[instr.dest.name] = wrap_u64(~int(regs[s[0].name]))
            return

        if opcode is Opcode.CMP32:
            a = int(regs[s[0].name])
            b = int(regs[s[1].name])
            if instr.cond.is_unsigned:
                regs[instr.dest.name] = int(
                    _compare(low32(a), low32(b), instr.cond)
                )
            else:
                regs[instr.dest.name] = int(
                    _compare(sign_extend(a, 32), sign_extend(b, 32), instr.cond)
                )
            return
        if opcode is Opcode.CMP64:
            a = int(regs[s[0].name])
            b = int(regs[s[1].name])
            if instr.cond.is_unsigned:
                regs[instr.dest.name] = int(_compare(a, b, instr.cond))
            else:
                regs[instr.dest.name] = int(
                    _compare(sign_extend(a, 64), sign_extend(b, 64), instr.cond)
                )
            return
        if opcode is Opcode.CMPF:
            a = float(regs[s[0].name])
            b = float(regs[s[1].name])
            regs[instr.dest.name] = int(_compare(a, b, instr.cond))
            return

        handler = _FLOAT_OPS.get(opcode)
        if handler is not None:
            operands = [float(regs[src.name]) for src in s]
            try:
                regs[instr.dest.name] = handler(*operands)
            except (ValueError, OverflowError) as exc:
                raise Trap(f"floating point error in {instr}: {exc}") from exc
            return

        if opcode is Opcode.I2D:
            regs[instr.dest.name] = float(sign_extend(int(regs[s[0].name]), 64))
            return
        if opcode is Opcode.L2D:
            regs[instr.dest.name] = float(sign_extend(int(regs[s[0].name]), 64))
            return
        if opcode is Opcode.D2I:
            regs[instr.dest.name] = wrap_u64(
                sign_extend(_java_d2i(float(regs[s[0].name])), 32)
            )
            return
        if opcode is Opcode.D2L:
            regs[instr.dest.name] = wrap_u64(_java_d2l(float(regs[s[0].name])))
            return

        if opcode is Opcode.NEWARRAY:
            length = sign_extend(int(regs[s[0].name]), 64)
            regs[instr.dest.name] = self.heap.allocate(instr.elem, length)
            return
        if opcode is Opcode.ALOAD:
            array = self.heap.deref(int(regs[s[0].name]))
            index = self.heap.checked_index(array, int(regs[s[1].name]))
            regs[instr.dest.name] = self._extend_loaded(
                self.heap.load_raw(array, index), instr.elem
            )
            return
        if opcode is Opcode.ASTORE:
            array = self.heap.deref(int(regs[s[0].name]))
            index = self.heap.checked_index(array, int(regs[s[1].name]))
            self.heap.store(array, index, regs[s[2].name])
            return
        if opcode is Opcode.ARRAYLEN:
            array = self.heap.deref(int(regs[s[0].name]))
            regs[instr.dest.name] = array.length
            return

        if opcode is Opcode.GLOAD:
            raw = self.globals[instr.gname]
            regs[instr.dest.name] = self._extend_loaded(raw, instr.elem)
            return
        if opcode is Opcode.GSTORE:
            value = regs[s[0].name]
            elem = instr.elem
            if elem is ScalarType.F64:
                self.globals[instr.gname] = float(value)
            else:
                self.globals[instr.gname] = int(value) & ((1 << elem.bits) - 1)
            return

        if opcode is Opcode.SINK:
            self._sink(regs[s[0].name], s[0].type)
            return
        if opcode is Opcode.NOP:
            return

        raise Trap(f"unhandled opcode {opcode} in {instr}")

    # -- helpers ---------------------------------------------------------------

    def _extend_loaded(self, raw: int | float, elem: ScalarType) -> int | float:
        if elem is ScalarType.F64:
            return float(raw)
        raw = int(raw)
        if elem is ScalarType.REF or elem is ScalarType.I64:
            return wrap_u64(raw)
        if self.ideal:
            if elem.signed:
                return wrap_u64(sign_extend(raw, elem.bits))
            return raw & 0xFFFF
        ext = self.traits.load_extension(elem)
        if ext is LoadExt.SIGN:
            return wrap_u64(sign_extend(raw, elem.bits))
        return raw & ((1 << elem.bits) - 1)

    def _sink(self, value: int | float, type_: ScalarType) -> None:
        if type_ is ScalarType.F64:
            bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        else:
            bits = wrap_u64(int(value))
        self.checksum = ((self.checksum ^ bits) * _FNV_PRIME) & U64


def _site_histogram(site_counts: dict[int, int]):
    """Distribution of per-site execution counts (how hot is hot)."""
    from ..telemetry.metrics import Histogram

    histogram = Histogram()
    for count in site_counts.values():
        histogram.observe(count)
    return histogram


def _compare(a, b, cond: Cond) -> bool:
    if cond is Cond.EQ:
        return a == b
    if cond is Cond.NE:
        return a != b
    if cond in (Cond.LT, Cond.ULT):
        return a < b
    if cond in (Cond.LE, Cond.ULE):
        return a <= b
    if cond in (Cond.GT, Cond.UGT):
        return a > b
    return a >= b


def _java_idiv(a: int, b: int) -> int:
    """Truncating division on the signed-64 interpretations.

    Inputs are raw u64 register values; the quotient's low 32 bits equal
    the Java ``int`` result whenever the inputs are canonical.
    """
    sa = sign_extend(a, 64)
    sb = sign_extend(b, 64)
    if sb == 0:
        raise Trap("ArithmeticException: / by zero")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return wrap_u64(quotient)


def _java_irem(a: int, b: int) -> int:
    sa = sign_extend(a, 64)
    sb = sign_extend(b, 64)
    if sb == 0:
        raise Trap("ArithmeticException: % by zero")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return wrap_u64(remainder)


def _java_d2i(value: float) -> int:
    if math.isnan(value):
        return 0
    if value >= 2147483647.0:
        return 2147483647
    if value <= -2147483648.0:
        return -2147483648
    return int(value)


def _java_d2l(value: float) -> int:
    if math.isnan(value):
        return 0
    if value >= 9223372036854775807.0:
        return 9223372036854775807
    if value <= -9223372036854775808.0:
        return -9223372036854775808
    return int(value)


_INT32_BINOPS = {
    Opcode.ADD32: lambda a, b: wrap_u64(a + b),
    Opcode.SUB32: lambda a, b: wrap_u64(a - b),
    Opcode.MUL32: lambda a, b: wrap_u64(a * b),
    Opcode.DIV32: _java_idiv,
    Opcode.REM32: _java_irem,
    Opcode.AND32: lambda a, b: a & b,
    Opcode.OR32: lambda a, b: a | b,
    Opcode.XOR32: lambda a, b: a ^ b,
    Opcode.SHL32: lambda a, b: wrap_u64(a << (b & 31)),
    # PPC64 ``sraw`` semantics: shift the low word, sign-extend the result.
    Opcode.SHR32: lambda a, b: wrap_u64(sign_extend(a, 32) >> (b & 31)),
    Opcode.USHR32: lambda a, b: low32(a) >> (b & 31),
}

_INT64_BINOPS = {
    Opcode.ADD64: lambda a, b: wrap_u64(a + b),
    Opcode.SUB64: lambda a, b: wrap_u64(a - b),
    Opcode.MUL64: lambda a, b: wrap_u64(a * b),
    Opcode.DIV64: _java_idiv,
    Opcode.REM64: _java_irem,
    Opcode.AND64: lambda a, b: a & b,
    Opcode.OR64: lambda a, b: a | b,
    Opcode.XOR64: lambda a, b: a ^ b,
    Opcode.SHL64: lambda a, b: wrap_u64(a << (b & 63)),
    Opcode.SHR64: lambda a, b: wrap_u64(sign_extend(a, 64) >> (b & 63)),
    Opcode.USHR64: lambda a, b: a >> (b & 63),
}

_FLOAT_OPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: _fdiv(a, b),
    Opcode.FREM: lambda a, b: math.fmod(a, b) if b != 0.0 else float("nan"),
    Opcode.FNEG: lambda a: -a,
    Opcode.FSQRT: lambda a: math.sqrt(a) if a >= 0.0 else float("nan"),
    Opcode.FSIN: math.sin,
    Opcode.FCOS: math.cos,
    Opcode.FEXP: math.exp,
    Opcode.FLOG: lambda a: math.log(a) if a > 0.0 else float("nan"),
    Opcode.FABS: abs,
    Opcode.FFLOOR: lambda a: float(math.floor(a)),
    Opcode.FPOW: lambda a, b: math.pow(a, b),
}


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        return math.copysign(float("inf"), a) * math.copysign(1.0, b)
    return a / b
