"""Simulated heap: Java-style arrays with bounds-checked access.

Bounds checks use 32-bit unsigned compares (both IA64 and PPC64 have
them, which is what makes the paper's array theorems free); the
*effective address*, however, is formed from the full 64-bit index
register, exactly as ``shladd``/``rldic`` would.  A register whose upper
32 bits are wrong therefore faults the access even when its low 32 bits
pass the bounds check — this is how unsound sign-extension elimination
is detected by the simulator instead of silently tolerated.
"""

from __future__ import annotations

from ..ir.types import ScalarType, low32


class SimError(Exception):
    """Base class for simulated execution errors."""


class Trap(SimError):
    """A language-level exception (bounds, div-by-zero, negative size)."""


class MemoryFault(SimError):
    """A wild effective address: the signature of an unsound optimization."""


class FuelExhausted(SimError):
    """The step budget ran out."""


#: Allocation cap, to catch corrupted lengths early.
MAX_ALLOC_ELEMENTS = 1 << 26

_ELEM_MASK = {
    ScalarType.I8: 0xFF,
    ScalarType.I16: 0xFFFF,
    ScalarType.U16: 0xFFFF,
    ScalarType.I32: 0xFFFF_FFFF,
    ScalarType.I64: 0xFFFF_FFFF_FFFF_FFFF,
}


class ArrayObject:
    """One simulated array: raw cells of ``elem`` width."""

    __slots__ = ("elem", "cells")

    def __init__(self, elem: ScalarType, length: int) -> None:
        self.elem = elem
        fill: int | float = 0.0 if elem is ScalarType.F64 else 0
        self.cells: list[int | float] = [fill] * length

    @property
    def length(self) -> int:
        return len(self.cells)


class Heap:
    """All arrays allocated during one execution."""

    def __init__(self) -> None:
        self._arrays: list[ArrayObject] = []

    def allocate(self, elem: ScalarType, length: int) -> int:
        """Allocate and return a non-zero reference (0 is null)."""
        if length < 0:
            raise Trap(f"NegativeArraySizeException: {length}")
        if length > MAX_ALLOC_ELEMENTS:
            raise Trap(f"OutOfMemoryError: array length {length}")
        self._arrays.append(ArrayObject(elem, length))
        return len(self._arrays)

    def deref(self, ref: int) -> ArrayObject:
        if ref == 0:
            raise Trap("NullPointerException")
        if not 1 <= ref <= len(self._arrays):
            raise MemoryFault(f"dangling array reference {ref}")
        return self._arrays[ref - 1]

    def checked_index(self, array: ArrayObject, index_register: int) -> int:
        """Bounds-check with a 32-bit compare, then form the effective
        address from the full register.  Returns the element index.
        """
        checked = low32(index_register)
        if checked >= array.length:  # unsigned compare covers negatives
            raise Trap(
                f"ArrayIndexOutOfBoundsException: {checked} "
                f"(length {array.length})"
            )
        if index_register >> 32:
            raise MemoryFault(
                "effective address formed from a non-zero-extended index "
                f"register: 0x{index_register:016x} (checked index {checked})"
            )
        return checked

    def store(self, array: ArrayObject, index: int, value: int | float) -> None:
        if array.elem is ScalarType.F64:
            array.cells[index] = float(value)
        elif array.elem is ScalarType.REF:
            array.cells[index] = int(value)
        else:
            array.cells[index] = int(value) & _ELEM_MASK[array.elem]

    def load_raw(self, array: ArrayObject, index: int) -> int | float:
        return array.cells[index]
