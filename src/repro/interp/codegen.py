"""Python-source codegen: one tier beyond closures.

The closure engine (:mod:`repro.interp.translate`) removed dispatch and
register-name lookup, but still pays one Python call per IR op.  This
module removes that too, in the superinstruction tradition of OCAMLJIT2:
each translated IR function becomes one generated Python ``def`` whose

* registers are plain local variables (``r0`` … ``rN``, positionally
  identical to the closure engine's flat slot list),
* opcode semantics are inlined statements — no per-op closure calls,
* immediates, traits-resolved load extensions, and the ideal/machine
  mode are burned in as literals,
* adjacent pairs are fused into superinstructions: any *pure* producer
  whose destination is read exactly once function-wide, by the
  immediately following instruction, is inlined into that consumer's
  expression (``cmp``+``br`` becomes a native ``if a < b:``,
  ``add``+``store`` a single statement, ``sext``+use an inline
  canonicalization), and
* blocks are emitted in profile-guided order so hot successors take the
  dispatch loop's fall-through path.

The source is ``compile()``d under a stable synthetic filename that is
registered in :mod:`linecache`, so tracebacks out of generated code show
real generated lines.

Equivalence with the closure engine (and therefore with the reference
interpreter) is exact, not approximate:

* **Fuel** uses the same per-CALL-boundary segments with the same static
  step counts.  When a segment pre-check trips, the generated code hands
  the closure translation's op list for that segment — plus a
  positionally identical register list — to
  ``ClosureInterpreter._fuel_out``, which replays exactly the
  instructions the reference would still have executed.  The pre-check
  fires *before* any op of the segment ran, so fused producers that
  never materialized their destination are re-executed by the replay
  closures.
* **Counting** uses the same fold-on-success block-entry counters (the
  generated frame increments the same per-function entry arrays), so
  ``ExecResult`` site/opcode/extend counts and branch profiles are
  bit-identical.
* **Traps** carry the same messages, raised at the same points; fusion
  only ever inlines producers that cannot raise.

A function the emitter cannot compile falls back to the closure engine
(and, below that, to the reference loop) per function.  Generated code
is cached content-addressed in :class:`CodegenCache`, sharing one
compilation across bench-grid clones exactly like the closure engine's
:class:`~repro.interp.translate.TranslationCache`.
"""

from __future__ import annotations

import builtins
import linecache
import struct
import threading
from collections import OrderedDict

from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Cond, Opcode
from ..ir.types import ScalarType
from ..machine.model import MachineTraits
from .interpreter import (
    _FLOAT_OPS,
    _java_d2i,
    _java_d2l,
    _java_idiv,
    _java_irem,
    stack_overflow_trap,
)
from .memory import MemoryFault, Trap
from .translate import (
    _EXTEND_WIDTH,
    _FILL32,
    _FNV_PRIME,
    _HIGH32,
    _HIGH64,
    _TERMINATORS,
    _U32,
    _U64,
    _ZEXT_WIDTH,
    TERM_CHECKED,
    TERM_INLINE,
    TERM_NONE,
    TranslatedFunction,
    Untranslatable,
    _cut_block,
    _traits_key,
    function_digest,
    normalize_layout,
    translate_function,
)

__all__ = [
    "CodegenCache",
    "GeneratedFunction",
    "default_codegen_cache",
    "generate_source",
]

_IND = "    "

#: Python comparison operator per condition (sign handled by operand
#: preparation, exactly as in the closure factories).
_COND_TEXT = {
    Cond.EQ: "==", Cond.NE: "!=",
    Cond.LT: "<", Cond.ULT: "<",
    Cond.LE: "<=", Cond.ULE: "<=",
    Cond.GT: ">", Cond.UGT: ">",
    Cond.GE: ">=", Cond.UGE: ">=",
}

#: 32-bit binops whose machine-mode semantics inline to one expression.
_SIMPLE32 = {Opcode.ADD32: "+", Opcode.SUB32: "-", Opcode.MUL32: "*"}
_BITWISE32 = {Opcode.AND32: "&", Opcode.OR32: "|", Opcode.XOR32: "^"}
_SIMPLE64 = {Opcode.ADD64: "+", Opcode.SUB64: "-", Opcode.MUL64: "*"}
_BITWISE64 = {Opcode.AND64: "&", Opcode.OR64: "|", Opcode.XOR64: "^"}

#: Float binops inlined as native operators inside the parity
#: try/except (the handlers are ``a + b``-style lambdas).
_FLOAT_INLINE = {Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*"}


def _cg_d2i(value: float) -> int:
    # wrap_u64(sign_extend(_java_d2i(v), 32)) with the composition
    # flattened: _java_d2i is already in [-2**31, 2**31).
    v = _java_d2i(value)
    return v & _U64 if v < 0 else v


def _cg_d2l(value: float) -> int:
    return _java_d2l(value) & _U64


#: Static globals every generated module runs under.  Nothing in here is
#: binding-specific, so one compiled function object is shared by every
#: interpreter (and thread) that executes the same content.
_GEN_GLOBALS: dict[str, object] = {
    "__builtins__": builtins,
    "_U64": _U64,
    "_U32": _U32,
    "_HIGH32": _HIGH32,
    "_HIGH64": _HIGH64,
    "_FILL32": _FILL32,
    "_FNV": _FNV_PRIME,
    "_Trap": Trap,
    "_MemoryFault": MemoryFault,
    "_overflow": stack_overflow_trap,
    "_idiv": _java_idiv,
    "_irem": _java_irem,
    "_d2i": _cg_d2i,
    "_d2l": _cg_d2l,
    "_pack": struct.pack,
    "_unpack": struct.unpack,
}
for _t in ScalarType:
    _GEN_GLOBALS[f"_T_{_t.name}"] = _t
for _op, _handler in _FLOAT_OPS.items():
    _GEN_GLOBALS[f"_fop_{_op.value}"] = _handler
del _t, _op, _handler


# -- operand values -----------------------------------------------------------
#
# An operand is either a live register read ("reg", slot) or a fused
# pure expression ("expr", text, kind).  ``kind`` records what the
# expression is guaranteed to evaluate to, so conversions the closure
# factories apply to a *register read* can be dropped when the value is
# statically known to already have that shape:
#
#   int   — a Python int (all integer producers mask their results)
#   bool  — a comparison result (int subclass with value 0/1)
#   float — a Python float

def _as_int(operand) -> str:
    """The value as the closure's ``int(regs[slot])`` would see it."""
    if operand[0] == "reg":
        return f"int(r{operand[1]})"
    _, text, kind = operand
    if kind == "int" or kind == "bool":
        return text
    return f"int({text})"


def _as_float(operand) -> str:
    """The value as the closure's ``float(regs[slot])`` would see it."""
    if operand[0] == "reg":
        return f"float(r{operand[1]})"
    _, text, kind = operand
    if kind == "float":
        return text
    return f"float({text})"


def _as_raw(operand) -> str:
    """The value exactly as stored in the register (no conversion)."""
    if operand[0] == "reg":
        return f"r{operand[1]}"
    _, text, kind = operand
    if kind == "bool":
        # comparisons are *stored* as int(bool); keep the stored type
        # exact so e.g. a returned value serializes identically
        return f"+{text}"
    return text


class _Emitter:
    """Emits one function's generated Python source.

    Walks the IR in the closure translation's emission order, mirrors
    its segmentation, and produces a module containing a single
    ``def _f(st, args):``.  Raises :class:`Untranslatable` on anything
    it cannot compile faithfully (the engine then keeps the closure
    tier for that function).
    """

    def __init__(self, func: Function, translated: TranslatedFunction, *,
                 ideal: bool, traits: MachineTraits, check_dummies: bool,
                 profiled: bool, layout: tuple[str, ...] | None) -> None:
        self.func = func
        self.translated = translated
        self.ideal = ideal
        self.traits = traits
        self.check_dummies = check_dummies
        self.profiled = profiled
        self.layout = layout
        self.slots = {name: i for i, name in enumerate(translated.slot_names)}
        self.fused = 0
        self._scratch_n = 0
        self._pending: tuple[str, tuple] | None = None
        self._read_counts = self._count_reads()
        self._regs_list = "[" + ", ".join(
            f"r{i}" for i in range(translated.n_slots)
        ) + "]"

    # -- small helpers --------------------------------------------------

    def _slot(self, name: str) -> int:
        try:
            return self.slots[name]
        except KeyError:
            raise Untranslatable(
                f"{self.func.name}: register {name!r} missing from the "
                f"closure translation's slot map"
            ) from None

    def _scratch(self) -> str:
        self._scratch_n += 1
        return f"_w{self._scratch_n}"

    def _count_reads(self) -> dict[str, int]:
        """Function-wide read counts per register name (all sources,
        including terminators and unreachable tails — conservative)."""
        counts: dict[str, int] = {}
        for block in self.func.blocks:
            for instr in block.instrs:
                for src in instr.srcs:
                    counts[src.name] = counts.get(src.name, 0) + 1
        return counts

    def _operand(self, name: str) -> tuple:
        pending = self._pending
        if pending is not None and pending[0] == name:
            self._pending = None
            return pending[1]
        return ("reg", self._slot(name))

    # -- expression builders (pure value producers) ---------------------

    def _canon32(self, masked_expr: str) -> str:
        """Canonicalize a 32-bit-masked int expression to 64 bits —
        the ``(v | _FILL32) if v & _HIGH32 else v`` closure pattern."""
        w = self._scratch()
        return (f"(({w} | _FILL32) if ({w} := {masked_expr}) & _HIGH32 "
                f"else {w})")

    def _signed32(self, operand) -> str:
        w = self._scratch()
        return (f"(({w} - 0x1_0000_0000) if "
                f"({w} := {_as_int(operand)} & _U32) & _HIGH32 else {w})")

    def _signed64(self, int_expr: str) -> str:
        w = self._scratch()
        return (f"(({w} - 0x1_0000_0000_0000_0000) if "
                f"({w} := {int_expr}) & _HIGH64 else {w})")

    def _const_value(self, instr: Instr):
        # mirrors the closure's translate-time constant folding
        from ..ir.types import sign_extend, wrap_u64

        if instr.elem is ScalarType.F64:
            value = float(instr.imm)
            if value != value or value in (float("inf"), float("-inf")):
                return (f'float("{value!r}")', "float")
            return (repr(value), "float")
        if instr.elem is ScalarType.I64 or instr.elem is ScalarType.REF:
            return (hex(wrap_u64(int(instr.imm))), "int")
        return (hex(wrap_u64(sign_extend(int(instr.imm), 32))), "int")

    def _cmp_expr(self, instr: Instr) -> str:
        op = _COND_TEXT[instr.cond]
        a = self._operand(instr.srcs[0].name)
        b = self._operand(instr.srcs[1].name)
        if instr.opcode is Opcode.CMPF:
            return f"({_as_float(a)} {op} {_as_float(b)})"
        if instr.opcode is Opcode.CMP32:
            if instr.cond.is_unsigned:
                return (f"(({_as_int(a)} & _U32) {op} "
                        f"({_as_int(b)} & _U32))")
            return f"({self._signed32(a)} {op} {self._signed32(b)})"
        # CMP64
        if instr.cond.is_unsigned:
            return f"({_as_int(a)} {op} {_as_int(b)})"
        return (f"({self._signed64(_as_int(a))} {op} "
                f"{self._signed64(_as_int(b))})")

    def _value(self, instr: Instr):
        """``(expr, kind, pure)`` for a value-producing instruction, or
        ``None`` when it only exists in statement form.

        ``expr`` evaluates to exactly the value the closure factory
        would store; ``pure`` means it cannot raise and touches no
        interpreter state, which is what fusion requires.
        """
        opcode = instr.opcode
        s = instr.srcs

        if opcode is Opcode.CONST:
            expr, kind = self._const_value(instr)
            return (expr, kind, True)

        if opcode is Opcode.MOV:
            operand = self._operand(s[0].name)
            if operand[0] == "reg":
                return (f"r{operand[1]}", "raw", True)
            return (operand[1], operand[2], True)

        if opcode in _EXTEND_WIDTH:
            width = _EXTEND_WIDTH[opcode]
            mask = (1 << width) - 1
            high = 1 << (width - 1)
            fill = _U64 ^ mask
            a = self._operand(s[0].name)
            w = self._scratch()
            return ((f"(({w} | {fill:#x}) if "
                     f"({w} := {_as_int(a)} & {mask:#x}) & {high:#x} "
                     f"else {w})"), "int", True)

        if opcode in _ZEXT_WIDTH:
            mask = (1 << _ZEXT_WIDTH[opcode]) - 1
            a = self._operand(s[0].name)
            return (f"({_as_int(a)} & {mask:#x})", "int", True)

        if opcode is Opcode.JUST_EXTENDED and not self.check_dummies:
            a = self._operand(s[0].name)
            return (_as_int(a), "int", True)

        if opcode is Opcode.TRUNC32:
            a = self._operand(s[0].name)
            if self.ideal:
                return (self._canon32(f"{_as_int(a)} & _U32"), "int", True)
            return (_as_int(a), "int", True)

        text = _SIMPLE32.get(opcode)
        if text is not None:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            if self.ideal:
                return (self._canon32(
                    f"({_as_int(a)} {text} {_as_int(b)}) & _U32"
                ), "int", True)
            return (f"(({_as_int(a)} {text} {_as_int(b)}) & _U64)",
                    "int", True)

        text = _BITWISE32.get(opcode)
        if text is not None:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            if self.ideal:
                return (self._canon32(
                    f"({_as_int(a)} {text} {_as_int(b)}) & _U32"
                ), "int", True)
            return (f"({_as_int(a)} {text} {_as_int(b)})", "int", True)

        if opcode is Opcode.SHL32:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            expr = f"(({_as_int(a)} << ({_as_int(b)} & 31)) & _U64)"
            if self.ideal:
                return (self._canon32(f"{expr} & _U32"), "int", True)
            return (expr, "int", True)

        if opcode is Opcode.SHR32:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            expr = (f"(({self._signed32(a)} >> ({_as_int(b)} & 31)) "
                    f"& _U64)")
            if self.ideal:
                return (self._canon32(f"{expr} & _U32"), "int", True)
            return (expr, "int", True)

        if opcode is Opcode.USHR32:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            expr = f"(({_as_int(a)} & _U32) >> ({_as_int(b)} & 31))"
            if self.ideal:
                return (self._canon32(f"{expr} & _U32"), "int", True)
            return (expr, "int", True)

        if opcode is Opcode.DIV32 or opcode is Opcode.REM32:
            fn = "_idiv" if opcode is Opcode.DIV32 else "_irem"
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            expr = f"{fn}({_as_int(a)}, {_as_int(b)})"
            if self.ideal:
                return (self._canon32(f"{expr} & _U32"), "int", False)
            return (expr, "int", False)  # traps on zero: never fused

        text = _SIMPLE64.get(opcode)
        if text is not None:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return (f"(({_as_int(a)} {text} {_as_int(b)}) & _U64)",
                    "int", True)

        text = _BITWISE64.get(opcode)
        if text is not None:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return (f"({_as_int(a)} {text} {_as_int(b)})", "int", True)

        if opcode is Opcode.SHL64:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return (f"(({_as_int(a)} << ({_as_int(b)} & 63)) & _U64)",
                    "int", True)

        if opcode is Opcode.SHR64:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return ((f"(({self._signed64(f'{_as_int(a)} & _U64')} >> "
                     f"({_as_int(b)} & 63)) & _U64)"), "int", True)

        if opcode is Opcode.USHR64:
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return (f"({_as_int(a)} >> ({_as_int(b)} & 63))", "int", True)

        if opcode is Opcode.DIV64 or opcode is Opcode.REM64:
            fn = "_idiv" if opcode is Opcode.DIV64 else "_irem"
            a = self._operand(s[0].name)
            b = self._operand(s[1].name)
            return (f"{fn}({_as_int(a)}, {_as_int(b)})", "int", False)

        if opcode is Opcode.NEG32 or opcode is Opcode.NOT32:
            sign = "-" if opcode is Opcode.NEG32 else "~"
            a = self._operand(s[0].name)
            if self.ideal:
                return (self._canon32(f"({sign}{_as_int(a)}) & _U32"),
                        "int", True)
            return (f"(({sign}{_as_int(a)}) & _U64)", "int", True)

        if opcode is Opcode.NEG64 or opcode is Opcode.NOT64:
            sign = "-" if opcode is Opcode.NEG64 else "~"
            a = self._operand(s[0].name)
            return (f"(({sign}{_as_int(a)}) & _U64)", "int", True)

        if opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
            return (self._cmp_expr(instr), "bool", True)

        if opcode is Opcode.I2D or opcode is Opcode.L2D:
            a = self._operand(s[0].name)
            return (f"float({self._signed64(f'{_as_int(a)} & _U64')})",
                    "float", True)

        if opcode is Opcode.D2I:
            a = self._operand(s[0].name)
            return (f"_d2i({_as_float(a)})", "int", True)

        if opcode is Opcode.D2L:
            a = self._operand(s[0].name)
            return (f"_d2l({_as_float(a)})", "int", True)

        return None

    # -- statement emitters ---------------------------------------------

    def _emit_op(self, instr: Instr, nxt: Instr | None) -> list[str]:
        """Statements for one non-CALL, non-terminator instruction (or
        none, when the value is fused into ``nxt``)."""
        opcode = instr.opcode

        if opcode is Opcode.NOP:
            return [f"pass  # nop: {instr}"]

        value = self._value(instr)
        if value is not None:
            expr, kind, pure = value
            dest = instr.dest.name
            if (pure and nxt is not None
                    and self._read_counts.get(dest, 0) == 1
                    and sum(1 for src in nxt.srcs if src.name == dest) == 1):
                self._pending = (dest, ("expr", expr, kind))
                self.fused += 1
                return [f"# fused into next: {instr}"]
            store = f"+{expr}" if kind == "bool" else expr
            return [f"r{self._slot(dest)} = {store}"]

        return self._emit_stateful(instr)

    def _emit_stateful(self, instr: Instr) -> list[str]:
        opcode = instr.opcode
        s = instr.srcs
        dst = (f"r{self._slot(instr.dest.name)}"
               if instr.dest is not None else None)

        if opcode is Opcode.JUST_EXTENDED:  # check_dummies on
            a = self._operand(s[0].name)
            w, x = self._scratch(), self._scratch()
            msg = ("just_extended marker saw a non-canonical value "
                   "0x%016x — unsound elimination")
            return [
                f"{w} = {_as_int(a)}",
                f"{x} = {w} & _U32",
                f"if (({x} | _FILL32) if {x} & _HIGH32 else {x}) != {w}:",
                f"{_IND}raise _MemoryFault({msg!r} % {w})",
                f"{dst} = {w}",
            ]

        handler = _FLOAT_OPS.get(opcode)
        if handler is not None:
            text = str(instr)
            prefix = f"floating point error in {text}: "
            inline = _FLOAT_INLINE.get(opcode)
            if inline is not None:
                a = self._operand(s[0].name)
                b = self._operand(s[1].name)
                call = f"{_as_float(a)} {inline} {_as_float(b)}"
            else:
                operands = [self._operand(src.name) for src in s]
                args = ", ".join(_as_float(o) for o in operands)
                call = f"_fop_{opcode.value}({args})"
            return [
                "try:",
                f"{_IND}{dst} = {call}",
                "except (ValueError, OverflowError) as _exc:",
                f"{_IND}raise _Trap({prefix!r} + str(_exc)) from _exc",
            ]

        if opcode is Opcode.NEWARRAY:
            a = self._operand(s[0].name)
            length = self._signed64(f"{_as_int(a)} & _U64")
            return [f"{dst} = _heap.allocate(_T_{instr.elem.name}, "
                    f"{length})"]

        if opcode is Opcode.ALOAD:
            aref = self._operand(s[0].name)
            aidx = self._operand(s[1].name)
            arr, idx = self._scratch(), self._scratch()
            lines = [
                f"{arr} = _heap.deref({_as_int(aref)})",
                f"{idx} = _heap.checked_index({arr}, {_as_int(aidx)})",
            ]
            kind, bits = _load_ext_params(instr.elem, self.ideal,
                                          self.traits)
            cell = f"{arr}.cells[{idx}]"
            if kind == "float":
                lines.append(f"{dst} = float({cell})")
            elif kind == "wide":
                lines.append(f"{dst} = int({cell}) & _U64")
            else:
                mask = (1 << bits) - 1
                if kind == "sign":
                    high = 1 << (bits - 1)
                    fill = _U64 ^ mask
                    w = self._scratch()
                    lines.append(f"{w} = int({cell}) & {mask:#x}")
                    lines.append(f"{dst} = ({w} | {fill:#x}) "
                                 f"if {w} & {high:#x} else {w}")
                else:
                    lines.append(f"{dst} = int({cell}) & {mask:#x}")
            return lines

        if opcode is Opcode.ASTORE:
            aref = self._operand(s[0].name)
            aidx = self._operand(s[1].name)
            val = self._operand(s[2].name)
            arr, idx = self._scratch(), self._scratch()
            return [
                f"{arr} = _heap.deref({_as_int(aref)})",
                f"{idx} = _heap.checked_index({arr}, {_as_int(aidx)})",
                f"_heap.store({arr}, {idx}, {_as_raw(val)})",
            ]

        if opcode is Opcode.ARRAYLEN:
            a = self._operand(s[0].name)
            return [f"{dst} = _heap.deref({_as_int(a)}).length"]

        if opcode is Opcode.GLOAD:
            kind, bits = _load_ext_params(instr.elem, self.ideal,
                                          self.traits)
            raw = f"_glob[{instr.gname!r}]"
            if kind == "float":
                return [f"{dst} = float({raw})"]
            if kind == "wide":
                return [f"{dst} = int({raw}) & _U64"]
            mask = (1 << bits) - 1
            if kind == "sign":
                high = 1 << (bits - 1)
                fill = _U64 ^ mask
                w = self._scratch()
                return [
                    f"{w} = int({raw}) & {mask:#x}",
                    f"{dst} = ({w} | {fill:#x}) if {w} & {high:#x} "
                    f"else {w}",
                ]
            return [f"{dst} = int({raw}) & {mask:#x}"]

        if opcode is Opcode.GSTORE:
            a = self._operand(s[0].name)
            if instr.elem is ScalarType.F64:
                return [f"_glob[{instr.gname!r}] = {_as_float(a)}"]
            mask = (1 << instr.elem.bits) - 1
            return [f"_glob[{instr.gname!r}] = {_as_int(a)} & {mask:#x}"]

        if opcode is Opcode.SINK:
            a = self._operand(s[0].name)
            if s[0].type is ScalarType.F64:
                bits = f'_unpack("<Q", _pack("<d", {_as_float(a)}))[0]'
                return [f"st.checksum = ((st.checksum ^ {bits}) "
                        f"* _FNV) & _U64"]
            return [f"st.checksum = ((st.checksum ^ ({_as_int(a)} "
                    f"& _U64)) * _FNV) & _U64"]

        raise Untranslatable(
            f"{self.func.name}: unsupported opcode {opcode} in {instr}"
        )

    def _emit_call(self, instr: Instr) -> list[str]:
        if instr.callee is None:
            raise Untranslatable(f"call without callee: {instr}")
        operands = [self._operand(src.name) for src in instr.srcs]
        args = ", ".join(_as_raw(o) for o in operands)
        call = f"st._call(_F[{instr.callee!r}], [{args}])"
        if instr.dest is None:
            return [call]
        void_msg = f"void call assigned: {instr}"
        return [
            f"_ret = {call}",
            "if _ret is None:",
            f"{_IND}raise _Trap({void_msg!r})",
            f"r{self._slot(instr.dest.name)} = _ret",
        ]

    # -- terminators ----------------------------------------------------

    def _edge_line(self, src_idx: int, dst_idx: int) -> list[str]:
        if not self.profiled:
            return []
        key = f"({src_idx}, {dst_idx})"
        return [f"_p[{key}] = _p.get({key}, 0) + 1"]

    def _goto(self, src_idx: int, dst_idx: int,
              fallthrough_idx: int | None) -> list[str]:
        lines = self._edge_line(src_idx, dst_idx)
        lines.append(f"_b = {dst_idx}")
        if dst_idx != fallthrough_idx:
            lines.append("continue")
        return lines

    def _emit_terminator(self, instr: Instr, block_idx: int,
                         labels: dict[str, int],
                         fallthrough_idx: int | None) -> list[str]:
        opcode = instr.opcode
        if opcode is Opcode.RET:
            if instr.srcs:
                operand = self._operand(instr.srcs[0].name)
                return [f"return {_as_raw(operand)}"]
            return ["return None"]

        try:
            if opcode is Opcode.JMP:
                target = labels[instr.targets[0]]
                return self._goto(block_idx, target, fallthrough_idx)
            then_idx = labels[instr.targets[0]]
            else_idx = labels[instr.targets[1]]
        except (KeyError, IndexError) as exc:
            raise Untranslatable(f"bad branch target in {instr}") from exc

        # BR: test the low 32 bits, exactly as _mk_br does — except a
        # fused comparison becomes the condition itself (cmp+br
        # superinstruction; a bool's truthiness equals the closure's
        # ``int(regs[cond]) & _U32 != 0`` for 0/1 values).
        operand = self._operand(instr.srcs[0].name)
        if operand[0] == "expr" and operand[2] == "bool":
            cond = operand[1]
            negated = f"not {cond}"
        else:
            cond = f"{_as_int(operand)} & _U32"
            negated = f"not ({cond})"

        if else_idx == fallthrough_idx:
            lines = [f"if {cond}:"]
            lines += [_IND + line
                      for line in self._goto(block_idx, then_idx, None)]
            lines += self._goto(block_idx, else_idx, fallthrough_idx)
            return lines
        if then_idx == fallthrough_idx:
            lines = [f"if {negated}:"]
            lines += [_IND + line
                      for line in self._goto(block_idx, else_idx, None)]
            lines += self._goto(block_idx, then_idx, fallthrough_idx)
            return lines
        lines = [f"if {cond}:"]
        lines += [_IND + line
                  for line in self._goto(block_idx, then_idx, None)]
        lines += self._goto(block_idx, else_idx, None)
        return lines

    # -- blocks and the whole function ----------------------------------

    def _segments_of(self, instrs: list[Instr]):
        """IR-level segmentation, mirroring ``_Translator._translate_block``:
        ``(ops, n_steps, call | None)`` split at CALL boundaries."""
        segments: list[tuple[list[Instr], int, Instr | None]] = []
        ops: list[Instr] = []
        for instr in instrs:
            if instr.opcode is Opcode.CALL:
                segments.append((ops, len(ops) + 1, instr))
                ops = []
            else:
                ops.append(instr)
        return segments, ops

    def _emit_block(self, block, block_idx: int, labels: dict[str, int],
                    n_blocks: int) -> list[str]:
        name = self.func.name
        self._pending = None
        cut = _cut_block(block.instrs)
        term_instr = (cut.pop() if cut and cut[-1].opcode in _TERMINATORS
                      else None)
        segments, tail_ops = self._segments_of(cut)
        if term_instr is not None:
            if tail_ops or not segments:
                segments.append((tail_ops, len(tail_ops) + 1, None))
                term_mode = TERM_INLINE
            else:
                term_mode = TERM_CHECKED
        else:
            if tail_ops:
                segments.append((tail_ops, len(tail_ops), None))
            term_mode = TERM_NONE

        # the closure translation of the same content must agree on the
        # segmentation, or fuel replay would diverge
        translated_block = self.translated.blocks[block_idx]
        if (translated_block.term_mode != term_mode
                or len(translated_block.segments) != len(segments)
                or any(t[1] != s[1] for t, s in
                       zip(translated_block.segments, segments))):
            raise Untranslatable(
                f"{name}: segmentation disagrees with the closure "
                f"translation in block {block.label}"
            )

        fallthrough_idx = (block_idx + 1 if block_idx + 1 < n_blocks
                           else None)
        lines: list[str] = [f"_e[{block_idx}] += 1"]
        for seg_idx, (ops, n, call) in enumerate(segments):
            lines.append(f"_s = st.steps + {n}")
            lines.append("if _s > _fuel:")
            lines.append(f"{_IND}st._replay_fuel_out({name!r}, "
                         f"{block_idx}, {seg_idx}, {self._regs_list})")
            lines.append("st.steps = _s")
            last_seg = seg_idx == len(segments) - 1
            for op_idx, instr in enumerate(ops):
                if op_idx + 1 < len(ops):
                    nxt: Instr | None = ops[op_idx + 1]
                elif call is not None:
                    nxt = call
                elif last_seg and term_mode == TERM_INLINE:
                    nxt = term_instr
                else:
                    nxt = None
                lines += self._emit_op(instr, nxt)
            if call is not None:
                lines += self._emit_call(call)

        if term_mode == TERM_NONE:
            msg = f"fell off block {block.label} in {name}"
            lines.append(f"raise _Trap({msg!r})")
        else:
            if term_mode == TERM_CHECKED:
                lines.append("if st.steps >= _fuel:")
                lines.append(f"{_IND}st._replay_fuel_out({name!r}, "
                             f"{block_idx}, -1, {self._regs_list})")
                lines.append("st.steps += 1")
            lines += self._emit_terminator(term_instr, block_idx, labels,
                                           fallthrough_idx)
        if self._pending is not None:
            raise Untranslatable(
                f"{name}: fused value {self._pending[0]!r} was never "
                f"consumed in block {block.label}"
            )
        return lines

    def emit(self) -> str:
        func = self.func
        translated = self.translated
        labels = translated.labels
        by_label = {block.label: block for block in func.blocks}
        try:
            ordered = sorted(by_label.values(),
                             key=lambda b: labels[b.label])
        except KeyError as exc:
            raise Untranslatable(
                f"{func.name}: block {exc} missing from translation"
            ) from exc
        if len(ordered) != len(translated.blocks):
            raise Untranslatable(f"{func.name}: block count mismatch")

        order_note = ("profile-guided" if self.layout is not None
                      else "source order")
        head = [
            "# generated by repro.interp.codegen — do not edit",
            f"# function: {func.name}",
            f"# mode: {'ideal' if self.ideal else 'machine'}"
            f" | traits: {self.traits.name}"
            f" | check_dummies: {self.check_dummies}"
            f" | profiled: {self.profiled}",
            f"# block order ({order_note}): "
            + ", ".join(block.label for block in ordered),
            "",
            "def _f(st, args):",
        ]
        body: list[str] = []
        arity_prefix = f"arity mismatch calling {func.name}: got "
        body.append(f"if len(args) != {translated.n_params}:")
        body.append(f"{_IND}raise _Trap({arity_prefix!r} + "
                    f"str(len(args)) + \" args\")")
        body.append("_depth = st.call_depth + 1")
        body.append("if _depth > st.max_call_depth:")
        body.append(f"{_IND}raise _overflow(st.max_call_depth)")
        body.append("st.call_depth = _depth")
        body.append("try:")

        inner: list[str] = []
        if translated.n_slots:
            inner.append(" = ".join(
                f"r{i}" for i in range(translated.n_slots)
            ) + " = 0")
        for index, (slot, is_float) in enumerate(translated.param_plan):
            if is_float:
                inner.append(f"r{slot} = float(args[{index}])")
            else:
                inner.append(f"r{slot} = int(args[{index}]) & _U64")
        inner.append(f"_e = st._frame_entries({func.name!r}, "
                     f"{len(ordered)})")
        if self.profiled:
            inner.append(f"_p = st._edge_profiles.setdefault("
                         f"{func.name!r}, {{}})")
        inner.append("_fuel = st.fuel")
        opcodes_used = {instr.opcode
                        for block in func.blocks
                        for instr in _cut_block(block.instrs)}
        if Opcode.CALL in opcodes_used:
            inner.append("_F = st.program.functions")
        if opcodes_used & {Opcode.NEWARRAY, Opcode.ALOAD, Opcode.ASTORE,
                           Opcode.ARRAYLEN}:
            inner.append("_heap = st.heap")
        if opcodes_used & {Opcode.GLOAD, Opcode.GSTORE}:
            inner.append("_glob = st.globals")
        inner.append("_b = 0")
        inner.append("while True:")
        for block_idx, block in enumerate(ordered):
            marker = " (entry)" if block_idx == 0 else ""
            inner.append(f"{_IND}if _b == {block_idx}:"
                         f"  # block {block.label}{marker}")
            for line in self._emit_block(block, block_idx, labels,
                                         len(ordered)):
                inner.append(f"{_IND}{_IND}{line}")

        body += [f"{_IND}{line}" for line in inner]
        body.append("finally:")
        body.append(f"{_IND}st.call_depth = _depth - 1")

        return "\n".join(head + [f"{_IND}{line}" for line in body]) + "\n"


def _load_ext_params(elem, ideal, traits):
    # re-exported lazily to avoid a circular import at module load
    from .translate import _load_ext_params as impl

    return impl(elem, ideal, traits)


# -- compilation and the content cache ----------------------------------------

class GeneratedFunction:
    """One function's generated source and its compiled callable.

    ``fn(st, args)`` runs the frame; ``st`` is the executing
    :class:`~repro.interp.engine.CodegenInterpreter`.  The callable is
    content-pure (its globals hold only static helpers), so one object
    is shared by every interpreter executing the same content.
    """

    __slots__ = ("name", "source", "filename", "fn", "fused")

    def __init__(self, name, source, filename, fn, fused) -> None:
        self.name = name
        self.source = source
        self.filename = filename
        self.fn = fn
        self.fused = fused


def generate_source(func: Function, *, ideal: bool, traits: MachineTraits,
                    check_dummies: bool = True,
                    layout: tuple[str, ...] | None = None,
                    profiled: bool = False) -> str:
    """The annotated generated source for one function (debug surface;
    ``repro ir --emit-python`` prints this)."""
    layout = normalize_layout(func, layout)
    translated = translate_function(func, ideal=ideal, traits=traits,
                                    check_dummies=check_dummies,
                                    layout=layout)
    emitter = _Emitter(func, translated, ideal=ideal, traits=traits,
                       check_dummies=check_dummies, profiled=profiled,
                       layout=layout)
    source = emitter.emit()
    return source.replace(
        "# generated by repro.interp.codegen — do not edit",
        "# generated by repro.interp.codegen — do not edit\n"
        f"# fused superinstructions: {emitter.fused}",
        1,
    )


def compile_generated(func: Function, translated: TranslatedFunction, *,
                      ideal: bool, traits: MachineTraits,
                      check_dummies: bool, profiled: bool,
                      layout: tuple[str, ...] | None,
                      digest: str | None = None) -> GeneratedFunction:
    """Emit, ``compile()``, and bind one function's generated code.

    The synthetic filename is registered in :mod:`linecache`, so
    tracebacks through generated frames show the generated lines.
    Raises :class:`Untranslatable` when emission fails.
    """
    emitter = _Emitter(func, translated, ideal=ideal, traits=traits,
                       check_dummies=check_dummies, profiled=profiled,
                       layout=layout)
    source = emitter.emit()
    digest = digest if digest is not None else function_digest(func)
    filename = (f"<repro-codegen:{func.name}:{digest[:12]}"
                f"{'+prof' if profiled else ''}>")
    try:
        code = builtins.compile(source, filename, "exec")
    except SyntaxError as exc:  # emitter bug: degrade, don't crash
        raise Untranslatable(
            f"{func.name}: generated source failed to compile: {exc}"
        ) from exc
    namespace = dict(_GEN_GLOBALS)
    exec(code, namespace)
    linecache.cache[filename] = (
        len(source), None, source.splitlines(keepends=True), filename,
    )
    return GeneratedFunction(func.name, source, filename,
                             namespace["_f"], emitter.fused)


class CodegenCache:
    """Content-addressed LRU cache of generated functions.

    The key mirrors :class:`~repro.interp.translate.TranslationCache`
    (IR digest, mode, traits, dummy checking, layout) plus the
    ``profiled`` flag — profiled frames carry edge-recording code the
    zero-overhead contract forbids in unprofiled runs.  Failed
    emissions are negative-cached so fallback functions do not retry
    per run.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, GeneratedFunction | None] = \
            OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def _key(self, digest: str, ideal: bool, traits: MachineTraits,
             check_dummies: bool, layout, profiled: bool) -> tuple:
        return (digest, ideal, _traits_key(traits), check_dummies,
                layout, profiled)

    def get_or_generate(self, func: Function,
                        translated: TranslatedFunction, *, ideal: bool,
                        traits: MachineTraits, check_dummies: bool = True,
                        layout: tuple[str, ...] | None = None,
                        profiled: bool = False
                        ) -> GeneratedFunction | None:
        layout = normalize_layout(func, layout)
        digest = function_digest(func)
        key = self._key(digest, ideal, traits, check_dummies, layout,
                        profiled)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        try:
            generated = compile_generated(
                func, translated, ideal=ideal, traits=traits,
                check_dummies=check_dummies, profiled=profiled,
                layout=layout, digest=digest,
            )
        except Untranslatable:
            generated = None
        except Exception:  # emitter bug: degrade to the closure tier
            generated = None
        with self._lock:
            self._entries[key] = generated
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return generated

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "translate.codegen.hits": self.hits,
            "translate.codegen.misses": self.misses,
            "translate.codegen.entries": len(self._entries),
        }


_DEFAULT_CODEGEN_CACHE = CodegenCache()


def default_codegen_cache() -> CodegenCache:
    """The process-wide cache shared by every CodegenInterpreter."""
    return _DEFAULT_CODEGEN_CACHE
