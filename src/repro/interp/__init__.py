"""Execution substrate: heap, machine-faithful interpreter, profiling."""

from .interpreter import ExecResult, Interpreter
from .memory import (
    ArrayObject,
    FuelExhausted,
    Heap,
    MemoryFault,
    SimError,
    Trap,
)
from .profiler import collect_branch_profiles

__all__ = [
    "ArrayObject",
    "ExecResult",
    "FuelExhausted",
    "Heap",
    "Interpreter",
    "MemoryFault",
    "SimError",
    "Trap",
    "collect_branch_profiles",
]
