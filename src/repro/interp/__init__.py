"""Execution substrate: heap, interpreters, closure engine, profiling."""

from .codegen import (
    CodegenCache,
    default_codegen_cache,
    generate_source,
)
from .engine import (
    DEFAULT_ENGINE,
    ENGINE_CHOICES,
    ENGINES,
    ClosureInterpreter,
    CodegenInterpreter,
    EngineParityError,
    ExecutionEngine,
    create_interpreter,
    execute,
)
from .interpreter import (
    DEFAULT_MAX_CALL_DEPTH,
    ExecResult,
    Interpreter,
)
from .layout import (
    layout_from_branch_profiles,
    load_layout_profiles,
    order_blocks,
)
from .memory import (
    ArrayObject,
    FuelExhausted,
    Heap,
    MemoryFault,
    SimError,
    Trap,
)
from .profiler import collect_branch_profiles
from .translate import (
    TranslationCache,
    Untranslatable,
    default_translation_cache,
    translate_function,
)

__all__ = [
    "ArrayObject",
    "ClosureInterpreter",
    "CodegenCache",
    "CodegenInterpreter",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_CALL_DEPTH",
    "ENGINES",
    "ENGINE_CHOICES",
    "EngineParityError",
    "ExecResult",
    "ExecutionEngine",
    "FuelExhausted",
    "Heap",
    "Interpreter",
    "MemoryFault",
    "SimError",
    "Trap",
    "TranslationCache",
    "Untranslatable",
    "collect_branch_profiles",
    "create_interpreter",
    "default_codegen_cache",
    "default_translation_cache",
    "execute",
    "generate_source",
    "layout_from_branch_profiles",
    "load_layout_profiles",
    "order_blocks",
    "translate_function",
]
