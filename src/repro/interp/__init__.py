"""Execution substrate: heap, interpreters, closure engine, profiling."""

from .engine import (
    DEFAULT_ENGINE,
    ENGINE_CHOICES,
    ENGINES,
    ClosureInterpreter,
    EngineParityError,
    ExecutionEngine,
    create_interpreter,
    execute,
)
from .interpreter import (
    DEFAULT_MAX_CALL_DEPTH,
    ExecResult,
    Interpreter,
)
from .memory import (
    ArrayObject,
    FuelExhausted,
    Heap,
    MemoryFault,
    SimError,
    Trap,
)
from .profiler import collect_branch_profiles
from .translate import (
    TranslationCache,
    Untranslatable,
    default_translation_cache,
    translate_function,
)

__all__ = [
    "ArrayObject",
    "ClosureInterpreter",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_CALL_DEPTH",
    "ENGINES",
    "ENGINE_CHOICES",
    "EngineParityError",
    "ExecResult",
    "ExecutionEngine",
    "FuelExhausted",
    "Heap",
    "Interpreter",
    "MemoryFault",
    "SimError",
    "Trap",
    "TranslationCache",
    "Untranslatable",
    "collect_branch_profiles",
    "create_interpreter",
    "default_translation_cache",
    "execute",
    "translate_function",
]
