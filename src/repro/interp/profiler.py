"""Branch profiling, as the paper's mixed-mode interpreter does.

"The interpreter gathers statistical data on conditional branches.  When
the interpreter finds that a method is executed frequently, the dynamic
compiler is called.  At that time, the interpreter provides the
statistical data to the dynamic compiler." (Section 2.2)

Here the profiling run interprets the program once (optionally on a
smaller training input) and returns per-function
:class:`~repro.analysis.frequency.BranchProfile` objects for order
determination.
"""

from __future__ import annotations

from ..analysis.frequency import BranchProfile
from ..ir.function import Program
from ..machine.model import IA64, MachineTraits
from .engine import DEFAULT_ENGINE, create_interpreter


def collect_branch_profiles(
    program: Program,
    *,
    func_name: str = "main",
    args: tuple[int | float, ...] = (),
    traits: MachineTraits = IA64,
    mode: str = "ideal",
    fuel: int = 50_000_000,
    inline: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> dict[str, BranchProfile]:
    """Run the program once and return branch profiles per function.

    Profiling runs in ``ideal`` mode by default so it can execute
    pre-conversion IR (as the paper's bytecode interpreter does).  By
    default the profiled copy is inlined with the same deterministic
    pass the compiler applies, so block labels line up with the code
    order determination will see.
    """
    if inline:
        from ..ir.clone import clone_program
        from ..opt.inline import inline_small_functions

        program = clone_program(program)
        inline_small_functions(program)
    if engine == "both":  # profiling is single-engine; pick the fast one
        engine = "closure"
    interpreter = create_interpreter(
        program, engine=engine, traits=traits, mode=mode, fuel=fuel,
        collect_profile=True,
    )
    result = interpreter.run(func_name, args)
    return {
        name: BranchProfile(dict(edges))
        for name, edges in result.profiles.items()
    }
