"""Structured JSONL event log with severity and size-based rotation.

The serving stack's access/event log (docs/OBSERVABILITY.md).  Each
:meth:`JsonlLogger.log` call appends exactly one JSON object per line::

    {"ts": 1754650000.123, "severity": "info", "event": "request",
     "trace_id": "ab12...", "status": 200, ...}

Design constraints, in order:

* **append-only JSONL** — every line is independently parseable, so a
  crashed process never leaves a torn document, and ``grep | jq``
  post-mortems work without tooling;
* **bounded disk** — when the active file would exceed ``max_bytes``
  it rotates (``serve.log`` -> ``serve.log.1`` -> ... ``.N``), keeping
  at most ``backups`` rotated generations;
* **thread-safe** — one lock around write+rotate; the serve stack logs
  from the event loop and from worker threads.

Severities are the conventional four; :meth:`log` rejects anything
else so typos never silently create a fifth level.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

SEVERITIES = ("debug", "info", "warning", "error")


class JsonlLogger:
    """Append structured events to a JSONL file, rotating by size."""

    def __init__(self, path: str | Path, *,
                 max_bytes: int = 10 * 1024 * 1024,
                 backups: int = 3,
                 clock=time.time) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._clock = clock
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing -------------------------------------------------------------

    def log(self, severity: str, event: str, **fields: Any) -> None:
        """Append one event; ``fields`` must be JSON-serializable."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}; one of: "
                             + ", ".join(SEVERITIES))
        record = {"ts": round(self._clock(), 6), "severity": severity,
                  "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True,
                          default=str) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            self._rotate_if_needed(len(encoded))
            with open(self.path, "ab") as handle:
                handle.write(encoded)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    # -- rotation ------------------------------------------------------------

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size + incoming <= self.max_bytes:
            return
        # Shift the generations up; the oldest falls off the end.
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
            return
        oldest = self.rotated_path(self.backups)
        oldest.unlink(missing_ok=True)
        for index in range(self.backups - 1, 0, -1):
            source = self.rotated_path(index)
            if source.exists():
                os.replace(source, self.rotated_path(index + 1))
        os.replace(self.path, self.rotated_path(1))

    def rotated_path(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    # -- reading (tests, `repro top`, post-mortems) --------------------------

    def read_events(self, *, include_rotated: bool = False) -> list[dict]:
        """Parse events back, oldest first."""
        paths: list[Path] = []
        if include_rotated:
            paths.extend(
                self.rotated_path(i)
                for i in range(self.backups, 0, -1)
                if self.rotated_path(i).exists()
            )
        if self.path.exists():
            paths.append(self.path)
        events: list[dict] = []
        for path in paths:
            for line in path.read_text("utf-8").splitlines():
                if line.strip():
                    events.append(json.loads(line))
        return events
