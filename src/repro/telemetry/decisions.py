"""Structured per-candidate elimination decision records.

Every sign extension the eliminator considers yields one
:class:`DecisionRecord`: where the candidate lives (function, block,
instruction uid and text), the verdict, which analysis decided it, and
the reason chain the DU/UD walk produced.  A kept extension is thereby
explainable — the record names the concrete use or definition that
required it.

Verdicts and causes::

    verdict    "eliminated" | "kept"
    cause      "AnalyzeUSE"    no transitive use needs the upper bits
               "AnalyzeDEF"    every reaching definition is canonical
               "AnalyzeARRAY"  an array subscript was proven safe by
                               Theorems 1-4 (subset of AnalyzeUSE wins)
               "required"      a use/definition requirement survived
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

VERDICT_ELIMINATED = "eliminated"
VERDICT_KEPT = "kept"

CAUSE_USE = "AnalyzeUSE"
CAUSE_DEF = "AnalyzeDEF"
CAUSE_ARRAY = "AnalyzeARRAY"
CAUSE_REQUIRED = "required"


@dataclass
class DecisionRecord:
    """One candidate extension, one verdict, one reason chain."""

    function: str
    block: str
    instr_uid: int
    instr: str
    width: int
    verdict: str
    cause: str
    reasons: list[str] = field(default_factory=list)
    #: Section 3 theorems that fired while analyzing this candidate
    theorems: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "function": self.function,
            "block": self.block,
            "instr_uid": self.instr_uid,
            "instr": self.instr,
            "width": self.width,
            "verdict": self.verdict,
            "cause": self.cause,
            "reasons": list(self.reasons),
            "theorems": list(self.theorems),
        }


class DecisionLog:
    """Accumulates decision records across functions."""

    def __init__(self) -> None:
        self.records: list[DecisionRecord] = []

    def add(self, record: DecisionRecord) -> None:
        self.records.append(record)

    def merge(self, other: "DecisionLog") -> None:
        """Append another log's records (pool workers merge into the
        driver's log)."""
        self.records.extend(other.records)

    def eliminated(self) -> list[DecisionRecord]:
        return [r for r in self.records if r.verdict == VERDICT_ELIMINATED]

    def kept(self) -> list[DecisionRecord]:
        return [r for r in self.records if r.verdict == VERDICT_KEPT]

    def for_function(self, name: str) -> list[DecisionRecord]:
        return [r for r in self.records if r.function == name]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [record.as_dict() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
