"""Telemetry: pipeline tracing, elimination decision logs, metrics.

The observability backbone of the reproduction.  One
:class:`Telemetry` object bundles the three channels:

* :class:`~repro.telemetry.tracer.Tracer` — nested spans around every
  pipeline phase, optimization pass, and sign-extension sub-phase,
  exportable as Chrome ``trace_event`` JSON (``about://tracing``);
* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  and histograms for static and dynamic extension statistics;
* :class:`~repro.telemetry.decisions.DecisionLog` — one structured
  record per elimination candidate with its reason chain.

Telemetry is strictly opt-in: every producer takes ``telemetry=None``
and skips all recording when it is absent, so the paper's timing
numbers (Table 3) are unaffected by this subsystem's existence.
"""

from __future__ import annotations

import json
from typing import Any

from .decisions import (
    CAUSE_ARRAY,
    CAUSE_DEF,
    CAUSE_REQUIRED,
    CAUSE_USE,
    DecisionLog,
    DecisionRecord,
    VERDICT_ELIMINATED,
    VERDICT_KEPT,
)
from .eventlog import SEVERITIES, JsonlLogger
from .exposition import (
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
    sample_value,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Span, Tracer

SCHEMA_VERSION = 1


class Telemetry:
    """Aggregates one compilation/execution's worth of observability."""

    def __init__(self, label: str = "repro") -> None:
        self.label = label
        self.tracer = Tracer(process_name=label)
        self.metrics = MetricsRegistry()
        self.decisions = DecisionLog()

    # -- convenience delegates ------------------------------------------------

    def span(self, name: str, category: str = "pipeline", **args: Any):
        return self.tracer.span(name, category, **args)

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.metrics.counter(name, **labels)

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry object into this one.

        Used by the batch driver to absorb per-job telemetry collected
        in pool workers: spans land under a ``merged:<label>`` root,
        counters sum, and decision records append.
        """
        self.tracer.merge(other.tracer)
        self.metrics.merge(other.metrics)
        self.decisions.merge(other.decisions)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The full telemetry document (see docs/TELEMETRY.md)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "trace": self.tracer.to_chrome_trace(),
            "spans": self.tracer.to_dict(),
            "metrics": self.metrics.as_dict(),
            "decisions": self.decisions.as_dicts(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def validate_telemetry_document(doc: dict[str, Any]) -> list[str]:
    """Light-weight schema check used by tests and the CI smoke step.

    Returns a list of problems (empty when the document conforms).
    """
    problems: list[str] = []
    for key in ("schema_version", "trace", "spans", "metrics", "decisions"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    trace = doc.get("trace")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        problems.append("trace is not a Chrome trace_event document")
    else:
        for i, event in enumerate(trace["traceEvents"]):
            if event.get("ph") not in ("X", "M", "B", "E", "i", "C"):
                problems.append(f"traceEvents[{i}] has bad phase "
                                f"{event.get('ph')!r}")
                break
            if event.get("ph") == "X":
                if not (isinstance(event.get("ts"), int)
                        and isinstance(event.get("dur"), int)):
                    problems.append(f"traceEvents[{i}] lacks integer ts/dur")
                    break
                if event["ts"] < 0 or event["dur"] < 0:
                    problems.append(f"traceEvents[{i}] has negative "
                                    f"ts/dur ({event['ts']}/{event['dur']})")
                    break
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not {
            "counters", "gauges", "histograms"} <= set(metrics):
        problems.append("metrics block malformed")
    elif isinstance(metrics.get("counters"), dict):
        # Two renderings of the same (family, label set) — e.g.
        # "c{a=1,b=2}" and "c{b=2,a=1}" — mean a merge or an exporter
        # double-counted a series; the registry itself always renders
        # labels sorted, so any duplicate is a corruption.
        seen: dict[tuple, str] = {}
        for series in metrics["counters"]:
            family, _, raw = str(series).partition("{")
            labels = frozenset(raw.rstrip("}").split(",")) if raw \
                else frozenset()
            key = (family, labels)
            if key in seen:
                problems.append(
                    f"metrics.counters has duplicate label set: "
                    f"{seen[key]!r} vs {series!r}"
                )
                break
            seen[key] = str(series)

    def _check_span_extents(span: dict[str, Any], path: str) -> str | None:
        end = span.get("start_us", 0) + span.get("duration_us", 0)
        for i, child in enumerate(span.get("children", ())):
            child_end = (child.get("start_us", 0)
                         + child.get("duration_us", 0))
            if child_end > end:
                return (f"{path}.children[{i}] ({child.get('name')!r}) "
                        f"extends past its parent "
                        f"(ends {child_end} > {end})")
            nested = _check_span_extents(child, f"{path}.children[{i}]")
            if nested is not None:
                return nested
        return None

    spans = doc.get("spans")
    if isinstance(spans, list):
        for i, root in enumerate(spans):
            if not isinstance(root, dict):
                continue
            problem = _check_span_extents(root, f"spans[{i}]")
            if problem is not None:
                problems.append(problem)
                break
    decisions = doc.get("decisions")
    if not isinstance(decisions, list):
        problems.append("decisions is not a list")
    else:
        required = {"function", "block", "instr_uid", "instr", "width",
                    "verdict", "cause", "reasons"}
        for i, record in enumerate(decisions):
            if not required <= set(record):
                problems.append(
                    f"decisions[{i}] missing keys "
                    f"{sorted(required - set(record))}"
                )
                break
            if record["verdict"] not in (VERDICT_ELIMINATED, VERDICT_KEPT):
                problems.append(f"decisions[{i}] bad verdict "
                                f"{record['verdict']!r}")
                break
    return problems


__all__ = [
    "CAUSE_ARRAY",
    "CAUSE_DEF",
    "CAUSE_REQUIRED",
    "CAUSE_USE",
    "Counter",
    "DecisionLog",
    "DecisionRecord",
    "Gauge",
    "Histogram",
    "JsonlLogger",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SEVERITIES",
    "Span",
    "Telemetry",
    "Tracer",
    "parse_prometheus_text",
    "prometheus_name",
    "render_prometheus",
    "sample_value",
    "VERDICT_ELIMINATED",
    "VERDICT_KEPT",
    "validate_telemetry_document",
]
