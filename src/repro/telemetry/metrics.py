"""A small metrics registry: counters, gauges, and histograms.

Replaces the ad-hoc statistic fields that used to be scattered across
``FunctionStats``/``ExecResult`` consumers with named, labelled,
mergeable instruments.  Everything is in-process and dependency-free;
the registry renders to plain dicts for JSON export.

Instruments are keyed by ``(name, sorted labels)``, so
``registry.counter("eliminated", width=32)`` and
``registry.counter("eliminated", width=16)`` are distinct series of the
same metric family — the Prometheus naming model, minus the wire
format.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, key: _LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Power-of-two bucketed distribution with count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket upper bound (2**k) -> observations <= bound
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bound = 1
        while bound < value:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for value in (other.min, other.max):
            if value is None:
                continue
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
        for bound, count in other.buckets.items():
            self.buckets[bound] = self.buckets.get(bound, 0) + count

    def quantile(self, q: float) -> float | None:
        """Estimate the q-quantile (0..1) from the bucket counts.

        Observations inside a bucket are assumed uniform between the
        bucket's edges (lower edge of bound ``2**k`` is ``2**(k-1)``,
        the first bucket starts at 0); the estimate is clamped to the
        observed ``[min, max]``, so exact values are returned for the
        extremes and single-observation histograms.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        rank = q * self.count
        seen = 0.0
        for bound, count in sorted(self.buckets.items()):
            if seen + count >= rank:
                lower = bound / 2 if bound > 1 else 0.0
                fraction = (rank - seen) / count
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self.min), self.max)
            seen += count
        return self.max

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {str(b): c for b, c in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Holds all instruments; hands out one object per (name, labels)."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        # Accessor creation must not race when a registry is shared by
        # the `repro serve` worker pool: without the lock two threads
        # could each create an instrument and one side's counts vanish.
        self._create_lock = threading.Lock()

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.setdefault(key, Histogram())
        return instrument

    # -- pickling ------------------------------------------------------------
    # Worker-side registries travel back over the process-pool pipe;
    # locks do not pickle, so drop the lock and rebuild it on load.

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_create_lock", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._create_lock = threading.Lock()

    # -- queries ------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def counter_family(self, name: str) -> dict[str, int]:
        """All series of one counter family, by rendered series name.

        Sorted by series name, so dumps of the family (``--stats``,
        profile artifacts, test fixtures) are byte-stable regardless of
        the order in which label combinations first appeared.
        """
        return {
            _series_name(n, key): c.value
            for (n, key), c in sorted(self._counters.items())
            if n == name
        }

    def series(self) -> Iterable[str]:
        for (name, key) in (*self._counters, *self._gauges,
                            *self._histograms):
            yield _series_name(name, key)

    # Snapshot iteration for exporters (the Prometheus renderer and the
    # tests): yields (family name, label pairs, instrument) triples.

    def iter_counters(self) -> Iterable[tuple[str, _LabelKey, Counter]]:
        for (name, key), counter in self._counters.items():
            yield name, key, counter

    def iter_gauges(self) -> Iterable[tuple[str, _LabelKey, Gauge]]:
        for (name, key), gauge in self._gauges.items():
            yield name, key, gauge

    def iter_histograms(self) -> Iterable[tuple[str, _LabelKey, Histogram]]:
        for (name, key), histogram in self._histograms.items():
            yield name, key, histogram

    # -- merge / export -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (sums counters, keeps the
        other's gauges, merges histogram buckets)."""
        for (name, key), counter in other._counters.items():
            self._counters.setdefault((name, key), Counter()).value += \
                counter.value
        for (name, key), gauge in other._gauges.items():
            self._gauges.setdefault((name, key), Gauge()).value = gauge.value
        for (name, key), histogram in other._histograms.items():
            self._histograms.setdefault((name, key), Histogram()).merge(
                histogram
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": {
                _series_name(name, key): counter.value
                for (name, key), counter in sorted(self._counters.items())
            },
            "gauges": {
                _series_name(name, key): gauge.value
                for (name, key), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _series_name(name, key): histogram.as_dict()
                for (name, key), histogram in sorted(self._histograms.items())
            },
        }
