"""Prometheus text exposition for the metrics registry.

The registry (:mod:`repro.telemetry.metrics`) already follows the
Prometheus naming model — instrument families fan out into labelled
series — so this module is only the wire format: render one
:class:`~repro.telemetry.metrics.MetricsRegistry` as the Prometheus
text format (version 0.0.4, the ``text/plain`` scrape format every
Prometheus-compatible collector accepts):

* counters render as ``<name>_total`` with a ``# TYPE ... counter``
  header;
* gauges render verbatim;
* histograms render as *summaries*: the ``quantile``-labelled series
  reuse the in-bucket interpolation of
  :meth:`~repro.telemetry.metrics.Histogram.quantile` (the PR-5
  percentile estimator), followed by ``_sum`` and ``_count``.

Metric and label names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``), so dotted repro families like
``serve.latency_ms`` become ``serve_latency_ms``.  Label values are
escaped per the exposition spec (backslash, quote, newline).

:func:`parse_prometheus_text` is the matching validator: it parses a
text-format document back into samples and raises :class:`ValueError`
on any malformed line, which is exactly what the CI obs-smoke job and
the tests use to prove ``/metricsz`` speaks the real format.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable

from .metrics import MetricsRegistry

#: quantiles rendered for every histogram family (matches Histogram.as_dict)
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*='
    r'\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def prometheus_name(name: str) -> str:
    """Sanitize a repro metric family name to the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _label_name(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not _LABEL_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{_label_name(k)}="{_escape_value(v)}"' for k, v in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Families are emitted in sorted order with one ``# TYPE`` header
    each, so two scrapes of the same state are byte-identical.
    """
    lines: list[str] = []

    counters: dict[str, list[tuple[tuple, float]]] = {}
    for name, key, instrument in registry.iter_counters():
        counters.setdefault(prometheus_name(name), []).append(
            (key, instrument.value))
    for family in sorted(counters):
        lines.append(f"# TYPE {family}_total counter")
        for key, value in sorted(counters[family]):
            lines.append(f"{family}_total{_render_labels(key)} "
                         f"{_format_value(value)}")

    gauges: dict[str, list[tuple[tuple, float]]] = {}
    for name, key, instrument in registry.iter_gauges():
        gauges.setdefault(prometheus_name(name), []).append(
            (key, instrument.value))
    for family in sorted(gauges):
        lines.append(f"# TYPE {family} gauge")
        for key, value in sorted(gauges[family]):
            lines.append(f"{family}{_render_labels(key)} "
                         f"{_format_value(value)}")

    histograms: dict[str, list[tuple[tuple, Any]]] = {}
    for name, key, instrument in registry.iter_histograms():
        histograms.setdefault(prometheus_name(name), []).append(
            (key, instrument))
    for family in sorted(histograms):
        lines.append(f"# TYPE {family} summary")
        for key, histogram in sorted(histograms[family],
                                     key=lambda item: item[0]):
            for q in SUMMARY_QUANTILES:
                estimate = histogram.quantile(q)
                if estimate is None:
                    continue
                labels = (*key, ("quantile", format(q, "g")))
                lines.append(f"{family}{_render_labels(labels)} "
                             f"{_format_value(estimate)}")
            lines.append(f"{family}_sum{_render_labels(key)} "
                         f"{_format_value(histogram.total)}")
            lines.append(f"{family}_count{_render_labels(key)} "
                         f"{_format_value(histogram.count)}")

    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def parse_prometheus_text(text: str) -> list[dict[str, Any]]:
    """Parse a text-format document into sample dicts.

    Returns one ``{"name", "labels", "value"}`` dict per sample line.
    Raises :class:`ValueError` — with the offending line number — on
    any line that is neither a comment, blank, nor a valid sample, on
    bad label syntax, and on unparseable values.
    """
    samples: list[dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw is not None:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw):
                if pair.start() != consumed:
                    break
                labels[pair.group("key")] = (
                    pair.group("value")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed = pair.end()
            if consumed != len(raw):
                raise ValueError(
                    f"line {lineno}: malformed labels {{{raw}}}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: malformed value "
                             f"{match.group('value')!r}") from None
        samples.append({"name": match.group("name"), "labels": labels,
                        "value": value})
    return samples


def sample_value(samples: list[dict[str, Any]], name: str,
                 **labels: str) -> float | None:
    """The value of the sample matching ``name`` + ``labels`` exactly."""
    for sample in samples:
        if sample["name"] == name and sample["labels"] == labels:
            return sample["value"]
    return None
