"""Zero-dependency span tracer with Chrome ``trace_event`` export.

A :class:`Tracer` records a forest of :class:`Span` objects.  Spans are
opened with the context-manager API::

    with tracer.span("compile", category="pipeline", function="main"):
        with tracer.span("convert64"):
            ...

Timestamps come from a monotonic clock (``time.perf_counter_ns``), so
spans are immune to wall-clock adjustments; nesting is tracked with an
explicit stack, so parent/child relations need no thread-locals (the
compiler pipeline is single-threaded).

The export format is the Chrome Trace Event JSON used by
``about://tracing`` / Perfetto: a ``{"traceEvents": [...]}`` object of
complete ("ph": "X") events whose ``ts``/``dur`` are microseconds.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable


class Span:
    """One timed region.  ``start_us``/``duration_us`` are microseconds
    on the tracer's monotonic clock."""

    __slots__ = ("name", "category", "start_us", "duration_us", "args",
                 "children")

    def __init__(self, name: str, category: str, start_us: int,
                 args: dict[str, Any] | None = None) -> None:
        self.name = name
        self.category = category
        self.start_us = start_us
        self.duration_us = 0
        self.args: dict[str, Any] = args or {}
        self.children: list["Span"] = []

    def annotate(self, **args: Any) -> None:
        """Attach key/value payload visible in the trace viewer."""
        self.args.update(args)

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "Span":
        """Rebuild a span subtree from its :meth:`to_dict` rendering.

        The inverse used when a span forest crosses a process boundary
        as JSON — e.g. the load-test client adopting server-side spans
        fetched from ``/debugz`` before merging them into its own
        trace.
        """
        span = cls(
            str(entry.get("name", "?")),
            str(entry.get("category", "pipeline")),
            int(entry.get("start_us", 0)),
            dict(entry["args"]) if entry.get("args") else None,
        )
        span.duration_us = int(entry.get("duration_us", 0))
        span.children = [cls.from_dict(child)
                         for child in entry.get("children", ())]
        return span

    def to_dict(self) -> dict[str, Any]:
        """Nested (non-Chrome) representation, for tests and diffing."""
        entry: dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
        }
        if self.args:
            entry["args"] = dict(self.args)
        if self.children:
            entry["children"] = [c.to_dict() for c in self.children]
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} +{self.start_us}us "
                f"{self.duration_us}us {len(self.children)} children>")


def _shift_span(span: Span, offset_us: int) -> None:
    """Shift a span subtree onto another clock (used by merge)."""
    span.start_us += offset_us
    for child in span.children:
        _shift_span(child, offset_us)


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Records a forest of spans on a monotonic microsecond clock."""

    def __init__(self, clock_ns: Callable[[], int] = time.perf_counter_ns,
                 process_name: str = "repro") -> None:
        self._clock_ns = clock_ns
        self._epoch_ns = clock_ns()
        self.process_name = process_name
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> int:
        return (self._clock_ns() - self._epoch_ns) // 1000

    def span(self, name: str, category: str = "pipeline",
             **args: Any) -> _SpanContext:
        """Open a span; use as a context manager."""
        span = Span(name, category, self._now_us(), args or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        end = self._now_us()
        # Close any dangling descendants first (an exception may have
        # skipped inner __exit__ calls when re-raised across frames).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            dangling.duration_us = max(0, end - dangling.start_us)
        if self._stack:
            self._stack.pop()
        span.duration_us = max(0, end - span.start_us)

    @classmethod
    def from_dict(cls, roots: list[dict[str, Any]],
                  process_name: str = "repro") -> "Tracer":
        """A tracer adopting a span forest exported with :meth:`to_dict`.

        :meth:`merge` only reads the other tracer's roots and process
        name, so a reconstructed tracer merges (and rebases) exactly
        like the live worker tracer it was exported from.
        """
        tracer = cls(process_name=process_name)
        tracer.roots = [Span.from_dict(entry) for entry in roots]
        return tracer

    # -- merge --------------------------------------------------------------

    def merge(self, other: "Tracer") -> None:
        """Adopt another tracer's span forest (e.g. from a pool worker).

        The other tracer's roots are appended under a synthetic
        ``merged:<process_name>`` root so worker timelines stay
        distinguishable.  Each process measures against its own
        monotonic epoch, so worker timestamps are meaningless on the
        parent clock; the merged subtree is rebased with one offset per
        worker, placing its timeline so that it *ends* at the merge
        point (the worker finished no later than the moment its spans
        arrived here).  Relative timing within the worker is preserved
        exactly.
        """
        if not other.roots:
            return
        first_start = min(root.start_us for root in other.roots)
        last_end = max(root.start_us + root.duration_us
                       for root in other.roots)
        offset = self._now_us() - last_end
        # Never rebase before the parent's own epoch.
        offset = max(offset, -first_start)
        for root in other.roots:
            _shift_span(root, offset)
        wrapper = Span(f"merged:{other.process_name}", "merge",
                       first_start + offset)
        wrapper.duration_us = last_end - first_start
        wrapper.children.extend(other.roots)
        self.roots.append(wrapper)

    # -- export -------------------------------------------------------------

    def walk(self):
        """All spans, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def to_chrome_events(self) -> list[dict[str, Any]]:
        """Complete ("ph": "X") events for every recorded span."""
        events = []
        for span in self.walk():
            event: dict[str, Any] = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": 0,
                "tid": 0,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return events

    def to_chrome_trace(self) -> dict[str, Any]:
        """The ``about://tracing`` document: metadata + all span events."""
        events: list[dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": self.process_name},
        }]
        events.extend(self.to_chrome_events())
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_dict(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots]

    def dumps(self) -> str:
        return json.dumps(self.to_chrome_trace(), indent=2, sort_keys=True)
