"""Self-contained HTML heatmap panel for profile artifacts.

One figure per profiled execution: each function is a row of cells,
one cell per basic block in layout order, shaded by dynamic entry
count on a log scale.  The panel follows the perf dashboard's chart
conventions (:mod:`repro.perf.report`):

* magnitude is a **sequential single-hue ramp** (light→dark blue);
  the dark color scheme declares its own steps against the dark
  surface rather than flipping the light ones;
* the color scale is never the only encoding — every cell carries a
  native ``<title>`` tooltip and each figure a collapsible data table
  with the exact counts;
* a scale legend maps the ramp ends to the min/max observed entries.

:func:`render_heatmap_html` emits a standalone document (the
``repro profile --heatmap`` artifact); :func:`heatmap_section` emits
one embeddable ``<figure>`` fragment, which ``repro perf report
--profiles`` splices into the dashboard as the per-workload hot-block
view.
"""

from __future__ import annotations

import math

from ..perf.report import _CSS, _data_table, _esc
from .model import ExecutionProfile, _ranked_blocks, _ranked_functions

#: Sequential ramp, one blue hue, light→dark (magnitude encoding).
_HEAT_LIGHT = ["#eef3fb", "#cdddf4", "#9cc0e8", "#649ada",
               "#2a78d6", "#1a4f93"]
#: Dark-mode steps are selected against the dark surface, not flipped:
#: low magnitude sits near the surface, high magnitude brightens.
_HEAT_DARK = ["#202a3c", "#24406a", "#2b5a96", "#3379c4",
              "#3987e5", "#8ab6f1"]

HEAT_CSS = (
    ":root {\n"
    + "".join(f"  --heat-{i}: {hex_};\n"
              for i, hex_ in enumerate(_HEAT_LIGHT))
    + "}\n"
    "@media (prefers-color-scheme: dark) {\n  :root {\n"
    + "".join(f"    --heat-{i}: {hex_};\n"
              for i, hex_ in enumerate(_HEAT_DARK))
    + "  }\n}\n"
    ".heatmap { display: grid; gap: 4px; margin: 8px 0; }\n"
    ".heatrow { display: flex; align-items: center; gap: 2px; }\n"
    ".heatrow .fn { width: 180px; flex: none; overflow: hidden;\n"
    "  text-overflow: ellipsis; white-space: nowrap;\n"
    "  color: var(--text-secondary); font-size: 0.8rem; }\n"
    ".cell { width: 22px; height: 22px; border-radius: 4px;\n"
    "  flex: none; }\n"
    ".cell.cold { outline: 1px dashed var(--grid);\n"
    "  outline-offset: -1px; }\n"
    ".scale { display: flex; align-items: center; gap: 6px;\n"
    "  color: var(--text-secondary); font-size: 0.8rem;\n"
    "  margin: 6px 0; }\n"
    ".scale .step { width: 18px; height: 10px; border-radius: 3px; }\n"
)


def _bin(entries: int, max_entries: int) -> int:
    """Log-scale bucket 0..5 (0 = never entered)."""
    if entries <= 0 or max_entries <= 0:
        return 0
    span = math.log1p(max_entries)
    position = math.log1p(entries) / span if span else 1.0
    return max(1, min(5, 1 + int(position * 4.999)))


def _scale_legend(max_entries: int) -> str:
    steps = "".join(
        f'<span class="step" style="background:var(--heat-{i})"></span>'
        for i in range(1, 6)
    )
    return (f'<div class="scale"><span>1</span>{steps}'
            f'<span>{max_entries:,} entries (log scale)</span></div>')


def heatmap_section(profile: ExecutionProfile) -> str:
    """One embeddable ``<figure>``: the profile's hot-block heatmap."""
    max_entries = max(
        (b.entries for f in profile.functions for b in f.blocks),
        default=0,
    )
    if max_entries == 0:
        return ""
    rows = []
    table_rows = []
    for func in _ranked_functions(profile.functions):
        if not any(b.entries for b in func.blocks):
            continue
        cells = []
        for block in func.blocks:  # layout order = reading order
            bucket = _bin(block.entries, max_entries)
            cold = ' cold' if not block.entries else ""
            share = (100.0 * block.self_cycles / profile.total_cycles
                     if profile.total_cycles else 0.0)
            cells.append(
                f'<div class="cell{cold}" '
                f'style="background:var(--heat-{bucket})" '
                f'title="{_esc(func.name)}.{_esc(block.label)}: '
                f'{block.entries:,} entries, '
                f'{block.self_cycles:.0f} cycles ({share:.1f}%)"></div>'
            )
        rows.append(f'<div class="heatrow">'
                    f'<span class="fn" title="{_esc(func.name)}">'
                    f'{_esc(func.name)}</span>{"".join(cells)}</div>')
        for block in _ranked_blocks(func.blocks):
            if block.entries:
                table_rows.append((func.name, block.label,
                                   f"{block.entries:,}",
                                   f"{block.self_cycles:.0f}"))
    label = profile.workload or profile.program
    caption = (f"{label}: per-block entry heatmap "
               f"({profile.engine} engine, variant "
               f"“{profile.variant or 'unknown'}”)")
    table = _data_table(("function", "block", "entries", "self cycles"),
                        table_rows)
    return (f"<figure><figcaption>{_esc(caption)}</figcaption>"
            f"{_scale_legend(max_entries)}"
            f'<div class="heatmap">{"".join(rows)}</div>'
            f"{table}</figure>")


def render_heatmap_html(profiles: list[ExecutionProfile],
                        title: str = "repro profile heatmap") -> str:
    """A standalone document: one heatmap figure per profile."""
    sections = [heatmap_section(p) for p in profiles]
    body = "".join(s for s in sections if s)
    if not body:
        body = "<p>No profiled executions to plot.</p>"
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}{HEAT_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{body}"
        f"<footer>{len(profiles)} profile artifacts · all assets "
        "inline</footer></body></html>\n"
    )
