"""Execution observatory: per-block hotness profiles and their artifacts.

The profiling subsystem answers *where* a run spends its time and its
sign extensions, block by block, over both execution engines:

* :mod:`~repro.profile.model` — the :class:`ExecutionProfile` data
  model and the versioned, content-fingerprinted artifact schema;
* :mod:`~repro.profile.builder` — :func:`build_profile`, which derives
  every number from the ``ExecResult`` the engines already produce
  (no new per-instruction work in either hot loop);
* :mod:`~repro.profile.artifact` — deterministic JSON read/write;
* :mod:`~repro.profile.render` — the annotated IR dump and the
  collapsed-stack flamegraph export;
* :mod:`~repro.profile.heatmap` — the self-contained HTML heatmap
  panel, also embeddable into the perf dashboard.

Surface: ``repro profile <workload>``, ``repro bench --profile-dir``,
``repro perf report --profiles``, ``CampaignConfig.profile_dir``, and
``repro.api.profile``.  See docs/PROFILING.md.
"""

from .artifact import (
    ARTIFACT_SUFFIX,
    PROFILE_DIR_ENV,
    artifact_path,
    artifact_stem,
    load_profile,
    load_profiles,
    profile_dir_from_env,
    validate_artifact_file,
    write_profile,
)
from .builder import build_profile
from .heatmap import heatmap_section, render_heatmap_html
from .model import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    BlockProfile,
    ExecutionProfile,
    ExtendSite,
    FunctionProfile,
    validate_profile,
)
from .render import (
    format_annotated_ir,
    format_flamegraph,
    format_profile_summary,
)

__all__ = [
    "ARTIFACT_KIND",
    "ARTIFACT_SUFFIX",
    "BlockProfile",
    "ExecutionProfile",
    "ExtendSite",
    "FunctionProfile",
    "PROFILE_DIR_ENV",
    "SCHEMA_VERSION",
    "artifact_path",
    "artifact_stem",
    "build_profile",
    "format_annotated_ir",
    "format_flamegraph",
    "format_profile_summary",
    "heatmap_section",
    "load_profile",
    "load_profiles",
    "profile_dir_from_env",
    "render_heatmap_html",
    "validate_artifact_file",
    "validate_profile",
    "write_profile",
]
