"""Reconstruct an :class:`ExecutionProfile` from an ``ExecResult``.

The central trick is the one the closure engine's fold already relies
on (see ``ClosureInterpreter._fold_counts``): **on a successful run,
every entered block completed**, so every instruction in a block's
executed cut shares the block's entry count.  Reading it back out is
the same identity in reverse — a block's dynamic entry count is the
``site_counts`` value of its *first* instruction:

* the closure engine fills ``site_counts`` by multiplying block-entry
  counters by the static per-block mix, so the first instruction's
  count *is* the fold counter;
* the reference loop counts every instruction it executes, and the
  first instruction of a block runs exactly once per entry.

Both engines therefore yield the same profile from the result they
already produce, and profiling adds **no per-instruction work** to
either hot loop — the zero-overhead contract the engine-parity suite
enforces.

Self time is modelled with the same cycle table the paper figures use
(:mod:`repro.machine.costs`); cumulative time propagates self cycles
through the dynamic call graph, collapsing strongly connected
components so recursion cannot double-count.
"""

from __future__ import annotations

from ..interp.interpreter import _EXTEND_WIDTH, ExecResult
from ..ir.function import Function, Program
from ..ir.opcodes import Opcode
from ..machine.costs import DEFAULT_COSTS
from ..machine.model import MachineTraits
from ..telemetry.decisions import DecisionLog
from .model import (
    BlockProfile,
    ExecutionProfile,
    ExtendSite,
    FunctionProfile,
)

_TERMINATORS = (Opcode.BR, Opcode.JMP, Opcode.RET)


def _executed_cut(block) -> list:
    """Instructions through the first terminator — what both engines
    execute on entry (the tail past a terminator is unreachable)."""
    cut = []
    for instr in block.instrs:
        cut.append(instr)
        if instr.opcode in _TERMINATORS:
            break
    return cut


def build_profile(
    program: Program,
    result: ExecResult,
    *,
    traits: MachineTraits | None = None,
    engine: str = "closure",
    variant: str = "",
    machine: str = "",
    workload: str = "",
    decisions: DecisionLog | None = None,
) -> ExecutionProfile:
    """Derive the full hotness profile of one successful execution.

    ``decisions`` optionally attaches the compile-time decision log so
    surviving extend sites carry their verdict/cause in the artifact
    and the annotated renderer.
    """
    extend_cost = traits.extend_cost if traits is not None else 1.0
    machine = machine or (traits.name if traits is not None else "")
    profile = ExecutionProfile(
        program=program.name,
        engine=engine,
        variant=variant,
        machine=machine,
        workload=workload,
        steps=result.steps,
        checksum=result.checksum,
        extend_totals={w: c for w, c in sorted(result.extend_counts.items())
                       if c},
        opcode_totals={
            op.value: count
            for op, count in sorted(result.opcode_counts.items(),
                                    key=lambda item: item[0].value)
            if count
        },
    )
    verdicts = _verdict_index(decisions)
    for func in program.functions.values():
        fprofile = _profile_function(func, result, extend_cost, verdicts)
        profile.functions.append(fprofile)
        profile.total_cycles += fprofile.self_cycles
        profile.extend_cycles += sum(
            site.count * extend_cost
            for block in fprofile.blocks
            for site in block.extend_sites
        )
    _propagate_cumulative(profile)
    return profile


def _verdict_index(
    decisions: DecisionLog | None,
) -> dict[int, tuple[str, str]]:
    if decisions is None:
        return {}
    return {r.instr_uid: (r.verdict, r.cause) for r in decisions}


def _profile_function(func: Function, result: ExecResult,
                      extend_cost: float,
                      verdicts: dict[int, tuple[str, str]],
                      ) -> FunctionProfile:
    site_counts = result.site_counts
    fprofile = FunctionProfile(
        name=func.name,
        entries=0,
        edges=dict(result.profiles.get(func.name, {})),
    )
    for index, block in enumerate(func.blocks):
        cut = _executed_cut(block)
        entries = site_counts.get(cut[0].uid, 0) if cut else 0
        self_cycles = 0.0
        sites: list[ExtendSite] = []
        for instr in cut:
            if instr.is_extend:
                self_cycles += entries * extend_cost
                verdict, cause = verdicts.get(instr.uid, (None, None))
                sites.append(ExtendSite(
                    uid=instr.uid, instr=str(instr),
                    width=_EXTEND_WIDTH[instr.opcode],
                    count=entries, verdict=verdict, cause=cause,
                ))
            else:
                self_cycles += entries * DEFAULT_COSTS[instr.opcode]
            if entries and instr.opcode is Opcode.CALL:
                fprofile.calls[instr.callee] = (
                    fprofile.calls.get(instr.callee, 0) + entries
                )
        if index == 0:
            fprofile.entries = entries
        fprofile.self_cycles += self_cycles
        fprofile.blocks.append(BlockProfile(
            label=block.label,
            entries=entries,
            instrs=len(cut),
            self_cycles=self_cycles,
            extend_sites=sites,
        ))
    return fprofile


# -- cumulative time over the dynamic call graph ------------------------------

def _entering_calls(profile: ExecutionProfile,
                    component_of: dict[str, int]) -> dict[int, int]:
    """Per component: dynamic calls arriving from *other* components."""
    entering: dict[int, int] = {}
    for func in profile.functions:
        for callee, count in func.calls.items():
            comp = component_of.get(callee)
            if comp is None or comp == component_of[func.name]:
                continue
            entering[comp] = entering.get(comp, 0) + count
    return entering

def _propagate_cumulative(profile: ExecutionProfile) -> None:
    """Fill ``cumulative_cycles``: self plus attributed callee time.

    A callee's cumulative cycles are split among its callers in
    proportion to their dynamic call counts.  Strongly connected
    components of the call graph (recursion) are collapsed first, so
    every function inside a cycle reports the component's combined
    cumulative time instead of diverging.
    """
    by_name = {f.name: f for f in profile.functions}
    graph = {
        f.name: [c for c in f.calls if c in by_name]
        for f in profile.functions
    }
    component_of = _tarjan_scc(graph)
    members: dict[int, list[str]] = {}
    for name, comp in component_of.items():
        members.setdefault(comp, []).append(name)
    # Calls *entering* each component from outside it.  Intra-component
    # (recursive) calls are not entry points: the component's combined
    # self time already covers them, so counting them in the split
    # denominator would starve the real callers of attribution.
    entering = _entering_calls(profile, component_of)

    cumulative: dict[int, float] = {}

    def component_cumulative(comp: int) -> float:
        if comp in cumulative:
            return cumulative[comp]
        total = sum(by_name[name].self_cycles for name in members[comp])
        for name in members[comp]:
            for callee, count in by_name[name].calls.items():
                if callee not in component_of:
                    continue
                callee_comp = component_of[callee]
                if callee_comp == comp:
                    continue  # intra-component (recursive) edge
                fraction = count / max(1, entering.get(callee_comp, count))
                total += fraction * component_cumulative(callee_comp)
        cumulative[comp] = total
        return total

    for func in profile.functions:
        func.cumulative_cycles = component_cumulative(
            component_of[func.name]
        )


def _tarjan_scc(graph: dict[str, list[str]]) -> dict[str, int]:
    """Iterative Tarjan; returns node -> component id (deterministic)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component_of: dict[str, int] = {}
    counter = [0]
    components = [0]

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = graph[node]
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = components[0]
                    if member == node:
                        break
                components[0] += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component_of
