"""The execution-profile data model and its versioned artifact schema.

A profile is the runtime counterpart of the compile-time decision log:
where did block entries, sign extensions, and modelled cycles actually
go during one execution.  The model is deliberately *derived* data —
:mod:`repro.profile.builder` reconstructs every number from the
``ExecResult`` the engines already produce, so collecting a profile
adds no per-instruction work to either hot loop.

Artifacts serialize to one JSON document (``kind: "repro-profile"``,
``schema_version: 1``) that is **content-fingerprinted** (a SHA-256
digest over the canonical payload, excluding the fingerprint itself)
and **deterministic**: rows are ranked by hotness with stable name
tie-breaks, and nothing host- or time-dependent enters the payload, so
two runs of the same program produce byte-identical dumps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..analysis.frequency import BranchProfile

#: Bump when the artifact layout changes; loaders reject newer majors.
SCHEMA_VERSION = 1

#: Discriminator so a profile artifact is never mistaken for telemetry,
#: perf-history, or fuzz-corpus JSON.
ARTIFACT_KIND = "repro-profile"


@dataclass
class ExtendSite:
    """One static sign-extension site and its dynamic execution count."""

    uid: int
    instr: str
    width: int
    count: int
    #: compile-time verdict from the decision log, when one was attached
    #: ("eliminated" sites no longer appear in compiled code, so a site
    #: present here is either "kept" or was never a candidate)
    verdict: str | None = None
    cause: str | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "uid": self.uid,
            "instr": self.instr,
            "width": self.width,
            "count": self.count,
        }
        if self.verdict is not None:
            out["verdict"] = self.verdict
        if self.cause is not None:
            out["cause"] = self.cause
        return out


@dataclass
class BlockProfile:
    """Hotness of one basic block."""

    label: str
    #: dynamic entries — exactly the closure engine's fold-on-success
    #: counter for this block
    entries: int
    #: static instructions in the executed cut (through the terminator)
    instrs: int
    #: modelled cycles spent in this block's own instructions
    self_cycles: float
    extend_sites: list[ExtendSite] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "entries": self.entries,
            "instrs": self.instrs,
            "self_cycles": self.self_cycles,
            "extend_sites": [s.as_dict() for s in self.extend_sites],
        }


@dataclass
class FunctionProfile:
    """Hotness of one function: blocks, edges, calls, time estimates."""

    name: str
    #: entries of the function's entry block (== times called)
    entries: int
    blocks: list[BlockProfile] = field(default_factory=list)
    #: (src label, dst label) -> taken count; only populated when the
    #: run collected branch profiles
    edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: callee name -> dynamic call count out of this function
    calls: dict[str, int] = field(default_factory=dict)
    self_cycles: float = 0.0
    #: self plus attributed callee cycles (call-graph propagated)
    cumulative_cycles: float = 0.0

    def block(self, label: str) -> BlockProfile:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "entries": self.entries,
            "self_cycles": self.self_cycles,
            "cumulative_cycles": self.cumulative_cycles,
            "calls": {k: self.calls[k] for k in sorted(self.calls)},
            "blocks": [b.as_dict() for b in _ranked_blocks(self.blocks)],
            "edges": [
                {"src": src, "dst": dst, "count": count}
                for (src, dst), count in sorted(self.edges.items())
            ],
        }


@dataclass
class ExecutionProfile:
    """Everything one profiled execution established."""

    program: str
    engine: str
    functions: list[FunctionProfile] = field(default_factory=list)
    #: run identification, free-form but deterministic (variant name,
    #: machine name, workload name — never timestamps or hosts)
    variant: str = ""
    machine: str = ""
    workload: str = ""
    steps: int = 0
    checksum: int = 0
    total_cycles: float = 0.0
    extend_cycles: float = 0.0
    #: dynamic executions of explicit sign extensions, by source width
    extend_totals: dict[int, int] = field(default_factory=dict)
    #: opcode name -> dynamic execution count
    opcode_totals: dict[str, int] = field(default_factory=dict)

    def function(self, name: str) -> FunctionProfile:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def block_entries(self) -> dict[str, dict[str, int]]:
        """``{function: {block label: entry count}}`` — the shape the
        closure engine's fold counters take."""
        return {
            func.name: {b.label: b.entries for b in func.blocks}
            for func in self.functions
        }

    def branch_profiles(self) -> dict[str, BranchProfile]:
        """Round-trip into :func:`collect_branch_profiles`-compatible
        :class:`BranchProfile` objects (functions with observed edges)."""
        return {
            func.name: BranchProfile(dict(func.edges))
            for func in self.functions
            if func.edges
        }

    # -- serialization --------------------------------------------------

    def payload(self) -> dict[str, Any]:
        """The canonical (fingerprint-free) document body."""
        return {
            "kind": ARTIFACT_KIND,
            "schema_version": SCHEMA_VERSION,
            "program": self.program,
            "workload": self.workload,
            "variant": self.variant,
            "machine": self.machine,
            "engine": self.engine,
            "steps": self.steps,
            "checksum": f"{self.checksum:#018x}",
            "totals": {
                "cycles": self.total_cycles,
                "extend_cycles": self.extend_cycles,
                "extends": {str(w): self.extend_totals[w]
                            for w in sorted(self.extend_totals)},
                "opcodes": {k: self.opcode_totals[k]
                            for k in sorted(self.opcode_totals)},
            },
            "functions": [
                f.as_dict() for f in _ranked_functions(self.functions)
            ],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical payload; content-addresses the
        artifact the same way perf records and the compile cache are."""
        canonical = json.dumps(self.payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        document = self.payload()
        document["fingerprint"] = self.fingerprint()
        return document

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "ExecutionProfile":
        problems = validate_profile(document)
        if problems:
            raise ValueError(f"invalid profile artifact: {problems[0]}")
        totals = document["totals"]
        profile = cls(
            program=document["program"],
            engine=document["engine"],
            variant=document.get("variant", ""),
            machine=document.get("machine", ""),
            workload=document.get("workload", ""),
            steps=document["steps"],
            checksum=int(document["checksum"], 16),
            total_cycles=totals["cycles"],
            extend_cycles=totals["extend_cycles"],
            extend_totals={int(w): c
                           for w, c in totals["extends"].items()},
            opcode_totals=dict(totals["opcodes"]),
        )
        for fdoc in document["functions"]:
            func = FunctionProfile(
                name=fdoc["name"],
                entries=fdoc["entries"],
                self_cycles=fdoc["self_cycles"],
                cumulative_cycles=fdoc["cumulative_cycles"],
                calls=dict(fdoc["calls"]),
                edges={(e["src"], e["dst"]): e["count"]
                       for e in fdoc["edges"]},
            )
            for bdoc in fdoc["blocks"]:
                func.blocks.append(BlockProfile(
                    label=bdoc["label"],
                    entries=bdoc["entries"],
                    instrs=bdoc["instrs"],
                    self_cycles=bdoc["self_cycles"],
                    extend_sites=[
                        ExtendSite(
                            uid=s["uid"], instr=s["instr"],
                            width=s["width"], count=s["count"],
                            verdict=s.get("verdict"),
                            cause=s.get("cause"),
                        )
                        for s in bdoc["extend_sites"]
                    ],
                ))
            profile.functions.append(func)
        return profile


def _ranked_functions(
    functions: list[FunctionProfile],
) -> list[FunctionProfile]:
    """Hottest first, name as the stable tie-break."""
    return sorted(functions,
                  key=lambda f: (-f.self_cycles, -f.entries, f.name))


def _ranked_blocks(blocks: list[BlockProfile]) -> list[BlockProfile]:
    return sorted(blocks,
                  key=lambda b: (-b.entries, -b.self_cycles, b.label))


def validate_profile(document: Any) -> list[str]:
    """Schema-check one artifact document; returns problem strings.

    Mirrors ``validate_telemetry_document``/``validate_record``: cheap
    structural validation CI can run against emitted artifacts.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["artifact is not a JSON object"]
    if document.get("kind") != ARTIFACT_KIND:
        problems.append(f"kind is {document.get('kind')!r}, "
                        f"expected {ARTIFACT_KIND!r}")
    version = document.get("schema_version")
    if not isinstance(version, int) or version < 1:
        problems.append(f"bad schema_version: {version!r}")
    elif version > SCHEMA_VERSION:
        problems.append(f"schema_version {version} is newer than "
                        f"supported {SCHEMA_VERSION}")
    for key, types in (("program", str), ("engine", str), ("steps", int),
                       ("checksum", str), ("totals", dict),
                       ("functions", list), ("fingerprint", str)):
        if not isinstance(document.get(key), types):
            problems.append(f"missing or mistyped field: {key}")
    if problems:
        return problems
    totals = document["totals"]
    for key in ("cycles", "extend_cycles", "extends", "opcodes"):
        if key not in totals:
            problems.append(f"totals is missing {key}")
    for fdoc in document["functions"]:
        if not isinstance(fdoc, dict) or "name" not in fdoc:
            problems.append("malformed function entry")
            continue
        for key in ("entries", "self_cycles", "cumulative_cycles",
                    "calls", "blocks", "edges"):
            if key not in fdoc:
                problems.append(f"function {fdoc['name']} missing {key}")
        for bdoc in fdoc.get("blocks", ()):
            for key in ("label", "entries", "instrs", "self_cycles",
                        "extend_sites"):
                if key not in bdoc:
                    problems.append(
                        f"block in {fdoc['name']} missing {key}")
                    break
    # The fingerprint must match the payload it claims to address.
    body = {k: v for k, v in document.items() if k != "fingerprint"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    if digest != document["fingerprint"]:
        problems.append("fingerprint does not match payload")
    return problems
