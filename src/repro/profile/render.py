"""Text renderers: the annotated IR dump and the flamegraph export.

Two of the three ``repro profile`` views live here (the HTML heatmap is
:mod:`repro.profile.heatmap`):

* :func:`format_annotated_ir` — the program's IR with dynamic hotness
  woven in: blocks ranked hottest-first per function, entry counts and
  self-cycle shares in the margin, dynamic extend counts at every
  surviving extension site, and the compile-time elimination verdict
  (from the PR-1 decision log) inlined where one was recorded.
* :func:`format_flamegraph` — collapsed-stack text (the
  ``caller;callee;... value`` format every flamegraph tool ingests).
  Stacks are reconstructed from the dynamic call graph: each function's
  self cycles are distributed over its callers in proportion to their
  observed call counts, and recursive edges fold into the first
  occurrence on the stack.
"""

from __future__ import annotations

from ..ir.function import Program
from .builder import _entering_calls, _tarjan_scc
from .model import ExecutionProfile, _ranked_blocks, _ranked_functions


def _component_members(component_of: dict[str, int],
                       component: int) -> list[str]:
    return [name for name, comp in component_of.items()
            if comp == component]


def format_profile_summary(profile: ExecutionProfile,
                           top: int = 5) -> str:
    """A terminal-sized digest: hottest functions and blocks."""
    lines = [
        f"profile   : {profile.program}"
        + (f" ({profile.workload})" if profile.workload else ""),
        f"engine    : {profile.engine}   steps {profile.steps}   "
        f"cycles {profile.total_cycles:.0f} "
        f"({profile.extend_cycles:.0f} in sign extensions)",
    ]
    ranked = _ranked_functions(profile.functions)
    for func in ranked[:top]:
        if func.entries == 0 and func.self_cycles == 0:
            continue
        share = (100.0 * func.self_cycles / profile.total_cycles
                 if profile.total_cycles else 0.0)
        lines.append(
            f"  {func.name:<24s} self {func.self_cycles:>12.0f} cy "
            f"({share:5.1f}%)  cumulative {func.cumulative_cycles:>12.0f} "
            f"cy  calls {func.entries}"
        )
        for block in _ranked_blocks(func.blocks)[:3]:
            if not block.entries:
                continue
            lines.append(f"    {block.label:<22s} "
                         f"entries {block.entries:>10d}  "
                         f"self {block.self_cycles:>12.0f} cy")
    return "\n".join(lines)


def format_annotated_ir(program: Program,
                        profile: ExecutionProfile) -> str:
    """The IR dump with hotness and elimination decisions inlined."""
    parts = []
    total = profile.total_cycles or 1.0
    for fprofile in _ranked_functions(profile.functions):
        func = program.functions.get(fprofile.name)
        if func is None:
            continue
        share = 100.0 * fprofile.self_cycles / total
        lines = [
            f"func @{func.name}{func.sig} "
            f"params({', '.join(str(p) for p in func.params)}) {{"
            f"    ; calls={fprofile.entries} "
            f"self={fprofile.self_cycles:.0f}cy ({share:.1f}%) "
            f"cumulative={fprofile.cumulative_cycles:.0f}cy"
        ]
        by_label = {b.label: b for b in fprofile.blocks}
        sites = {
            site.uid: site
            for block in fprofile.blocks
            for site in block.extend_sites
        }
        rank = {b.label: i + 1
                for i, b in enumerate(_ranked_blocks(fprofile.blocks))
                if b.entries}
        for block in func.blocks:
            bprofile = by_label.get(block.label)
            entries = bprofile.entries if bprofile is not None else 0
            header = f"{block.label}:"
            if entries:
                header += (f"    ; entries={entries} "
                           f"self={bprofile.self_cycles:.0f}cy "
                           f"hot#{rank[block.label]}")
            else:
                header += "    ; never entered"
            lines.append(header)
            for instr in block.instrs:
                text = f"  {instr}"
                site = sites.get(instr.uid)
                if site is not None:
                    note = f"    ; executed {site.count}x"
                    if site.verdict is not None:
                        note += f" [{site.verdict}"
                        if site.cause:
                            note += f": {site.cause}"
                        note += "]"
                    text += note
                lines.append(text)
        lines.append("}")
        parts.append("\n".join(lines))
    return "\n\n".join(parts)


def format_flamegraph(profile: ExecutionProfile,
                      root: str = "main") -> str:
    """Collapsed-stack lines (``a;b;c <cycles>``), one per stack.

    Cycle values are each function's *self* cycles, split across call
    paths by the dynamic call-count fractions, so the total over all
    lines equals ``profile.total_cycles`` (up to integer rounding).
    Output order is deterministic (stack string order).
    """
    by_name = {f.name: f for f in profile.functions}
    if root not in by_name:
        return ""
    # Split a callee's time over callers by calls entering its SCC from
    # outside — recursive calls fold into the first stack occurrence,
    # so they must not dilute the denominator either.
    component_of = _tarjan_scc({
        f.name: [c for c in f.calls if c in by_name]
        for f in profile.functions
    })
    entering = _entering_calls(profile, component_of)

    lines: dict[str, float] = {}

    def descend(name: str, stack: tuple[str, ...],
                fraction: float) -> None:
        func = by_name[name]
        path = stack + (name,)
        value = func.self_cycles * fraction
        if value > 0:
            key = ";".join(path)
            lines[key] = lines.get(key, 0.0) + value
        component = component_of[name]
        for callee in sorted(func.calls):
            if callee not in by_name or callee in path:
                continue  # recursion folds into the first occurrence
            if component_of[callee] == component:
                continue  # mutual recursion: same fold rule
            calls = func.calls[callee]
            child_fraction = fraction * calls / max(
                1, entering.get(component_of[callee], calls))
            descend(callee, path, child_fraction)
        if len(members := _component_members(component_of, component)) > 1:
            # A mutually recursive partner's self time lands on this
            # stack too (it folds into the component's first frame).
            for partner in members:
                if partner == name or partner in path:
                    continue
                value = by_name[partner].self_cycles * fraction
                if value > 0:
                    key = ";".join(path)
                    lines[key] = lines.get(key, 0.0) + value

    descend(root, (), 1.0)
    # Self cycles of functions unreachable from the root by attributed
    # call edges (e.g. the root's own callers) still deserve a stack.
    reached = {name for key in lines for name in key.split(";")}
    for func in _ranked_functions(profile.functions):
        if func.name not in reached and func.self_cycles > 0:
            lines[func.name] = func.self_cycles

    return "\n".join(
        f"{stack} {round(value)}"
        for stack, value in sorted(lines.items())
        if round(value) > 0
    )
