"""Reading and writing profile artifacts.

One artifact is one JSON file named ``<stem>.profile.json``.  Dumps are
deterministic (``sort_keys``, ranked rows, no timestamps), so repeated
profiling of the same program diffs cleanly — and the embedded
content fingerprint makes any two artifacts comparable by identity.

``PROFILE_DIR_ENV`` mirrors the perf observatory's ``REPRO_PERF_DIR``:
setting it opts any producer into writing artifacts without plumbing.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from .model import ExecutionProfile, validate_profile

#: environment variable naming a directory to drop artifacts into
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

ARTIFACT_SUFFIX = ".profile.json"


def artifact_stem(*parts: str) -> str:
    """A filesystem-safe stem from identifying parts (workload, variant,
    machine...); empty parts are dropped."""
    cleaned = [re.sub(r"[^A-Za-z0-9._-]+", "-", part).strip("-")
               for part in parts if part]
    return "__".join(p for p in cleaned if p) or "profile"


def artifact_path(directory: str | Path, *parts: str) -> Path:
    return Path(directory) / (artifact_stem(*parts) + ARTIFACT_SUFFIX)


def write_profile(profile: ExecutionProfile,
                  path: str | Path) -> Path:
    """Serialize one profile; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_profile(path: str | Path) -> ExecutionProfile:
    """Load and schema-validate one artifact."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return ExecutionProfile.from_dict(document)


def load_profiles(directory: str | Path) -> list[ExecutionProfile]:
    """Every valid artifact under ``directory``, in name order."""
    directory = Path(directory)
    profiles = []
    if not directory.is_dir():
        return profiles
    for path in sorted(directory.glob(f"*{ARTIFACT_SUFFIX}")):
        try:
            profiles.append(load_profile(path))
        except (ValueError, json.JSONDecodeError, OSError):
            continue  # skip foreign or truncated files, keep the rest
    return profiles


def profile_dir_from_env() -> Path | None:
    """The ``$REPRO_PROFILE_DIR`` directory, if set."""
    directory = os.environ.get(PROFILE_DIR_ENV)
    return Path(directory) if directory else None


def validate_artifact_file(path: str | Path) -> list[str]:
    """Schema-check one on-disk artifact; returns problem strings."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable artifact: {exc}"]
    return validate_profile(document)
