"""Recursive-descent parser for J32."""

from __future__ import annotations

from . import ast
from .ast import JType, Prim
from .errors import ParseError
from .lexer import TokKind, Token, tokenize

_PRIMS = {p.value: p for p in Prim}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=", ">>>="}

# Binary precedence levels, loosest first (&&/|| handled separately).
_BINARY_LEVELS = [
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokKind.EOF:
            self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(f"expected {text!r}, got {self.current.text!r}",
                             self.current.line, self.current.column)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, got {self.current.text!r}",
                             self.current.line, self.current.column)
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line, self.current.column)

    # -- types ------------------------------------------------------------

    def at_type(self) -> bool:
        return (self.current.kind is TokKind.KEYWORD
                and self.current.text in _PRIMS)

    def parse_type(self) -> JType:
        token = self.advance()
        if token.text not in _PRIMS:
            raise ParseError(f"expected type, got {token.text!r}",
                             token.line, token.column)
        dims = 0
        while self.current.is_op("[") and self.peek().is_op("]"):
            self.advance()
            self.advance()
            dims += 1
        return JType(_PRIMS[token.text], dims)

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit()
        while self.current.kind is not TokKind.EOF:
            if self.current.is_kw("global"):
                self.advance()
                unit.globals.append(self._parse_global())
                continue
            if not self.at_type():
                raise self.error(
                    f"expected declaration, got {self.current.text!r}"
                )
            # type ident '(' => function; otherwise a global.
            save = self.position
            self.parse_type()
            is_function = (self.current.kind is TokKind.IDENT
                           and self.peek().is_op("("))
            self.position = save
            if is_function:
                unit.functions.append(self._parse_function())
            else:
                unit.globals.append(self._parse_global())
        return unit

    def _parse_global(self) -> ast.GlobalDecl:
        line = self.current.line
        type_ = self.parse_type()
        name = self.expect_ident().text
        init = None
        if self.accept_op("="):
            init = self.parse_expr()
        self.expect_op(";")
        return ast.GlobalDecl(type=type_, name=name, init=init, line=line)

    def _parse_function(self) -> ast.FuncDecl:
        line = self.current.line
        ret = self.parse_type()
        name = self.expect_ident().text
        self.expect_op("(")
        params: list[ast.Param] = []
        if not self.current.is_op(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect_ident().text
                params.append(ast.Param(type=ptype, name=pname))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self._parse_block()
        return ast.FuncDecl(ret=ret, name=name, params=params, body=body,
                            line=line)

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> ast.BlockStmt:
        line = self.current.line
        self.expect_op("{")
        body: list[ast.Stmt] = []
        while not self.current.is_op("}"):
            if self.current.kind is TokKind.EOF:
                raise self.error("unterminated block")
            body.append(self.parse_stmt())
        self.expect_op("}")
        return ast.BlockStmt(body=body, line=line)

    def parse_stmt(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            return self._parse_block()
        if token.is_kw("if"):
            return self._parse_if()
        if token.is_kw("while"):
            return self._parse_while()
        if token.is_kw("do"):
            return self._parse_do_while()
        if token.is_kw("for"):
            return self._parse_for()
        if token.is_kw("return"):
            self.advance()
            value = None if self.current.is_op(";") else self.parse_expr()
            self.expect_op(";")
            return ast.ReturnStmt(value=value, line=token.line)
        if token.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return ast.BreakStmt(line=token.line)
        if token.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return ast.ContinueStmt(line=token.line)
        if self.at_type():
            decl = self._parse_var_decl()
            self.expect_op(";")
            return decl
        expr = self.parse_expr()
        self.expect_op(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def _parse_var_decl(self) -> ast.VarDecl:
        line = self.current.line
        type_ = self.parse_type()
        name = self.expect_ident().text
        init = None
        if self.accept_op("="):
            init = self.parse_expr()
        return ast.VarDecl(type=type_, name=name, init=init, line=line)

    def _parse_if(self) -> ast.IfStmt:
        line = self.advance().line
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self.parse_stmt()
        otherwise = None
        if self.current.is_kw("else"):
            self.advance()
            otherwise = self.parse_stmt()
        return ast.IfStmt(cond=cond, then=then, otherwise=otherwise, line=line)

    def _parse_while(self) -> ast.WhileStmt:
        line = self.advance().line
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self.parse_stmt()
        return ast.WhileStmt(cond=cond, body=body, line=line)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        line = self.advance().line
        body = self.parse_stmt()
        if not self.current.is_kw("while"):
            raise self.error("expected 'while' after do body")
        self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhileStmt(body=body, cond=cond, line=line)

    def _parse_for(self) -> ast.ForStmt:
        line = self.advance().line
        self.expect_op("(")
        init: ast.Stmt | None = None
        if not self.current.is_op(";"):
            if self.at_type():
                init = self._parse_var_decl()
            else:
                init = ast.ExprStmt(expr=self.parse_expr(),
                                    line=self.current.line)
        self.expect_op(";")
        cond = None if self.current.is_op(";") else self.parse_expr()
        self.expect_op(";")
        update = None if self.current.is_op(")") else self.parse_expr()
        self.expect_op(")")
        body = self.parse_stmt()
        return ast.ForStmt(init=init, cond=cond, update=update, body=body,
                           line=line)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        expr = self._parse_ternary()
        token = self.current
        if token.kind is TokKind.OP and token.text in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            if not isinstance(expr, (ast.VarRef, ast.Index)):
                raise ParseError("invalid assignment target",
                                 token.line, token.column)
            return ast.Assign(target=expr, op=token.text, value=value,
                              line=token.line)
        return expr

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_or()
        if self.accept_op("?"):
            then = self._parse_assignment()
            self.expect_op(":")
            otherwise = self._parse_assignment()
            return ast.Ternary(cond=cond, then=then, otherwise=otherwise,
                               line=cond.line)
        return cond

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self.current.is_op("||"):
            line = self.advance().line
            rhs = self._parse_and()
            expr = ast.Binary(op="||", lhs=expr, rhs=rhs, line=line)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_binary(0)
        while self.current.is_op("&&"):
            line = self.advance().line
            rhs = self._parse_binary(0)
            expr = ast.Binary(op="&&", lhs=expr, rhs=rhs, line=line)
        return expr

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while (self.current.kind is TokKind.OP and self.current.text in ops):
            token = self.advance()
            rhs = self._parse_binary(level + 1)
            expr = ast.Binary(op=token.text, lhs=expr, rhs=rhs,
                              line=token.line)
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokKind.OP and token.text in ("-", "!", "~", "+"):
            self.advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        if token.is_op("++") or token.is_op("--"):
            self.advance()
            target = self._parse_unary()
            return ast.IncDec(target=target, op=token.text, line=token.line)
        # Cast: '(' type ')' unary
        if token.is_op("(") and self.peek().kind is TokKind.KEYWORD \
                and self.peek().text in _PRIMS:
            # Distinguish from parenthesized expressions: a cast's type is
            # followed by optional [] pairs and then ')'.
            save = self.position
            self.advance()
            type_ = self.parse_type()
            if self.current.is_op(")"):
                self.advance()
                operand = self._parse_unary()
                return ast.Cast(type=type_, operand=operand, line=token.line)
            self.position = save
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.is_op("["):
                self.advance()
                index = self.parse_expr()
                self.expect_op("]")
                expr = ast.Index(array=expr, index=index, line=token.line)
            elif token.is_op(".") and self.peek().kind is TokKind.IDENT \
                    and self.peek().text == "length":
                self.advance()
                self.advance()
                expr = ast.Length(array=expr, line=token.line)
            elif token.is_op("++") or token.is_op("--"):
                self.advance()
                expr = ast.IncDec(target=expr, op=token.text, line=token.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokKind.INT:
            self.advance()
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind is TokKind.LONG:
            self.advance()
            return ast.LongLit(value=token.value, line=token.line)
        if token.kind is TokKind.DOUBLE:
            self.advance()
            return ast.DoubleLit(value=token.value, line=token.line)
        if token.kind is TokKind.CHAR:
            self.advance()
            return ast.CharLit(value=token.value, line=token.line)
        if token.is_kw("true") or token.is_kw("false"):
            self.advance()
            return ast.BoolLit(value=token.text == "true", line=token.line)
        if token.is_kw("new"):
            return self._parse_new()
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind is TokKind.IDENT:
            if token.text == "Math" and self.peek().is_op("."):
                self.advance()
                self.advance()
                fn = self.expect_ident().text
                args = self._parse_args()
                return ast.MathCall(fn=fn, args=args, line=token.line)
            if self.peek().is_op("("):
                self.advance()
                args = self._parse_args()
                return ast.Call(name=token.text, args=args, line=token.line)
            self.advance()
            return ast.VarRef(name=token.text, line=token.line)
        raise self.error(f"unexpected token {token.text!r}")

    def _parse_new(self) -> ast.Expr:
        token = self.advance()  # 'new'
        if not self.at_type():
            raise self.error("expected type after 'new'")
        prim_token = self.advance()
        prim = _PRIMS[prim_token.text]
        dims: list[ast.Expr] = []
        extra = 0
        while self.current.is_op("["):
            self.advance()
            if self.current.is_op("]"):
                self.advance()
                extra += 1
            else:
                if extra:
                    raise self.error("dimension after empty brackets")
                dims.append(self.parse_expr())
                self.expect_op("]")
        if not dims:
            raise self.error("array allocation needs at least one size")
        type_ = JType(prim, len(dims) + extra)
        return ast.NewArray(type=type_, dims=dims, line=token.line)

    def _parse_args(self) -> list[ast.Expr]:
        self.expect_op("(")
        args: list[ast.Expr] = []
        if not self.current.is_op(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        return args


def parse(source: str) -> ast.CompilationUnit:
    return Parser(source).parse_unit()
