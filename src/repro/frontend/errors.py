"""Frontend diagnostics."""

from __future__ import annotations


class SourceError(Exception):
    """A lexing, parsing, or type error with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}" if line else message)


class LexError(SourceError):
    pass


class ParseError(SourceError):
    pass


class TypeError_(SourceError):
    """Named with a trailing underscore to avoid shadowing the builtin."""
