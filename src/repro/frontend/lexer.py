"""Lexer for the J32 mini language (a Java subset).

Token kinds: keywords, identifiers, integer/long/double/char literals,
operators, punctuation.  Comments (``//`` and ``/* */``) are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexError

KEYWORDS = frozenset(
    {
        "int", "long", "short", "byte", "char", "double", "boolean", "void",
        "if", "else", "while", "do", "for", "return", "break", "continue",
        "new", "true", "false", "global",
    }
)

# Longest-first so that multi-character operators win.
OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class TokKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    LONG = "long"
    DOUBLE = "double"
    CHAR = "char"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: int | float | None
    line: int
    column: int

    def is_op(self, text: str) -> bool:
        return self.kind is TokKind.OP and self.text == text

    def is_kw(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.value} {self.text!r}>"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        ch = source[position]

        if ch == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if ch in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column())
            line += source.count("\n", position, end)
            position = end + 2
            continue

        if ch.isalpha() or ch == "_":
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, None, line, start - line_start + 1))
            continue

        if ch.isdigit() or (ch == "." and position + 1 < length
                            and source[position + 1].isdigit()):
            start = position
            token = _lex_number(source, position, line, start - line_start + 1)
            tokens.append(token)
            position = start + len(token.text)
            continue

        if ch == "'":
            start = position
            token, position = _lex_char(source, position, line, column())
            tokens.append(token)
            continue

        for op in OPERATORS:
            if source.startswith(op, position):
                tokens.append(Token(TokKind.OP, op, None, line, column()))
                position += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokKind.EOF, "", None, line, column()))
    return tokens


def _lex_number(source: str, position: int, line: int, column: int) -> Token:
    length = len(source)
    start = position
    is_hex = source.startswith(("0x", "0X"), position)
    if is_hex:
        position += 2
        while position < length and (source[position] in "0123456789abcdefABCDEF"):
            position += 1
        text = source[start:position]
        value = int(text, 16)
        if position < length and source[position] in "lL":
            return Token(TokKind.LONG, source[start:position + 1], value,
                         line, column)
        return Token(TokKind.INT, text, value, line, column)

    while position < length and source[position].isdigit():
        position += 1
    is_double = False
    if position < length and source[position] == "." \
            and position + 1 < length and source[position + 1].isdigit():
        is_double = True
        position += 1
        while position < length and source[position].isdigit():
            position += 1
    if position < length and source[position] in "eE":
        lookahead = position + 1
        if lookahead < length and source[lookahead] in "+-":
            lookahead += 1
        if lookahead < length and source[lookahead].isdigit():
            is_double = True
            position = lookahead
            while position < length and source[position].isdigit():
                position += 1
    text = source[start:position]
    if is_double:
        return Token(TokKind.DOUBLE, text, float(text), line, column)
    if position < length and source[position] in "lL":
        return Token(TokKind.LONG, source[start:position + 1], int(text),
                     line, column)
    if position < length and source[position] in "dD":
        return Token(TokKind.DOUBLE, source[start:position + 1], float(text),
                     line, column)
    return Token(TokKind.INT, text, int(text), line, column)


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "'": "'", "\\": "\\", "0": "\0"}


def _lex_char(source: str, position: int, line: int,
              column: int) -> tuple[Token, int]:
    start = position
    position += 1  # opening quote
    if position >= len(source):
        raise LexError("unterminated char literal", line, column)
    ch = source[position]
    if ch == "\\":
        position += 1
        if position >= len(source) or source[position] not in _ESCAPES:
            raise LexError("bad escape in char literal", line, column)
        value = ord(_ESCAPES[source[position]])
        position += 1
    else:
        value = ord(ch)
        position += 1
    if position >= len(source) or source[position] != "'":
        raise LexError("unterminated char literal", line, column)
    position += 1
    return Token(TokKind.CHAR, source[start:position], value, line, column), position
