"""J32 frontend: a Java-subset mini language compiled to the repro IR.

Use :func:`compile_source` to turn source text into a 32-bit-form
:class:`~repro.ir.function.Program` ready for the Figure-5 pipeline.
"""

from .ast import (
    BOOLEAN,
    BYTE,
    CHAR,
    DOUBLE,
    INT,
    JType,
    LONG,
    Prim,
    SHORT,
    VOID,
)
from .errors import LexError, ParseError, SourceError, TypeError_
from .lexer import TokKind, Token, tokenize
from .lower import compile_source
from .parser import parse

__all__ = [
    "BOOLEAN",
    "BYTE",
    "CHAR",
    "DOUBLE",
    "INT",
    "JType",
    "LONG",
    "LexError",
    "ParseError",
    "Prim",
    "SHORT",
    "SourceError",
    "TokKind",
    "Token",
    "TypeError_",
    "VOID",
    "compile_source",
    "parse",
    "tokenize",
]
