"""AST for the J32 mini language."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Prim(enum.Enum):
    INT = "int"
    LONG = "long"
    SHORT = "short"
    BYTE = "byte"
    CHAR = "char"
    DOUBLE = "double"
    BOOLEAN = "boolean"
    VOID = "void"


@dataclass(frozen=True)
class JType:
    """A J32 type: a primitive with an array dimension count."""

    prim: Prim
    dims: int = 0

    @property
    def is_array(self) -> bool:
        return self.dims > 0

    @property
    def element(self) -> "JType":
        if not self.is_array:
            raise ValueError(f"{self} is not an array type")
        return JType(self.prim, self.dims - 1)

    @property
    def is_integral(self) -> bool:
        return not self.is_array and self.prim in (
            Prim.INT, Prim.LONG, Prim.SHORT, Prim.BYTE, Prim.CHAR
        )

    @property
    def is_numeric(self) -> bool:
        return self.is_integral or (not self.is_array
                                    and self.prim is Prim.DOUBLE)

    def __str__(self) -> str:
        return self.prim.value + "[]" * self.dims


INT = JType(Prim.INT)
LONG = JType(Prim.LONG)
SHORT = JType(Prim.SHORT)
BYTE = JType(Prim.BYTE)
CHAR = JType(Prim.CHAR)
DOUBLE = JType(Prim.DOUBLE)
BOOLEAN = JType(Prim.BOOLEAN)
VOID = JType(Prim.VOID)


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class LongLit(Expr):
    value: int = 0


@dataclass
class DoubleLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass
class Length(Expr):
    array: Expr | None = None


@dataclass
class NewArray(Expr):
    type: JType = INT
    dims: list[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    type: JType = INT
    operand: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MathCall(Expr):
    fn: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    """``target op= value``; op is "=" or a compound operator text."""

    target: Expr | None = None
    op: str = "="
    value: Expr | None = None


@dataclass
class IncDec(Expr):
    """``x++ / x-- / ++x / --x`` (used as statements)."""

    target: Expr | None = None
    op: str = "++"


# -- statements --------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    type: JType = INT
    name: str = ""
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class BlockStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    update: Expr | None = None
    body: Stmt | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- top level ----------------------------------------------------------------


@dataclass
class Param(Node):
    type: JType = INT
    name: str = ""


@dataclass
class FuncDecl(Node):
    ret: JType = VOID
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: BlockStmt | None = None


@dataclass
class GlobalDecl(Node):
    type: JType = INT
    name: str = ""
    init: Expr | None = None  # must be a constant literal


@dataclass
class CompilationUnit(Node):
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
