"""Lowering of the J32 AST to the repro IR (32-bit form).

The emitted IR is *pre-conversion*: every ``int`` register conceptually
holds a true 32-bit value; no canonicalizing extensions are present yet
(step 1 of the pipeline adds them).  The only extensions emitted here
are *semantic* ones demanded by the language: narrowing casts
(``(byte) x`` → ``extend8``), ``char`` casts (``zext16``), and the
``int``→``long`` widening.

Java typing rules reproduced: binary numeric promotion (byte/short/char
→ int; + long/double widening), compound assignments with implicit
narrowing casts, truncating array stores, short-circuit booleans.
"""

from __future__ import annotations

from . import ast
from ..ir.builder import FunctionBuilder
from ..ir.function import Program
from ..ir.instruction import FuncSig, Instr, VReg
from ..ir.opcodes import Cond, Opcode
from ..ir.types import ScalarType
from .ast import JType, Prim
from .errors import TypeError_
from .parser import parse

_REG_TYPE = {
    Prim.INT: ScalarType.I32,
    Prim.SHORT: ScalarType.I32,
    Prim.BYTE: ScalarType.I32,
    Prim.CHAR: ScalarType.I32,
    Prim.BOOLEAN: ScalarType.I32,
    Prim.LONG: ScalarType.I64,
    Prim.DOUBLE: ScalarType.F64,
}

_ELEM_TYPE = {
    Prim.INT: ScalarType.I32,
    Prim.SHORT: ScalarType.I16,
    Prim.BYTE: ScalarType.I8,
    Prim.CHAR: ScalarType.U16,
    Prim.BOOLEAN: ScalarType.I8,
    Prim.LONG: ScalarType.I64,
    Prim.DOUBLE: ScalarType.F64,
}

_INT_BINOPS = {
    "+": Opcode.ADD32, "-": Opcode.SUB32, "*": Opcode.MUL32,
    "/": Opcode.DIV32, "%": Opcode.REM32, "&": Opcode.AND32,
    "|": Opcode.OR32, "^": Opcode.XOR32, "<<": Opcode.SHL32,
    ">>": Opcode.SHR32, ">>>": Opcode.USHR32,
}
_LONG_BINOPS = {
    "+": Opcode.ADD64, "-": Opcode.SUB64, "*": Opcode.MUL64,
    "/": Opcode.DIV64, "%": Opcode.REM64, "&": Opcode.AND64,
    "|": Opcode.OR64, "^": Opcode.XOR64, "<<": Opcode.SHL64,
    ">>": Opcode.SHR64, ">>>": Opcode.USHR64,
}
_DOUBLE_BINOPS = {
    "+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL,
    "/": Opcode.FDIV, "%": Opcode.FREM,
}
_CONDS = {"==": Cond.EQ, "!=": Cond.NE, "<": Cond.LT, "<=": Cond.LE,
          ">": Cond.GT, ">=": Cond.GE}

_MATH_UNOPS = {
    "sqrt": Opcode.FSQRT, "sin": Opcode.FSIN, "cos": Opcode.FCOS,
    "exp": Opcode.FEXP, "log": Opcode.FLOG, "abs": Opcode.FABS,
    "floor": Opcode.FFLOOR,
}

#: Opcodes whose destination must not be renamed by store coalescing:
#: same-register extensions would lose their paired register.
_NO_COALESCE = frozenset(
    {Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32,
     Opcode.ZEXT8, Opcode.ZEXT16, Opcode.ZEXT32, Opcode.JUST_EXTENDED}
)


def reg_type_of(jtype: JType) -> ScalarType:
    if jtype.is_array:
        return ScalarType.REF
    return _REG_TYPE[jtype.prim]


def elem_type_of(jtype: JType) -> ScalarType:
    """Array element storage type for an array of ``jtype`` elements."""
    if jtype.is_array:
        return ScalarType.REF
    return _ELEM_TYPE[jtype.prim]


class Lowerer:
    def __init__(self) -> None:
        self.program = Program()
        self.global_types: dict[str, JType] = {}
        self.func_decls: dict[str, ast.FuncDecl] = {}

    # -- top level ----------------------------------------------------------

    def lower_unit(self, unit: ast.CompilationUnit) -> Program:
        for glob in unit.globals:
            self._declare_global(glob)
        for func in unit.functions:
            if func.name in self.func_decls:
                raise TypeError_(f"duplicate function {func.name}", func.line)
            self.func_decls[func.name] = func
        for func in unit.functions:
            _FunctionLowerer(self, func).lower()
        return self.program

    def _declare_global(self, glob: ast.GlobalDecl) -> None:
        initial: int | float = 0
        if glob.init is not None:
            initial = _const_value(glob.init)
        if glob.type.is_array:
            scalar = ScalarType.REF
        else:
            scalar = _ELEM_TYPE[glob.type.prim]
        self.program.add_global(glob.name, scalar, initial)
        self.global_types[glob.name] = glob.type


def _const_value(expr: ast.Expr) -> int | float:
    if isinstance(expr, (ast.IntLit, ast.LongLit, ast.DoubleLit, ast.CharLit)):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_value(expr.operand)
    raise TypeError_("global initializer must be a constant", expr.line)


class _LoopContext:
    def __init__(self, continue_block, break_block) -> None:
        self.continue_block = continue_block
        self.break_block = break_block


class _FunctionLowerer:
    def __init__(self, parent: Lowerer, decl: ast.FuncDecl) -> None:
        self.parent = parent
        self.decl = decl
        sig = FuncSig(
            tuple(reg_type_of(p.type) for p in decl.params),
            None if decl.ret.prim is Prim.VOID and not decl.ret.is_array
            else reg_type_of(decl.ret),
        )
        self.b = FunctionBuilder(parent.program, decl.name, sig)
        self.scopes: list[dict[str, tuple[VReg, JType]]] = [{}]
        self.loops: list[_LoopContext] = []
        #: registers bound to source variables (never coalesce over them)
        self._var_reg_names: set[str] = set()
        for param in decl.params:
            reg = self.b.param(f"p_{param.name}", reg_type_of(param.type))
            self.scopes[0][param.name] = (reg, param.type)
            self._var_reg_names.add(reg.name)

    # -- scope helpers --------------------------------------------------------

    def _declare(self, name: str, jtype: JType, line: int) -> VReg:
        scope = self.scopes[-1]
        if name in scope:
            raise TypeError_(f"duplicate variable {name}", line)
        reg = self.b.func.new_reg(reg_type_of(jtype), f"v_{name}_")
        scope[name] = (reg, jtype)
        self._var_reg_names.add(reg.name)
        return reg

    def _lookup(self, name: str, line: int) -> tuple[VReg, JType] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- entry -----------------------------------------------------------------

    def lower(self) -> None:
        self._lower_block(self.decl.body)
        # Implicit return for void functions (or a guard for non-void).
        current = self.b.current
        if not current.instrs or not current.instrs[-1].is_terminator:
            if self.decl.ret.prim is Prim.VOID and not self.decl.ret.is_array:
                self.b.ret()
            else:
                zero = self._zero_of(self.decl.ret)
                self.b.ret(zero)

    def _zero_of(self, jtype: JType) -> VReg:
        scalar = reg_type_of(jtype)
        if scalar is ScalarType.F64:
            return self.b.const(0.0, ScalarType.F64)
        if scalar is ScalarType.I64:
            return self.b.const(0, ScalarType.I64)
        if scalar is ScalarType.REF:
            return self.b.const(0, ScalarType.REF)
        return self.b.const(0, ScalarType.I32)

    # -- statements ---------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self.scopes.append({})
            try:
                self._lower_block(stmt)
            finally:
                self.scopes.pop()
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loops:
                raise TypeError_("break outside loop", stmt.line)
            self.b.jmp(self.loops[-1].break_block)
            self.b.switch(self.b.block("dead"))
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loops:
                raise TypeError_("continue outside loop", stmt.line)
            self.b.jmp(self.loops[-1].continue_block)
            self.b.switch(self.b.block("dead"))
        else:  # pragma: no cover - parser produces no other statements
            raise TypeError_(f"unsupported statement {type(stmt).__name__}",
                             stmt.line)

    def _lower_block(self, block: ast.BlockStmt) -> None:
        for stmt in block.body:
            self._lower_stmt(stmt)

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        reg = self._declare(stmt.name, stmt.type, stmt.line)
        if stmt.init is not None:
            value, vtype = self._lower_expr(stmt.init)
            value = self._coerce(value, vtype, stmt.type, stmt.line)
        else:
            value = self._zero_of(stmt.type)
        self._store(value, reg)

    def _store(self, value: VReg, dest: VReg) -> None:
        """Store ``value`` into variable register ``dest``.

        When ``value`` is a just-computed expression temporary, rewrite
        the defining instruction's destination instead of emitting a
        copy.  This keeps computations directly on variable registers
        (``v = add32 v, c``), matching the IR shape the paper operates
        on, and makes the conversion-inserted extensions land on the
        variables themselves.
        """
        block = self.b.current
        if block.instrs:
            last = block.instrs[-1]
            if (last.dest is not None
                    and last.dest.name == value.name
                    and last.dest.type is dest.type
                    and value.name not in self._var_reg_names
                    and last.opcode not in _NO_COALESCE):
                last.dest = dest
                return
        self.b.mov(value, dest)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        then_block = self.b.block("then")
        join = self.b.block("join")
        else_block = self.b.block("else") if stmt.otherwise else join
        self._lower_condition(stmt.cond, then_block, else_block)
        self.b.switch(then_block)
        self._lower_stmt(stmt.then)
        self._finish_with_jump(join)
        if stmt.otherwise is not None:
            self.b.switch(else_block)
            self._lower_stmt(stmt.otherwise)
            self._finish_with_jump(join)
        self.b.switch(join)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.b.block("while_head")
        body = self.b.block("while_body")
        exit_block = self.b.block("while_exit")
        self.b.jmp(header)
        self.b.switch(header)
        self._lower_condition(stmt.cond, body, exit_block)
        self.b.switch(body)
        self.loops.append(_LoopContext(header, exit_block))
        try:
            self._lower_stmt(stmt.body)
        finally:
            self.loops.pop()
        self._finish_with_jump(header)
        self.b.switch(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        body = self.b.block("do_body")
        cond_block = self.b.block("do_cond")
        exit_block = self.b.block("do_exit")
        self.b.jmp(body)
        self.b.switch(body)
        self.loops.append(_LoopContext(cond_block, exit_block))
        try:
            self._lower_stmt(stmt.body)
        finally:
            self.loops.pop()
        self._finish_with_jump(cond_block)
        self.b.switch(cond_block)
        self._lower_condition(stmt.cond, body, exit_block)
        self.b.switch(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.scopes.append({})
        try:
            if stmt.init is not None:
                self._lower_stmt(stmt.init)
            header = self.b.block("for_head")
            body = self.b.block("for_body")
            update = self.b.block("for_update")
            exit_block = self.b.block("for_exit")
            self.b.jmp(header)
            self.b.switch(header)
            if stmt.cond is not None:
                self._lower_condition(stmt.cond, body, exit_block)
            else:
                self.b.jmp(body)
            self.b.switch(body)
            self.loops.append(_LoopContext(update, exit_block))
            try:
                self._lower_stmt(stmt.body)
            finally:
                self.loops.pop()
            self._finish_with_jump(update)
            self.b.switch(update)
            if stmt.update is not None:
                self._lower_expr(stmt.update)
            self.b.jmp(header)
            self.b.switch(exit_block)
        finally:
            self.scopes.pop()

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        ret = self.decl.ret
        is_void = ret.prim is Prim.VOID and not ret.is_array
        if stmt.value is None:
            if not is_void:
                raise TypeError_("missing return value", stmt.line)
            self.b.ret()
        else:
            if is_void:
                raise TypeError_("void function returns a value", stmt.line)
            value, vtype = self._lower_expr(stmt.value)
            value = self._coerce(value, vtype, ret, stmt.line)
            self.b.ret(value)
        self.b.switch(self.b.block("dead"))

    def _finish_with_jump(self, target) -> None:
        current = self.b.current
        if not current.instrs or not current.instrs[-1].is_terminator:
            self.b.jmp(target)

    # -- conditions ------------------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr, then_block, else_block) -> None:
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            middle = self.b.block("and_rhs")
            self._lower_condition(expr.lhs, middle, else_block)
            self.b.switch(middle)
            self._lower_condition(expr.rhs, then_block, else_block)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            middle = self.b.block("or_rhs")
            self._lower_condition(expr.lhs, then_block, middle)
            self.b.switch(middle)
            self._lower_condition(expr.rhs, then_block, else_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._lower_condition(expr.operand, else_block, then_block)
            return
        value, vtype = self._lower_expr(expr)
        if vtype != ast.BOOLEAN:
            raise TypeError_(f"condition must be boolean, got {vtype}",
                             expr.line)
        self.b.br(value, then_block, else_block)

    # -- expressions -------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> tuple[VReg, JType]:
        method = getattr(self, f"_lower_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover - parser is exhaustive
            raise TypeError_(f"unsupported expression {type(expr).__name__}",
                             expr.line)
        return method(expr)

    def _lower_IntLit(self, expr: ast.IntLit) -> tuple[VReg, JType]:
        value = expr.value
        if value > 0xFFFF_FFFF:
            raise TypeError_("int literal out of range", expr.line)
        if value > 0x7FFF_FFFF:  # e.g. 0x80000000 written in hex
            value -= 1 << 32
        return self.b.const(value, ScalarType.I32), ast.INT

    def _lower_LongLit(self, expr: ast.LongLit) -> tuple[VReg, JType]:
        value = expr.value
        if value > 0xFFFF_FFFF_FFFF_FFFF:
            raise TypeError_("long literal out of range", expr.line)
        if value > 0x7FFF_FFFF_FFFF_FFFF:
            value -= 1 << 64
        return self.b.const(value, ScalarType.I64), ast.LONG

    def _lower_DoubleLit(self, expr: ast.DoubleLit) -> tuple[VReg, JType]:
        return self.b.const(expr.value, ScalarType.F64), ast.DOUBLE

    def _lower_BoolLit(self, expr: ast.BoolLit) -> tuple[VReg, JType]:
        return self.b.const(int(expr.value), ScalarType.I32), ast.BOOLEAN

    def _lower_CharLit(self, expr: ast.CharLit) -> tuple[VReg, JType]:
        return self.b.const(expr.value, ScalarType.I32), ast.CHAR

    def _lower_VarRef(self, expr: ast.VarRef) -> tuple[VReg, JType]:
        local = self._lookup(expr.name, expr.line)
        if local is not None:
            return local
        gtype = self.parent.global_types.get(expr.name)
        if gtype is None:
            raise TypeError_(f"undefined variable {expr.name}", expr.line)
        storage = (ScalarType.REF if gtype.is_array
                   else _ELEM_TYPE[gtype.prim])
        dest = self.b.func.new_reg(reg_type_of(gtype), "g")
        self.b.emit(Instr(Opcode.GLOAD, dest, (), gname=expr.name,
                          elem=storage))
        return dest, gtype

    def _lower_Binary(self, expr: ast.Binary) -> tuple[VReg, JType]:
        if expr.op in ("&&", "||"):
            return self._lower_bool_value(expr)
        if expr.op in _CONDS:
            return self._lower_comparison(expr)
        lhs, ltype = self._lower_expr(expr.lhs)
        rhs, rtype = self._lower_expr(expr.rhs)
        if expr.op in ("&", "|", "^") and ltype == ast.BOOLEAN \
                and rtype == ast.BOOLEAN:
            opcode = _INT_BINOPS[expr.op]
            return self.b.binop(opcode, lhs, rhs), ast.BOOLEAN
        if expr.op in ("<<", ">>", ">>>"):
            return self._lower_shift(expr, lhs, ltype, rhs, rtype)
        result_type = self._promote2(ltype, rtype, expr.line)
        lhs = self._coerce(lhs, ltype, result_type, expr.line)
        rhs = self._coerce(rhs, rtype, result_type, expr.line)
        table = {
            Prim.INT: _INT_BINOPS, Prim.LONG: _LONG_BINOPS,
            Prim.DOUBLE: _DOUBLE_BINOPS,
        }[result_type.prim]
        if expr.op not in table:
            raise TypeError_(f"operator {expr.op} not valid for {result_type}",
                             expr.line)
        return self.b.binop(table[expr.op], lhs, rhs), result_type

    def _lower_shift(self, expr: ast.Binary, lhs, ltype, rhs, rtype):
        if not ltype.is_integral or not rtype.is_integral:
            raise TypeError_("shift needs integral operands", expr.line)
        value_type = ast.LONG if ltype == ast.LONG else ast.INT
        lhs = self._coerce(lhs, ltype, value_type, expr.line)
        rhs = self._coerce(rhs, rtype, ast.INT, expr.line)
        table = _LONG_BINOPS if value_type == ast.LONG else _INT_BINOPS
        return self.b.binop(table[expr.op], lhs, rhs), value_type

    def _lower_comparison(self, expr: ast.Binary) -> tuple[VReg, JType]:
        lhs, ltype = self._lower_expr(expr.lhs)
        rhs, rtype = self._lower_expr(expr.rhs)
        cond = _CONDS[expr.op]
        if ltype == ast.BOOLEAN and rtype == ast.BOOLEAN:
            if expr.op not in ("==", "!="):
                raise TypeError_("ordering on booleans", expr.line)
            return self.b.cmp(Opcode.CMP32, cond, lhs, rhs), ast.BOOLEAN
        if ltype.is_array or rtype.is_array:
            raise TypeError_("cannot compare arrays", expr.line)
        common = self._promote2(ltype, rtype, expr.line)
        lhs = self._coerce(lhs, ltype, common, expr.line)
        rhs = self._coerce(rhs, rtype, common, expr.line)
        opcode = {Prim.INT: Opcode.CMP32, Prim.LONG: Opcode.CMP64,
                  Prim.DOUBLE: Opcode.CMPF}[common.prim]
        return self.b.cmp(opcode, cond, lhs, rhs), ast.BOOLEAN

    def _lower_bool_value(self, expr: ast.Expr) -> tuple[VReg, JType]:
        """A short-circuit expression in value position."""
        result = self.b.func.new_reg(ScalarType.I32, "bool")
        then_block = self.b.block("btrue")
        else_block = self.b.block("bfalse")
        join = self.b.block("bjoin")
        self._lower_condition(expr, then_block, else_block)
        self.b.switch(then_block)
        one = self.b.const(1, ScalarType.I32)
        self.b.mov(one, result)
        self.b.jmp(join)
        self.b.switch(else_block)
        zero = self.b.const(0, ScalarType.I32)
        self.b.mov(zero, result)
        self.b.jmp(join)
        self.b.switch(join)
        return result, ast.BOOLEAN

    def _lower_Unary(self, expr: ast.Unary) -> tuple[VReg, JType]:
        if expr.op == "!":
            return self._lower_bool_value(expr)
        value, vtype = self._lower_expr(expr.operand)
        if expr.op == "-":
            if vtype == ast.DOUBLE:
                return self.b.unop(Opcode.FNEG, value), ast.DOUBLE
            if vtype == ast.LONG:
                return self.b.unop(Opcode.NEG64, value), ast.LONG
            if vtype.is_integral:
                value = self._coerce(value, vtype, ast.INT, expr.line)
                return self.b.unop(Opcode.NEG32, value), ast.INT
        if expr.op == "~":
            if vtype == ast.LONG:
                return self.b.unop(Opcode.NOT64, value), ast.LONG
            if vtype.is_integral:
                value = self._coerce(value, vtype, ast.INT, expr.line)
                return self.b.unop(Opcode.NOT32, value), ast.INT
        raise TypeError_(f"operator {expr.op} not valid for {vtype}",
                         expr.line)

    def _lower_Ternary(self, expr: ast.Ternary) -> tuple[VReg, JType]:
        then_block = self.b.block("ttrue")
        else_block = self.b.block("tfalse")
        join = self.b.block("tjoin")
        self._lower_condition(expr.cond, then_block, else_block)
        self.b.switch(then_block)
        then_value, then_type = self._lower_expr(expr.then)
        then_exit = self.b.current
        self.b.switch(else_block)
        else_value, else_type = self._lower_expr(expr.otherwise)
        else_exit = self.b.current
        if then_type == else_type:
            common = then_type
        else:
            common = self._promote2(then_type, else_type, expr.line)
        result = self.b.func.new_reg(reg_type_of(common), "sel")
        self.b.switch(then_exit)
        coerced = self._coerce(then_value, then_type, common, expr.line)
        self.b.mov(coerced, result)
        self.b.jmp(join)
        self.b.switch(else_exit)
        coerced = self._coerce(else_value, else_type, common, expr.line)
        self.b.mov(coerced, result)
        self.b.jmp(join)
        self.b.switch(join)
        return result, common

    def _lower_Index(self, expr: ast.Index) -> tuple[VReg, JType]:
        array, atype = self._lower_expr(expr.array)
        if not atype.is_array:
            raise TypeError_(f"indexing non-array {atype}", expr.line)
        index, itype = self._lower_expr(expr.index)
        index = self._coerce(index, itype, ast.INT, expr.line)
        elem = atype.element
        value = self.b.aload(array, index, elem_type_of(elem))
        return value, elem

    def _lower_Length(self, expr: ast.Length) -> tuple[VReg, JType]:
        array, atype = self._lower_expr(expr.array)
        if not atype.is_array:
            raise TypeError_(".length on non-array", expr.line)
        return self.b.arraylen(array), ast.INT

    def _lower_NewArray(self, expr: ast.NewArray) -> tuple[VReg, JType]:
        dims: list[VReg] = []
        for dim in expr.dims:
            value, vtype = self._lower_expr(dim)
            dims.append(self._coerce(value, vtype, ast.INT, expr.line))
        return self._alloc(expr.type, dims, 0, expr.line), expr.type

    def _alloc(self, jtype: JType, dims: list[VReg], depth: int,
               line: int) -> VReg:
        elem = jtype.element
        array = self.b.newarray(elem_type_of(elem), dims[depth])
        if depth + 1 < len(dims):
            counter = self.b.func.new_reg(ScalarType.I32, "allocidx")
            zero = self.b.const(0, ScalarType.I32)
            one = self.b.const(1, ScalarType.I32)
            self.b.mov(zero, counter)
            header = self.b.block("alloc_head")
            body = self.b.block("alloc_body")
            done = self.b.block("alloc_done")
            self.b.jmp(header)
            self.b.switch(header)
            in_range = self.b.cmp(Opcode.CMP32, Cond.LT, counter, dims[depth])
            self.b.br(in_range, body, done)
            self.b.switch(body)
            inner = self._alloc(elem, dims, depth + 1, line)
            self.b.astore(array, counter, inner, ScalarType.REF)
            self.b.binop(Opcode.ADD32, counter, one, counter)
            self.b.jmp(header)
            self.b.switch(done)
        return array

    def _lower_Cast(self, expr: ast.Cast) -> tuple[VReg, JType]:
        value, vtype = self._lower_expr(expr.operand)
        target = expr.type
        if target == vtype:
            return value, vtype
        if target.is_array or vtype.is_array:
            raise TypeError_("cannot cast array types", expr.line)
        return self._convert(value, vtype, target, expr.line), target

    def _lower_Call(self, expr: ast.Call) -> tuple[VReg, JType]:
        if expr.name == "sink":
            return self._lower_sink(expr, False)
        if expr.name == "sinkd":
            return self._lower_sink(expr, True)
        decl = self.parent.func_decls.get(expr.name)
        if decl is None:
            raise TypeError_(f"undefined function {expr.name}", expr.line)
        if len(expr.args) != len(decl.params):
            raise TypeError_(
                f"{expr.name} expects {len(decl.params)} args", expr.line
            )
        args: list[VReg] = []
        for arg, param in zip(expr.args, decl.params):
            value, vtype = self._lower_expr(arg)
            args.append(self._coerce(value, vtype, param.type, expr.line))
        is_void = decl.ret.prim is Prim.VOID and not decl.ret.is_array
        ret_type = None if is_void else reg_type_of(decl.ret)
        result = self.b.call(expr.name, args, ret_type)
        if result is None:
            # Void value: usable only as a statement; give a dummy.
            return self.b.const(0, ScalarType.I32), ast.VOID
        return result, decl.ret

    def _lower_sink(self, expr: ast.Call, is_double: bool) -> tuple[VReg, JType]:
        if len(expr.args) != 1:
            raise TypeError_("sink takes one argument", expr.line)
        value, vtype = self._lower_expr(expr.args[0])
        if is_double:
            value = self._coerce(value, vtype, ast.DOUBLE, expr.line)
        elif vtype == ast.LONG:
            pass
        elif vtype.is_integral or vtype == ast.BOOLEAN:
            value = self._coerce(value, vtype, ast.INT, expr.line)
        else:
            raise TypeError_(f"cannot sink {vtype}", expr.line)
        self.b.sink(value)
        return self.b.const(0, ScalarType.I32), ast.VOID

    def _lower_MathCall(self, expr: ast.MathCall) -> tuple[VReg, JType]:
        if expr.fn == "pow":
            if len(expr.args) != 2:
                raise TypeError_("Math.pow takes two arguments", expr.line)
            a, at = self._lower_expr(expr.args[0])
            b, bt = self._lower_expr(expr.args[1])
            a = self._coerce(a, at, ast.DOUBLE, expr.line)
            b = self._coerce(b, bt, ast.DOUBLE, expr.line)
            return self.b.binop(Opcode.FPOW, a, b), ast.DOUBLE
        opcode = _MATH_UNOPS.get(expr.fn)
        if opcode is None:
            raise TypeError_(f"unknown Math.{expr.fn}", expr.line)
        if len(expr.args) != 1:
            raise TypeError_(f"Math.{expr.fn} takes one argument", expr.line)
        value, vtype = self._lower_expr(expr.args[0])
        value = self._coerce(value, vtype, ast.DOUBLE, expr.line)
        return self.b.unop(opcode, value), ast.DOUBLE

    def _lower_Assign(self, expr: ast.Assign) -> tuple[VReg, JType]:
        target = expr.target
        if isinstance(target, ast.VarRef):
            return self._assign_var(expr, target)
        if isinstance(target, ast.Index):
            return self._assign_index(expr, target)
        raise TypeError_("invalid assignment target", expr.line)

    def _assign_var(self, expr: ast.Assign, target: ast.VarRef):
        local = self._lookup(target.name, target.line)
        if local is None:
            return self._assign_global(expr, target)
        reg, jtype = local
        value = self._rhs_value(expr, reg, jtype)
        self._store(value, reg)
        return reg, jtype

    def _assign_global(self, expr: ast.Assign, target: ast.VarRef):
        gtype = self.parent.global_types.get(target.name)
        if gtype is None:
            raise TypeError_(f"undefined variable {target.name}", target.line)
        if expr.op != "=":
            current, _ = self._lower_VarRef(target)
            value = self._compound(expr, current, gtype)
        else:
            raw, vtype = self._lower_expr(expr.value)
            value = self._coerce(raw, vtype, gtype, expr.line)
        scalar = ScalarType.REF if gtype.is_array else _ELEM_TYPE[gtype.prim]
        self.b.gstore(target.name, value, scalar)
        return value, gtype

    def _assign_index(self, expr: ast.Assign, target: ast.Index):
        array, atype = self._lower_expr(target.array)
        if not atype.is_array:
            raise TypeError_("indexing non-array", expr.line)
        index, itype = self._lower_expr(target.index)
        index = self._coerce(index, itype, ast.INT, expr.line)
        elem = atype.element
        if expr.op != "=":
            current = self.b.aload(array, index, elem_type_of(elem))
            value = self._compound(expr, current, elem)
        else:
            raw, vtype = self._lower_expr(expr.value)
            value = self._coerce_store(raw, vtype, elem, expr.line)
        self.b.astore(array, index, value, elem_type_of(elem))
        return value, elem

    def _rhs_value(self, expr: ast.Assign, current: VReg, jtype: JType) -> VReg:
        if expr.op == "=":
            raw, vtype = self._lower_expr(expr.value)
            return self._coerce(raw, vtype, jtype, expr.line)
        return self._compound(expr, current, jtype)

    def _compound(self, expr: ast.Assign, current: VReg, jtype: JType) -> VReg:
        """``x op= v``: Java's implicit ``x = (T)(x op v)``."""
        op = expr.op[:-1]
        synthetic = ast.Binary(op=op, lhs=_Materialized(current, jtype),
                               rhs=expr.value, line=expr.line)
        value, vtype = self._lower_Binary(synthetic)
        return self._convert(value, vtype, jtype, expr.line) \
            if vtype != jtype else value

    def _lower__Materialized(self, expr: "_Materialized"):
        return expr.reg, expr.jtype

    def _lower_IncDec(self, expr: ast.IncDec) -> tuple[VReg, JType]:
        op = "+=" if expr.op == "++" else "-="
        assign = ast.Assign(target=expr.target, op=op,
                            value=ast.IntLit(value=1, line=expr.line),
                            line=expr.line)
        return self._lower_Assign(assign)

    # -- coercions -----------------------------------------------------------------------

    def _promote2(self, a: JType, b: JType, line: int) -> JType:
        if not a.is_numeric or not b.is_numeric:
            raise TypeError_(f"numeric operands required, got {a} and {b}",
                             line)
        if ast.DOUBLE in (a, b):
            return ast.DOUBLE
        if ast.LONG in (a, b):
            return ast.LONG
        return ast.INT

    def _coerce(self, reg: VReg, from_: JType, to: JType, line: int) -> VReg:
        """Implicit (widening) coercion."""
        if from_ == to:
            return reg
        if to.is_array or from_.is_array:
            raise TypeError_(f"cannot convert {from_} to {to}", line)
        if from_ == ast.BOOLEAN or to == ast.BOOLEAN:
            raise TypeError_(f"cannot convert {from_} to {to}", line)
        if not _widens(from_, to):
            raise TypeError_(f"needs explicit cast: {from_} to {to}", line)
        return self._convert(reg, from_, to, line)

    def _coerce_store(self, reg: VReg, from_: JType, elem: JType,
                      line: int) -> VReg:
        """Array stores truncate like the JVM's ``bastore``/``castore``:
        an int may be stored into a narrower element directly."""
        if from_ == elem:
            return reg
        if elem in (ast.BYTE, ast.SHORT, ast.CHAR) and from_ == ast.INT:
            return reg  # the store itself truncates
        return self._coerce(reg, from_, elem, line)

    def _convert(self, reg: VReg, from_: JType, to: JType, line: int) -> VReg:
        """Explicit conversion (casts + widenings)."""
        if from_ == to:
            return reg
        fp, tp = from_.prim, to.prim
        if from_.is_array or to.is_array or fp is Prim.BOOLEAN \
                or tp is Prim.BOOLEAN:
            raise TypeError_(f"cannot cast {from_} to {to}", line)

        # Normalize the source to int/long/double first.
        if fp in (Prim.BYTE, Prim.SHORT, Prim.CHAR):
            return self._convert(reg, ast.INT, to, line)
        if fp is Prim.INT:
            if tp is Prim.LONG:
                dest = self.b.func.new_reg(ScalarType.I64, "wide")
                self.b.emit(Instr(Opcode.EXTEND32, dest, (reg,)))
                return dest
            if tp is Prim.DOUBLE:
                return self.b.unop(Opcode.I2D, reg)
            return self._narrow_int(reg, tp, line)
        if fp is Prim.LONG:
            if tp is Prim.DOUBLE:
                return self.b.unop(Opcode.L2D, reg)
            narrowed = self.b.unop(Opcode.TRUNC32, reg)
            if tp is Prim.INT:
                return narrowed
            return self._narrow_int(narrowed, tp, line)
        if fp is Prim.DOUBLE:
            if tp is Prim.LONG:
                return self.b.unop(Opcode.D2L, reg)
            as_int = self.b.unop(Opcode.D2I, reg)
            if tp is Prim.INT:
                return as_int
            return self._narrow_int(as_int, tp, line)
        raise TypeError_(f"cannot cast {from_} to {to}", line)

    def _narrow_int(self, reg: VReg, tp: Prim, line: int) -> VReg:
        """(byte)/(short)/(char) of an int value.  Emitted as a copy
        followed by a same-register extension so the extension is an
        elimination candidate."""
        dest = self.b.func.new_reg(ScalarType.I32, "cast")
        self.b.mov(reg, dest)
        if tp is Prim.BYTE:
            self.b.emit(Instr(Opcode.EXTEND8, dest, (dest,)))
        elif tp is Prim.SHORT:
            self.b.emit(Instr(Opcode.EXTEND16, dest, (dest,)))
        elif tp is Prim.CHAR:
            self.b.emit(Instr(Opcode.ZEXT16, dest, (dest,)))
        else:  # pragma: no cover - caller filters
            raise TypeError_(f"bad narrowing target {tp}", line)
        return dest


class _Materialized(ast.Expr):
    """An already-lowered value wrapped as an expression node."""

    def __init__(self, reg: VReg, jtype: JType) -> None:
        super().__init__(line=0)
        self.reg = reg
        self.jtype = jtype


def _widens(from_: JType, to: JType) -> bool:
    order = {Prim.BYTE: 0, Prim.SHORT: 1, Prim.CHAR: 1, Prim.INT: 2,
             Prim.LONG: 3, Prim.DOUBLE: 4}
    if from_.prim not in order or to.prim not in order:
        return False
    if from_.prim is Prim.CHAR and to.prim is Prim.SHORT:
        return False
    if from_.prim is Prim.SHORT and to.prim is Prim.CHAR:
        return False
    return order[from_.prim] <= order[to.prim]


def compile_source(source: str, name: str = "program") -> Program:
    """Parse and lower J32 source text to a 32-bit-form IR program."""
    unit = parse(source)
    lowerer = Lowerer()
    program = lowerer.lower_unit(unit)
    program.name = name
    from ..ir.verifier import verify_program

    verify_program(program)
    return program
