"""Content-addressed compile cache with memory and disk tiers.

The cache stores the *outcome* of one compilation — the optimized
program, per-function statistics, and the timing breakdown — keyed by
:func:`repro.driver.fingerprint.cache_key`.  Two tiers:

* an in-memory LRU (bounded, per-process), and
* an optional on-disk tier of pickle files under ``--cache-dir``
  (default ``~/.cache/repro``), which survives process restarts and is
  shared by every repro invocation on the machine.

Hits are paranoid by design: the stored program is re-checked with the
IR verifier before it is handed out, and returned programs are always
fresh clones, so a caller can mutate (or execute) its copy without
poisoning the cache.  A disk entry that fails to unpickle, carries a
mismatched version, or fails verification is deleted and counted as
corrupt, never returned.  A memory entry that fails verification is
dropped from that tier only — the lookup still falls through to a
possibly-valid disk copy.

The disk tier accepts an optional byte budget (``max_bytes``, or
``$REPRO_CACHE_MAX_BYTES`` / ``--cache-max-bytes`` at the CLI); when
the budget is exceeded the oldest-mtime entries are evicted first,
counted under ``driver.cache.evictions{tier=disk}``.  ``repro cache
stats|prune|clear`` exposes the same machinery interactively.

All public entry points are safe to call from multiple threads — the
``repro serve`` front door mounts one :class:`CompileCache` behind a
worker pool (docs/SERVING.md).

Hit/miss/store/eviction/corruption counts feed the
``driver.cache.*`` counter family of the telemetry metrics registry
(see docs/TELEMETRY.md).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.elimination import FunctionStats
from ..ir.clone import clone_program
from ..ir.function import Program
from ..ir.verifier import VerificationError, verify_program
from ..opt.pass_manager import Timing
from ..telemetry.metrics import MetricsRegistry

#: Default upper bound on in-memory entries (a full harness grid is
#: 17 workloads x 12 variants = 204 cells; keep headroom above that).
DEFAULT_MEMORY_ENTRIES = 512

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def default_max_bytes() -> int | None:
    """``$REPRO_CACHE_MAX_BYTES`` as an int, else ``None`` (no cap)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class CacheEntry:
    """Everything worth keeping from one compilation."""

    program: Program
    function_stats: dict[str, FunctionStats]
    timing_seconds: dict[str, float]

    def materialize(self) -> "CacheEntry":
        """A detached copy safe to hand to a caller."""
        return CacheEntry(
            program=clone_program(self.program),
            function_stats=dict(self.function_stats),
            timing_seconds=dict(self.timing_seconds),
        )

    def timing(self) -> Timing:
        return Timing(seconds=dict(self.timing_seconds))


class CompileCache:
    """Two-tier content-addressed store of :class:`CacheEntry` objects."""

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        max_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_entries = memory_entries
        self.max_bytes = max_bytes if max_bytes is not None \
            else default_max_bytes()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """The entry under ``key``, or ``None``; always a fresh clone."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                if self._verify(entry, key, tier="memory"):
                    self.metrics.counter("driver.cache.hits",
                                         tier="memory").inc()
                    return entry.materialize()
                # A corrupt memory copy must not mask a valid disk entry:
                # drop it from this tier and fall through to the next.
                self._memory.pop(key, None)

            entry = self._load_disk(key)
            if entry is not None:
                self.metrics.counter("driver.cache.hits", tier="disk").inc()
                self._remember(key, entry)
                return entry.materialize()

            self.metrics.counter("driver.cache.misses").inc()
            return None

    def put(self, key: str, entry: CacheEntry) -> None:
        """Store a compilation outcome under ``key`` in both tiers."""
        detached = entry.materialize()
        with self._lock:
            self._remember(key, detached)
            self.metrics.counter("driver.cache.stores", tier="memory").inc()
            if self.cache_dir is not None:
                self._store_disk(key, detached)
                self.prune()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory or (
                self.cache_dir is not None and self._path(key).exists()
            )

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            if self.cache_dir is not None:
                for path in self.cache_dir.glob("*.pkl"):
                    path.unlink(missing_ok=True)

    # -- inspection ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(
            self.metrics.counter_family("driver.cache.hits").values()
        )

    @property
    def misses(self) -> int:
        return self.metrics.counter_value("driver.cache.misses")

    def stats(self) -> dict[str, int]:
        """Flat counter snapshot, for CLI ``--stats`` output and tests."""
        with self._lock:
            out: dict[str, int] = {
                "hits": self.hits,
                "misses": self.misses,
                "memory_entries": len(self._memory),
            }
            for family in ("driver.cache.hits", "driver.cache.stores"):
                out.update(self.metrics.counter_family(family))
            evictions = self.metrics.counter_family("driver.cache.evictions")
            out.update(evictions)
            out["driver.cache.evictions"] = sum(evictions.values())
            out["driver.cache.corrupt"] = self.metrics.counter_value(
                "driver.cache.corrupt"
            )
            if self.cache_dir is not None:
                files, size = self.disk_usage()
                out["disk_entries"] = files
                out["disk_bytes"] = size
            return out

    def disk_usage(self) -> tuple[int, int]:
        """``(entry_count, total_bytes)`` of the on-disk tier."""
        if self.cache_dir is None:
            return (0, 0)
        files = 0
        total = 0
        for path in self.cache_dir.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue  # deleted by a concurrent prune/clear
            files += 1
        return (files, total)

    # -- memory tier ---------------------------------------------------------

    def _remember(self, key: str, entry: CacheEntry) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.metrics.counter("driver.cache.evictions",
                                 tier="memory").inc()

    # -- disk tier -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _load_disk(self, key: str) -> CacheEntry | None:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        from .. import __version__

        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                payload.get("version") != __version__
                or payload.get("key") != key
            ):
                raise ValueError("stale or mislabeled cache file")
            entry = payload["entry"]
            if not isinstance(entry, CacheEntry):
                raise TypeError("cache file does not hold a CacheEntry")
        except Exception:
            self._discard_corrupt(path)
            return None
        if not self._verify(entry, key, tier="disk"):
            self._discard_corrupt(path)
            return None
        return entry

    def _store_disk(self, key: str, entry: CacheEntry) -> None:
        from .. import __version__

        path = self._path(key)
        payload = {"version": __version__, "key": key, "entry": entry}
        # Write-then-rename so a concurrent reader never sees a torn file.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp_name, path)
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.metrics.counter("driver.cache.stores", tier="disk").inc()

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict oldest-mtime disk entries until the tier fits the byte
        budget (``max_bytes`` argument, else the instance cap); returns
        the number of files evicted.  No-op without a cap or disk tier.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if self.cache_dir is None or budget is None or budget <= 0:
            return 0
        with self._lock:
            files: list[tuple[float, int, Path]] = []
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files.append((stat.st_mtime, stat.st_size, path))
            total = sum(size for _, size, _ in files)
            evicted = 0
            for _, size, path in sorted(files, key=lambda f: (f[0], f[2])):
                if total <= budget:
                    break
                path.unlink(missing_ok=True)
                total -= size
                evicted += 1
                self.metrics.counter("driver.cache.evictions",
                                     tier="disk").inc()
            return evicted

    def _discard_corrupt(self, path: Path) -> None:
        self.metrics.counter("driver.cache.corrupt").inc()
        path.unlink(missing_ok=True)

    # -- integrity -----------------------------------------------------------

    def _verify(self, entry: CacheEntry, key: str, *, tier: str) -> bool:
        """A hit must round-trip through the IR verifier before reuse."""
        try:
            verify_program(entry.program)
        except VerificationError:
            self.metrics.counter("driver.cache.corrupt").inc()
            return False
        return True
