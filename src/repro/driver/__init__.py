"""Batch-compilation driver: content-addressed caching + process pool.

The driver separates the *pure* compilation function
(:func:`repro.core.pipeline.compile_ir`) from the *effectful* concerns
of running many compilations — memoization, parallelism, timeouts,
crash recovery — the same split the JIT literature uses between the
compile function and its queueing/caching runtime.

Typical use::

    from repro.driver import BatchCompiler, CompileCache, CompileJob

    cache = CompileCache(cache_dir)          # or CompileCache() in-memory
    with BatchCompiler(jobs=4, cache=cache) as driver:
        results = driver.compile_batch([
            CompileJob(label=name, program=prog, config=cfg)
            for name, cfg in VARIANTS.items()
        ])

``harness.run_suite``, ``repro.api.bench``, and the ``repro compile`` /
``repro bench --jobs N --cache`` CLI paths are all built on this.
"""

from .batch import BatchCompiler, CompileJob
from .cache import (
    CacheEntry,
    CompileCache,
    DEFAULT_MEMORY_ENTRIES,
    default_cache_dir,
    default_max_bytes,
)
from .fingerprint import (
    cache_key,
    fingerprint_config,
    fingerprint_profiles,
    fingerprint_program,
)

__all__ = [
    "BatchCompiler",
    "CacheEntry",
    "CompileCache",
    "CompileJob",
    "DEFAULT_MEMORY_ENTRIES",
    "cache_key",
    "default_cache_dir",
    "default_max_bytes",
    "fingerprint_config",
    "fingerprint_profiles",
    "fingerprint_program",
]
