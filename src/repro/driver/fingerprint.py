"""Stable fingerprints for compile-cache keys.

A cached compilation may only be reused when *nothing* that influences
the optimized IR has changed.  The cache key therefore combines four
independent fingerprints:

* the canonical textual form of the input program (the same rendering
  :mod:`repro.ir.printer` uses, so two structurally identical programs
  hash identically no matter how they were built);
* every field of the :class:`~repro.core.config.SignExtConfig`,
  including the machine traits it carries;
* the branch profiles that steer order determination (different
  training runs legitimately produce different code); and
* the repro package version, so a new release never reuses artifacts
  produced by old pipeline code.

All fingerprints are SHA-256 hex digests of deterministic renderings —
no ``repr`` of dicts or sets whose ordering could drift between
processes — so keys are stable across interpreter restarts, which the
on-disk cache tier depends on.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..analysis.frequency import BranchProfile
from ..core.config import SignExtConfig
from ..ir.function import Program
from ..ir.printer import format_program
from ..machine.model import MachineTraits


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_program(program: Program) -> str:
    """Hash the canonical textual rendering of a program."""
    return _digest(format_program(program))


def _traits_fields(traits: MachineTraits) -> list[Any]:
    return [
        traits.name,
        sorted((t.value, e.value) for t, e in traits.load_ext.items()),
        traits.has_cmp32,
        traits.abi_canonical_args,
        traits.abi_canonical_ret,
        traits.extend_cost,
        traits.fused_address_add,
    ]


def fingerprint_config(config: SignExtConfig) -> str:
    """Hash every knob of a pipeline configuration, traits included."""
    fields: list[Any] = [
        config.placement.value,
        config.algorithm.value,
        config.insert,
        config.insert_pde,
        config.order,
        config.array,
        config.general_opts,
        config.max_array_length,
        sorted(config.theorems),
        config.use_profile,
        config.debug_skip_def_check,
        _traits_fields(config.traits),
    ]
    return _digest(repr(fields))


def fingerprint_profiles(
    profiles: dict[str, BranchProfile] | None,
) -> str:
    """Hash the branch profiles (``None`` hashes distinctly from ``{}``)."""
    if profiles is None:
        return _digest("no-profiles")
    rendering = [
        (name, sorted(profiles[name].edge_counts.items()))
        for name in sorted(profiles)
    ]
    return _digest(repr(rendering))


def cache_key(
    program: Program,
    config: SignExtConfig,
    profiles: dict[str, BranchProfile] | None = None,
    *,
    program_fingerprint: str | None = None,
) -> str:
    """The content-addressed key one compilation is stored under.

    ``program_fingerprint`` lets callers that submit the same program
    under many configurations (the harness grid does, twelve times)
    hash the IR once and reuse the digest.
    """
    from .. import __version__

    parts = [
        program_fingerprint or fingerprint_program(program),
        fingerprint_config(config),
        fingerprint_profiles(profiles),
        __version__,
    ]
    return _digest("\n".join(parts))
